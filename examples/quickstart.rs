//! Quickstart: assemble a small concurrent x86-64 binary, translate it with
//! Lasagne, inspect the inserted fences, and run the Arm result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lasagne_repro::translator::{translate, Version};
use lasagne_repro::x86::asm::Asm;
use lasagne_repro::x86::binary::BinaryBuilder;
use lasagne_repro::x86::inst::{Inst, MemRef, Rm};
use lasagne_repro::x86::reg::{Gpr, Width};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's message-passing writer and reader (Figure 2a), as real
    // machine code:
    //
    //   send(data*, flag*):  X = 1; Y = 1
    //   recv(data*, flag*):  a = Y; b = X; return (a << 1) | b
    let mut bin = BinaryBuilder::new();

    let mut a = Asm::new();
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base(Gpr::Rdi)),
        imm: 1,
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base(Gpr::Rsi)),
        imm: 1,
    });
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("send", a.finish(addr)?);

    let mut a = Asm::new();
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Mem(MemRef::base(Gpr::Rsi)),
    });
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rcx,
        src: Rm::Mem(MemRef::base(Gpr::Rdi)),
    });
    a.push(Inst::ShiftI {
        op: lasagne_repro::x86::inst::ShiftOp::Shl,
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 1,
    });
    a.push(Inst::AluRRm {
        op: lasagne_repro::x86::inst::AluOp::Or,
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rcx),
    });
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("recv", a.finish(addr)?);

    let binary = bin.finish();

    // Translate with the full pipeline (PPOpt = refinement + precise fence
    // placement + merging + optimization).
    let t = translate(&binary, Version::PPOpt)?;

    println!("=== fence statistics ===");
    println!("fences on unrefined code : {}", t.stats.fences_naive);
    println!("fences after placement   : {}", t.stats.fences_placed);
    println!("fences after merging     : {}", t.stats.fences_final);
    println!();
    println!("=== generated AArch64 ===");
    print!("{}", lasagne_repro::armgen::print::print_module(&t.arm));

    // Run the translation: writer then reader, through shared memory.
    let mut machine = lasagne_repro::armgen::machine::ArmMachine::new(&t.arm);
    let x_addr = 0x4000_0000u64;
    let y_addr = 0x4000_0100u64;
    let send = t.arm.func_by_name("send").expect("send");
    machine.run(send, &[x_addr, y_addr], &[])?;
    let recv = t.arm.func_by_name("recv").expect("recv");
    let r = machine.run(recv, &[x_addr, y_addr], &[])?;
    println!(
        "\nrecv() returned {:#b} (flag and data both observed)",
        r.ret
    );
    assert_eq!(r.ret, 0b11);
    Ok(())
}
