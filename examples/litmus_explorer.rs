//! Explore the memory models on the paper's litmus tests: which outcomes
//! each architecture allows, and why the Figure 8 mapping needs every fence
//! it inserts.
//!
//! ```sh
//! cargo run --example litmus_explorer
//! ```

use lasagne_repro::memmodel::mapping::{check_mapping, limm_to_arm, x86_to_limm};
use lasagne_repro::memmodel::{litmus, outcomes, Model, Outcome};

fn show(name: &str, p: &lasagne_repro::memmodel::Program) {
    println!("--- {name} ---");
    for model in [Model::X86, Model::Limm, Model::Arm] {
        let os = outcomes(model, p);
        let regs: Vec<String> = os
            .iter()
            .map(|o: &Outcome| {
                let rs: Vec<String> = o
                    .regs
                    .iter()
                    .map(|((t, r), v)| format!("t{t}.r{r}={v}"))
                    .collect();
                format!("{{{}}}", rs.join(","))
            })
            .collect();
        println!("  {model:?}: {} outcomes: {}", os.len(), regs.join(" "));
    }
}

fn main() {
    // Figure 1: SB allows the non-SC outcome everywhere; MP separates x86
    // from Arm.
    show("SB (store buffering)", &litmus::sb());
    show("MP (message passing)", &litmus::mp());

    // Figure 9: the mapped MP program. The translation inserts Fww on the
    // writer and Frm on the reader — exactly the fences that restore the
    // x86-forbidden outcome on Arm.
    let mp = litmus::mp();
    let ir = x86_to_limm(&mp);
    let arm = limm_to_arm(&ir);
    println!("\nFigure 9: MP mapped x86 → LIMM → Arm");
    println!("  IR thread 0:  {:?}", ir.threads[0]);
    println!("  IR thread 1:  {:?}", ir.threads[1]);
    println!("  Arm thread 0: {:?}", arm.threads[0]);
    println!("  Arm thread 1: {:?}", arm.threads[1]);

    match check_mapping(Model::X86, &mp, Model::Arm, &arm) {
        Ok(()) => println!("  mapping is correct: Arm outcomes ⊆ x86 outcomes"),
        Err(extra) => println!("  MAPPING BUG: extra outcomes {extra:?}"),
    }

    // Precision: drop the reader's DMBLD and watch the forbidden outcome
    // reappear (Theorem 7.3's necessity argument).
    let mut weak = arm.clone();
    weak.threads[1].retain(|op| !matches!(op, lasagne_repro::memmodel::Op::Fence(_)));
    match check_mapping(Model::X86, &mp, Model::Arm, &weak) {
        Ok(()) => println!("  (unexpected: weakened mapping still correct)"),
        Err(extra) => println!(
            "  without the reader's DMBLD, {} x86-forbidden outcome(s) appear — the fence is necessary",
            extra.len()
        ),
    }

    println!();
    show(
        "Figure 10 (RMW acts as a full fence)",
        &litmus::fig10_rmw_load(),
    );
}
