//! Translate a Phoenix benchmark under all four §9.1 configurations and
//! print the per-version statistics and simulated runtimes — a miniature
//! of the paper's evaluation on one program.
//!
//! ```sh
//! cargo run --release --example translate_phoenix [HT|KM|LR|MM|SM]
//! ```

use lasagne_repro::bench::{measure_native, measure_version};
use lasagne_repro::phoenix::all_benchmarks;
use lasagne_repro::translator::Version;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "HT".to_string());
    let benches = all_benchmarks(128);
    let b = benches
        .iter()
        .find(|b| b.abbrev.eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark `{which}` (use HT|KM|LR|MM|SM)");
            std::process::exit(2)
        });

    println!("benchmark: {} ({})", b.name, b.abbrev);
    println!(
        "x86 image: {} functions, {} bytes of machine code",
        b.binary.functions.len(),
        b.binary.text.len()
    );

    let native = measure_native(b);
    println!(
        "\n{:<8} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "version", "LIR insts", "fences", "cycles", "norm", "casts"
    );
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>8.2} {:>8}",
        "native",
        b.native.inst_count(),
        0,
        native.runtime_cycles,
        1.0,
        "-"
    );
    for v in Version::ALL {
        let (t, m) = measure_version(b, v);
        println!(
            "{:<8} {:>10} {:>10} {:>8} {:>8.2} {:>8}",
            v.name(),
            t.stats.insts_final,
            t.stats.fences_final,
            m.runtime_cycles,
            m.runtime_cycles as f64 / native.runtime_cycles as f64,
            t.stats.casts_final,
        );
    }
    println!("\nall versions verified against the reference checksum ✓");
}
