//! Watch the fence pipeline work on one function: lift, print the IR with
//! naive fences, then refinement + precise placement + merging side by
//! side (the §5/§8 machinery in isolation).
//!
//! ```sh
//! cargo run --example fence_optimizer
//! ```

use lasagne_repro::fences::{count_fences, Strategy};
use lasagne_repro::lir::print::print_module;
use lasagne_repro::x86::asm::Asm;
use lasagne_repro::x86::binary::BinaryBuilder;
use lasagne_repro::x86::inst::{Inst, MemRef, Rm};
use lasagne_repro::x86::reg::{Gpr, Width};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A function mixing private stack traffic with shared accesses:
    //   f(p):  [rsp-8] = p       (spill   — private)
    //          t = [rsp-8]       (reload  — private)
    //          [t] = 1           (shared store)
    //          return [t+8]      (shared load)
    let mut bin = BinaryBuilder::new();
    let mut a = Asm::new();
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
        src: Gpr::Rdi,
    });
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base(Gpr::Rax)),
        imm: 1,
    });
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Mem(MemRef::base_disp(Gpr::Rax, 8)),
    });
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("f", a.finish(addr)?);
    let binary = bin.finish();

    // Variant A: unrefined + placement — the stack spill cannot be proven
    // private (its address flows through ptrtoint/add/inttoptr), so it gets
    // fenced like a shared access.
    let mut unrefined = lasagne_repro::lifter::lift_binary(&binary)?;
    lasagne_repro::fences::place_fences_module(&mut unrefined, Strategy::StackAware);
    let (frm_a, fww_a, fsc_a) = count_fences(&unrefined);

    // Variant B: refinement first — the spill becomes a gep/bitcast chain
    // rooted at the stack alloca and needs no fence; merging then combines
    // the remaining Frm·Fww pair around the shared accesses.
    let mut refined = lasagne_repro::lifter::lift_binary(&binary)?;
    lasagne_repro::refine::refine_module(&mut refined);
    lasagne_repro::fences::place_fences_module(&mut refined, Strategy::StackAware);
    lasagne_repro::fences::merge_fences_module(&mut refined);
    let (frm_b, fww_b, fsc_b) = count_fences(&refined);

    println!("without refinement: {frm_a} Frm, {fww_a} Fww, {fsc_a} Fsc");
    println!("with refinement   : {frm_b} Frm, {fww_b} Fww, {fsc_b} Fsc");
    println!("\n=== refined, fenced IR ===");
    print!("{}", print_module(&refined));

    assert!(frm_b + fww_b + fsc_b < frm_a + fww_a + fsc_a);
    Ok(())
}
