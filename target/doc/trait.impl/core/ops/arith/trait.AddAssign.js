(function() {
    const implementors = Object.fromEntries([["lasagne_fences",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.AddAssign.html\" title=\"trait core::ops::arith::AddAssign\">AddAssign</a> for <a class=\"struct\" href=\"lasagne_fences/placement/struct.PlacementStats.html\" title=\"struct lasagne_fences::placement::PlacementStats\">PlacementStats</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[349]}