/root/repo/target/debug/examples/quickstart-625fd6e6a393f95a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-625fd6e6a393f95a: examples/quickstart.rs

examples/quickstart.rs:
