/root/repo/target/debug/examples/fence_optimizer-04cb1e4e3f34ce98.d: examples/fence_optimizer.rs

/root/repo/target/debug/examples/fence_optimizer-04cb1e4e3f34ce98: examples/fence_optimizer.rs

examples/fence_optimizer.rs:
