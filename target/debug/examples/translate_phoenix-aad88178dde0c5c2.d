/root/repo/target/debug/examples/translate_phoenix-aad88178dde0c5c2.d: examples/translate_phoenix.rs

/root/repo/target/debug/examples/translate_phoenix-aad88178dde0c5c2: examples/translate_phoenix.rs

examples/translate_phoenix.rs:
