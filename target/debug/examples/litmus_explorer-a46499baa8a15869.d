/root/repo/target/debug/examples/litmus_explorer-a46499baa8a15869.d: examples/litmus_explorer.rs

/root/repo/target/debug/examples/litmus_explorer-a46499baa8a15869: examples/litmus_explorer.rs

examples/litmus_explorer.rs:
