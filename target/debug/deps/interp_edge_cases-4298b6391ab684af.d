/root/repo/target/debug/deps/interp_edge_cases-4298b6391ab684af.d: crates/lir/tests/interp_edge_cases.rs

/root/repo/target/debug/deps/interp_edge_cases-4298b6391ab684af: crates/lir/tests/interp_edge_cases.rs

crates/lir/tests/interp_edge_cases.rs:
