/root/repo/target/debug/deps/lasagne_lifter-3d3a985527c848f5.d: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

/root/repo/target/debug/deps/liblasagne_lifter-3d3a985527c848f5.rlib: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

/root/repo/target/debug/deps/liblasagne_lifter-3d3a985527c848f5.rmeta: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

crates/lifter/src/lib.rs:
crates/lifter/src/liveness.rs:
crates/lifter/src/translate.rs:
crates/lifter/src/typedisc.rs:
crates/lifter/src/xcfg.rs:
