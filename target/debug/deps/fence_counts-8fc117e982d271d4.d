/root/repo/target/debug/deps/fence_counts-8fc117e982d271d4.d: crates/fences/tests/fence_counts.rs

/root/repo/target/debug/deps/fence_counts-8fc117e982d271d4: crates/fences/tests/fence_counts.rs

crates/fences/tests/fence_counts.rs:
