/root/repo/target/debug/deps/lasagne_memmodel-030f35f5a59c8f68.d: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

/root/repo/target/debug/deps/liblasagne_memmodel-030f35f5a59c8f68.rlib: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

/root/repo/target/debug/deps/liblasagne_memmodel-030f35f5a59c8f68.rmeta: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

crates/memmodel/src/lib.rs:
crates/memmodel/src/exec.rs:
crates/memmodel/src/litmus.rs:
crates/memmodel/src/mapping.rs:
crates/memmodel/src/models.rs:
crates/memmodel/src/rel.rs:
crates/memmodel/src/transform.rs:
