/root/repo/target/debug/deps/lasagne_x86-04e5e73bde76408f.d: crates/x86/src/lib.rs crates/x86/src/asm.rs crates/x86/src/binary.rs crates/x86/src/decode.rs crates/x86/src/encode.rs crates/x86/src/flags.rs crates/x86/src/inst.rs crates/x86/src/reg.rs

/root/repo/target/debug/deps/liblasagne_x86-04e5e73bde76408f.rmeta: crates/x86/src/lib.rs crates/x86/src/asm.rs crates/x86/src/binary.rs crates/x86/src/decode.rs crates/x86/src/encode.rs crates/x86/src/flags.rs crates/x86/src/inst.rs crates/x86/src/reg.rs

crates/x86/src/lib.rs:
crates/x86/src/asm.rs:
crates/x86/src/binary.rs:
crates/x86/src/decode.rs:
crates/x86/src/encode.rs:
crates/x86/src/flags.rs:
crates/x86/src/inst.rs:
crates/x86/src/reg.rs:
