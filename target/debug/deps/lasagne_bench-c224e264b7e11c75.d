/root/repo/target/debug/deps/lasagne_bench-c224e264b7e11c75.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblasagne_bench-c224e264b7e11c75.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblasagne_bench-c224e264b7e11c75.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
