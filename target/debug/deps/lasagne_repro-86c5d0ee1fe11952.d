/root/repo/target/debug/deps/lasagne_repro-86c5d0ee1fe11952.d: src/lib.rs

/root/repo/target/debug/deps/liblasagne_repro-86c5d0ee1fe11952.rmeta: src/lib.rs

src/lib.rs:
