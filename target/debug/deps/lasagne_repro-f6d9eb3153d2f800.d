/root/repo/target/debug/deps/lasagne_repro-f6d9eb3153d2f800.d: src/lib.rs

/root/repo/target/debug/deps/liblasagne_repro-f6d9eb3153d2f800.rlib: src/lib.rs

/root/repo/target/debug/deps/liblasagne_repro-f6d9eb3153d2f800.rmeta: src/lib.rs

src/lib.rs:
