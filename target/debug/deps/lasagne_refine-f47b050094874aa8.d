/root/repo/target/debug/deps/lasagne_refine-f47b050094874aa8.d: crates/refine/src/lib.rs

/root/repo/target/debug/deps/liblasagne_refine-f47b050094874aa8.rmeta: crates/refine/src/lib.rs

crates/refine/src/lib.rs:
