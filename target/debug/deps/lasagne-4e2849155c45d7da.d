/root/repo/target/debug/deps/lasagne-4e2849155c45d7da.d: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

/root/repo/target/debug/deps/lasagne-4e2849155c45d7da: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

crates/lasagne/src/lib.rs:
crates/lasagne/src/pipeline.rs:
