/root/repo/target/debug/deps/lasagne_lifter-ac600c947b65598f.d: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

/root/repo/target/debug/deps/lasagne_lifter-ac600c947b65598f: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

crates/lifter/src/lib.rs:
crates/lifter/src/liveness.rs:
crates/lifter/src/translate.rs:
crates/lifter/src/typedisc.rs:
crates/lifter/src/xcfg.rs:
