/root/repo/target/debug/deps/lasagne_memmodel-385d498baf2ba8ea.d: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

/root/repo/target/debug/deps/lasagne_memmodel-385d498baf2ba8ea: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

crates/memmodel/src/lib.rs:
crates/memmodel/src/exec.rs:
crates/memmodel/src/litmus.rs:
crates/memmodel/src/mapping.rs:
crates/memmodel/src/models.rs:
crates/memmodel/src/rel.rs:
crates/memmodel/src/transform.rs:
