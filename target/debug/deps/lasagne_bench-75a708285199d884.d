/root/repo/target/debug/deps/lasagne_bench-75a708285199d884.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lasagne_bench-75a708285199d884: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
