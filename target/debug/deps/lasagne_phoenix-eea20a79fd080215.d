/root/repo/target/debug/deps/lasagne_phoenix-eea20a79fd080215.d: crates/phoenix/src/lib.rs crates/phoenix/src/builders.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/native.rs crates/phoenix/src/strmatch.rs

/root/repo/target/debug/deps/lasagne_phoenix-eea20a79fd080215: crates/phoenix/src/lib.rs crates/phoenix/src/builders.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/native.rs crates/phoenix/src/strmatch.rs

crates/phoenix/src/lib.rs:
crates/phoenix/src/builders.rs:
crates/phoenix/src/histogram.rs:
crates/phoenix/src/kmeans.rs:
crates/phoenix/src/linreg.rs:
crates/phoenix/src/matmul.rs:
crates/phoenix/src/native.rs:
crates/phoenix/src/strmatch.rs:
