/root/repo/target/debug/deps/lasagne_armgen-66e631ce7a441de2.d: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

/root/repo/target/debug/deps/liblasagne_armgen-66e631ce7a441de2.rmeta: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

crates/armgen/src/lib.rs:
crates/armgen/src/inst.rs:
crates/armgen/src/lower.rs:
crates/armgen/src/machine.rs:
crates/armgen/src/peephole.rs:
crates/armgen/src/print.rs:
