/root/repo/target/debug/deps/random_mappings-271b81de21a6d9a7.d: crates/memmodel/tests/random_mappings.rs

/root/repo/target/debug/deps/random_mappings-271b81de21a6d9a7: crates/memmodel/tests/random_mappings.rs

crates/memmodel/tests/random_mappings.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/memmodel
