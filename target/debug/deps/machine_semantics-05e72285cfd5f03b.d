/root/repo/target/debug/deps/machine_semantics-05e72285cfd5f03b.d: crates/armgen/tests/machine_semantics.rs

/root/repo/target/debug/deps/machine_semantics-05e72285cfd5f03b: crates/armgen/tests/machine_semantics.rs

crates/armgen/tests/machine_semantics.rs:
