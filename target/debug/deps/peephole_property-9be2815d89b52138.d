/root/repo/target/debug/deps/peephole_property-9be2815d89b52138.d: crates/armgen/tests/peephole_property.rs

/root/repo/target/debug/deps/peephole_property-9be2815d89b52138: crates/armgen/tests/peephole_property.rs

crates/armgen/tests/peephole_property.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/armgen
