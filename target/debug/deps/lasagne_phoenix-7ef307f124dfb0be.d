/root/repo/target/debug/deps/lasagne_phoenix-7ef307f124dfb0be.d: crates/phoenix/src/lib.rs crates/phoenix/src/builders.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/native.rs crates/phoenix/src/strmatch.rs

/root/repo/target/debug/deps/liblasagne_phoenix-7ef307f124dfb0be.rmeta: crates/phoenix/src/lib.rs crates/phoenix/src/builders.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/native.rs crates/phoenix/src/strmatch.rs

crates/phoenix/src/lib.rs:
crates/phoenix/src/builders.rs:
crates/phoenix/src/histogram.rs:
crates/phoenix/src/kmeans.rs:
crates/phoenix/src/linreg.rs:
crates/phoenix/src/matmul.rs:
crates/phoenix/src/native.rs:
crates/phoenix/src/strmatch.rs:
