/root/repo/target/debug/deps/lasagne_refine-4641849cfa4a3bfc.d: crates/refine/src/lib.rs

/root/repo/target/debug/deps/lasagne_refine-4641849cfa4a3bfc: crates/refine/src/lib.rs

crates/refine/src/lib.rs:
