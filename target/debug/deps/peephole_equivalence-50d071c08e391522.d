/root/repo/target/debug/deps/peephole_equivalence-50d071c08e391522.d: crates/armgen/tests/peephole_equivalence.rs

/root/repo/target/debug/deps/peephole_equivalence-50d071c08e391522: crates/armgen/tests/peephole_equivalence.rs

crates/armgen/tests/peephole_equivalence.rs:
