/root/repo/target/debug/deps/fig11_exhaustive-2a816e0fad877941.d: crates/memmodel/tests/fig11_exhaustive.rs

/root/repo/target/debug/deps/fig11_exhaustive-2a816e0fad877941: crates/memmodel/tests/fig11_exhaustive.rs

crates/memmodel/tests/fig11_exhaustive.rs:
