/root/repo/target/debug/deps/cli-58cfc7ce354edac6.d: tests/cli.rs

/root/repo/target/debug/deps/cli-58cfc7ce354edac6: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_lasagne=/root/repo/target/debug/lasagne
