/root/repo/target/debug/deps/lasagne_fences-594d202656f8eea9.d: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

/root/repo/target/debug/deps/liblasagne_fences-594d202656f8eea9.rmeta: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

crates/fences/src/lib.rs:
crates/fences/src/legality.rs:
crates/fences/src/placement.rs:
