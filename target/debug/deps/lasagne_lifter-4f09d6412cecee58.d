/root/repo/target/debug/deps/lasagne_lifter-4f09d6412cecee58.d: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

/root/repo/target/debug/deps/liblasagne_lifter-4f09d6412cecee58.rmeta: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

crates/lifter/src/lib.rs:
crates/lifter/src/liveness.rs:
crates/lifter/src/translate.rs:
crates/lifter/src/typedisc.rs:
crates/lifter/src/xcfg.rs:
