/root/repo/target/debug/deps/lasagne_bench-81395935edd5d426.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblasagne_bench-81395935edd5d426.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
