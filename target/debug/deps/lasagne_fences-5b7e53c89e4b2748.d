/root/repo/target/debug/deps/lasagne_fences-5b7e53c89e4b2748.d: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

/root/repo/target/debug/deps/lasagne_fences-5b7e53c89e4b2748: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

crates/fences/src/lib.rs:
crates/fences/src/legality.rs:
crates/fences/src/placement.rs:
