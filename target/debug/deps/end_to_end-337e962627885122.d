/root/repo/target/debug/deps/end_to_end-337e962627885122.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-337e962627885122: tests/end_to_end.rs

tests/end_to_end.rs:
