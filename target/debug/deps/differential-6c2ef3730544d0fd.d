/root/repo/target/debug/deps/differential-6c2ef3730544d0fd.d: tests/differential.rs

/root/repo/target/debug/deps/differential-6c2ef3730544d0fd: tests/differential.rs

tests/differential.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
