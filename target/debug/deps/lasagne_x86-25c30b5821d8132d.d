/root/repo/target/debug/deps/lasagne_x86-25c30b5821d8132d.d: crates/x86/src/lib.rs crates/x86/src/asm.rs crates/x86/src/binary.rs crates/x86/src/decode.rs crates/x86/src/encode.rs crates/x86/src/flags.rs crates/x86/src/inst.rs crates/x86/src/reg.rs

/root/repo/target/debug/deps/lasagne_x86-25c30b5821d8132d: crates/x86/src/lib.rs crates/x86/src/asm.rs crates/x86/src/binary.rs crates/x86/src/decode.rs crates/x86/src/encode.rs crates/x86/src/flags.rs crates/x86/src/inst.rs crates/x86/src/reg.rs

crates/x86/src/lib.rs:
crates/x86/src/asm.rs:
crates/x86/src/binary.rs:
crates/x86/src/decode.rs:
crates/x86/src/encode.rs:
crates/x86/src/flags.rs:
crates/x86/src/inst.rs:
crates/x86/src/reg.rs:
