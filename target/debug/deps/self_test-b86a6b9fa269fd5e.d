/root/repo/target/debug/deps/self_test-b86a6b9fa269fd5e.d: crates/qc/tests/self_test.rs

/root/repo/target/debug/deps/self_test-b86a6b9fa269fd5e: crates/qc/tests/self_test.rs

crates/qc/tests/self_test.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/qc
