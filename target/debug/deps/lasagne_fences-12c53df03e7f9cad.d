/root/repo/target/debug/deps/lasagne_fences-12c53df03e7f9cad.d: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

/root/repo/target/debug/deps/liblasagne_fences-12c53df03e7f9cad.rlib: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

/root/repo/target/debug/deps/liblasagne_fences-12c53df03e7f9cad.rmeta: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

crates/fences/src/lib.rs:
crates/fences/src/legality.rs:
crates/fences/src/placement.rs:
