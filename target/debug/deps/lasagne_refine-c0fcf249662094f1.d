/root/repo/target/debug/deps/lasagne_refine-c0fcf249662094f1.d: crates/refine/src/lib.rs

/root/repo/target/debug/deps/liblasagne_refine-c0fcf249662094f1.rlib: crates/refine/src/lib.rs

/root/repo/target/debug/deps/liblasagne_refine-c0fcf249662094f1.rmeta: crates/refine/src/lib.rs

crates/refine/src/lib.rs:
