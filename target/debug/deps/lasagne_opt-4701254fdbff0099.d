/root/repo/target/debug/deps/lasagne_opt-4701254fdbff0099.d: crates/opt/src/lib.rs crates/opt/src/combine.rs crates/opt/src/dce.rs crates/opt/src/dse.rs crates/opt/src/fold.rs crates/opt/src/gvn.rs crates/opt/src/licm.rs crates/opt/src/mem.rs crates/opt/src/sccp.rs

/root/repo/target/debug/deps/liblasagne_opt-4701254fdbff0099.rmeta: crates/opt/src/lib.rs crates/opt/src/combine.rs crates/opt/src/dce.rs crates/opt/src/dse.rs crates/opt/src/fold.rs crates/opt/src/gvn.rs crates/opt/src/licm.rs crates/opt/src/mem.rs crates/opt/src/sccp.rs

crates/opt/src/lib.rs:
crates/opt/src/combine.rs:
crates/opt/src/dce.rs:
crates/opt/src/dse.rs:
crates/opt/src/fold.rs:
crates/opt/src/gvn.rs:
crates/opt/src/licm.rs:
crates/opt/src/mem.rs:
crates/opt/src/sccp.rs:
