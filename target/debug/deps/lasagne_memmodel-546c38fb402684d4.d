/root/repo/target/debug/deps/lasagne_memmodel-546c38fb402684d4.d: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

/root/repo/target/debug/deps/liblasagne_memmodel-546c38fb402684d4.rmeta: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

crates/memmodel/src/lib.rs:
crates/memmodel/src/exec.rs:
crates/memmodel/src/litmus.rs:
crates/memmodel/src/mapping.rs:
crates/memmodel/src/models.rs:
crates/memmodel/src/rel.rs:
crates/memmodel/src/transform.rs:
