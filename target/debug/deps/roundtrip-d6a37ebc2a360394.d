/root/repo/target/debug/deps/roundtrip-d6a37ebc2a360394.d: crates/x86/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-d6a37ebc2a360394: crates/x86/tests/roundtrip.rs

crates/x86/tests/roundtrip.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/x86
