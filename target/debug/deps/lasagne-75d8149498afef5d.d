/root/repo/target/debug/deps/lasagne-75d8149498afef5d.d: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

/root/repo/target/debug/deps/liblasagne-75d8149498afef5d.rmeta: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

crates/lasagne/src/lib.rs:
crates/lasagne/src/pipeline.rs:
