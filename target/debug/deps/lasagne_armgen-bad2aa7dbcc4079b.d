/root/repo/target/debug/deps/lasagne_armgen-bad2aa7dbcc4079b.d: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

/root/repo/target/debug/deps/lasagne_armgen-bad2aa7dbcc4079b: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

crates/armgen/src/lib.rs:
crates/armgen/src/inst.rs:
crates/armgen/src/lower.rs:
crates/armgen/src/machine.rs:
crates/armgen/src/peephole.rs:
crates/armgen/src/print.rs:
