/root/repo/target/debug/deps/end_to_end-ba31ee90d5cb85d7.d: crates/armgen/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ba31ee90d5cb85d7: crates/armgen/tests/end_to_end.rs

crates/armgen/tests/end_to_end.rs:
