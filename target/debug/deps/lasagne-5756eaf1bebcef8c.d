/root/repo/target/debug/deps/lasagne-5756eaf1bebcef8c.d: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

/root/repo/target/debug/deps/liblasagne-5756eaf1bebcef8c.rlib: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

/root/repo/target/debug/deps/liblasagne-5756eaf1bebcef8c.rmeta: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

crates/lasagne/src/lib.rs:
crates/lasagne/src/pipeline.rs:
