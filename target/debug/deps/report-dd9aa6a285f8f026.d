/root/repo/target/debug/deps/report-dd9aa6a285f8f026.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-dd9aa6a285f8f026: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
