/root/repo/target/debug/deps/correctness-37ac6b31c6cbfa8e.d: crates/phoenix/tests/correctness.rs

/root/repo/target/debug/deps/correctness-37ac6b31c6cbfa8e: crates/phoenix/tests/correctness.rs

crates/phoenix/tests/correctness.rs:
