/root/repo/target/debug/deps/lasagne_repro-831cd0f931af0218.d: src/lib.rs

/root/repo/target/debug/deps/lasagne_repro-831cd0f931af0218: src/lib.rs

src/lib.rs:
