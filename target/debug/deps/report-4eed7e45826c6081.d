/root/repo/target/debug/deps/report-4eed7e45826c6081.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-4eed7e45826c6081: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
