/root/repo/target/debug/deps/lasagne_armgen-69e94ebdaec56ff7.d: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

/root/repo/target/debug/deps/liblasagne_armgen-69e94ebdaec56ff7.rlib: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

/root/repo/target/debug/deps/liblasagne_armgen-69e94ebdaec56ff7.rmeta: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

crates/armgen/src/lib.rs:
crates/armgen/src/inst.rs:
crates/armgen/src/lower.rs:
crates/armgen/src/machine.rs:
crates/armgen/src/peephole.rs:
crates/armgen/src/print.rs:
