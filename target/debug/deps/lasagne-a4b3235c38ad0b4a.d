/root/repo/target/debug/deps/lasagne-a4b3235c38ad0b4a.d: src/bin/lasagne.rs

/root/repo/target/debug/deps/lasagne-a4b3235c38ad0b4a: src/bin/lasagne.rs

src/bin/lasagne.rs:
