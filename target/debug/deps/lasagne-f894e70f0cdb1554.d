/root/repo/target/debug/deps/lasagne-f894e70f0cdb1554.d: src/bin/lasagne.rs

/root/repo/target/debug/deps/lasagne-f894e70f0cdb1554: src/bin/lasagne.rs

src/bin/lasagne.rs:
