/root/repo/target/debug/deps/phoenix_refinement-c5f23fe0286458e8.d: crates/refine/tests/phoenix_refinement.rs

/root/repo/target/debug/deps/phoenix_refinement-c5f23fe0286458e8: crates/refine/tests/phoenix_refinement.rs

crates/refine/tests/phoenix_refinement.rs:
