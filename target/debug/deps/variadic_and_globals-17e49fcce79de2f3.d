/root/repo/target/debug/deps/variadic_and_globals-17e49fcce79de2f3.d: crates/lifter/tests/variadic_and_globals.rs

/root/repo/target/debug/deps/variadic_and_globals-17e49fcce79de2f3: crates/lifter/tests/variadic_and_globals.rs

crates/lifter/tests/variadic_and_globals.rs:
