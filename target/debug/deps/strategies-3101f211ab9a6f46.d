/root/repo/target/debug/deps/strategies-3101f211ab9a6f46.d: crates/fences/tests/strategies.rs

/root/repo/target/debug/deps/strategies-3101f211ab9a6f46: crates/fences/tests/strategies.rs

crates/fences/tests/strategies.rs:
