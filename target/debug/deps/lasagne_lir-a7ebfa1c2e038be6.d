/root/repo/target/debug/deps/lasagne_lir-a7ebfa1c2e038be6.d: crates/lir/src/lib.rs crates/lir/src/analysis.rs crates/lir/src/func.rs crates/lir/src/inst.rs crates/lir/src/interp.rs crates/lir/src/print.rs crates/lir/src/ssa.rs crates/lir/src/types.rs crates/lir/src/verify.rs

/root/repo/target/debug/deps/liblasagne_lir-a7ebfa1c2e038be6.rmeta: crates/lir/src/lib.rs crates/lir/src/analysis.rs crates/lir/src/func.rs crates/lir/src/inst.rs crates/lir/src/interp.rs crates/lir/src/print.rs crates/lir/src/ssa.rs crates/lir/src/types.rs crates/lir/src/verify.rs

crates/lir/src/lib.rs:
crates/lir/src/analysis.rs:
crates/lir/src/func.rs:
crates/lir/src/inst.rs:
crates/lir/src/interp.rs:
crates/lir/src/print.rs:
crates/lir/src/ssa.rs:
crates/lir/src/types.rs:
crates/lir/src/verify.rs:
