/root/repo/target/debug/deps/pass_robustness-7b2b1274dd1126f8.d: crates/opt/tests/pass_robustness.rs

/root/repo/target/debug/deps/pass_robustness-7b2b1274dd1126f8: crates/opt/tests/pass_robustness.rs

crates/opt/tests/pass_robustness.rs:
