/root/repo/target/debug/deps/lasagne_qc-50146063d59d8b01.d: crates/qc/src/lib.rs crates/qc/src/bench.rs crates/qc/src/collection.rs crates/qc/src/regress.rs crates/qc/src/rng.rs crates/qc/src/runner.rs crates/qc/src/shrink.rs crates/qc/src/source.rs crates/qc/src/strategy.rs

/root/repo/target/debug/deps/liblasagne_qc-50146063d59d8b01.rlib: crates/qc/src/lib.rs crates/qc/src/bench.rs crates/qc/src/collection.rs crates/qc/src/regress.rs crates/qc/src/rng.rs crates/qc/src/runner.rs crates/qc/src/shrink.rs crates/qc/src/source.rs crates/qc/src/strategy.rs

/root/repo/target/debug/deps/liblasagne_qc-50146063d59d8b01.rmeta: crates/qc/src/lib.rs crates/qc/src/bench.rs crates/qc/src/collection.rs crates/qc/src/regress.rs crates/qc/src/rng.rs crates/qc/src/runner.rs crates/qc/src/shrink.rs crates/qc/src/source.rs crates/qc/src/strategy.rs

crates/qc/src/lib.rs:
crates/qc/src/bench.rs:
crates/qc/src/collection.rs:
crates/qc/src/regress.rs:
crates/qc/src/rng.rs:
crates/qc/src/runner.rs:
crates/qc/src/shrink.rs:
crates/qc/src/source.rs:
crates/qc/src/strategy.rs:
