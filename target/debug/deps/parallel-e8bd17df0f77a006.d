/root/repo/target/debug/deps/parallel-e8bd17df0f77a006.d: tests/parallel.rs

/root/repo/target/debug/deps/parallel-e8bd17df0f77a006: tests/parallel.rs

tests/parallel.rs:
