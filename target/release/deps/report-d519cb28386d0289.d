/root/repo/target/release/deps/report-d519cb28386d0289.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-d519cb28386d0289: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
