/root/repo/target/release/deps/lasagne-1a923e9ce19febc2.d: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

/root/repo/target/release/deps/liblasagne-1a923e9ce19febc2.rlib: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

/root/repo/target/release/deps/liblasagne-1a923e9ce19febc2.rmeta: crates/lasagne/src/lib.rs crates/lasagne/src/pipeline.rs

crates/lasagne/src/lib.rs:
crates/lasagne/src/pipeline.rs:
