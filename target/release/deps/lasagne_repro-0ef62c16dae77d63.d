/root/repo/target/release/deps/lasagne_repro-0ef62c16dae77d63.d: src/lib.rs

/root/repo/target/release/deps/liblasagne_repro-0ef62c16dae77d63.rlib: src/lib.rs

/root/repo/target/release/deps/liblasagne_repro-0ef62c16dae77d63.rmeta: src/lib.rs

src/lib.rs:
