/root/repo/target/release/deps/report-d553db8b19d62225.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-d553db8b19d62225: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
