/root/repo/target/release/deps/lasagne-cba8562d2dbb8b2e.d: src/bin/lasagne.rs

/root/repo/target/release/deps/lasagne-cba8562d2dbb8b2e: src/bin/lasagne.rs

src/bin/lasagne.rs:
