/root/repo/target/release/deps/lasagne_x86-e345153e79e952aa.d: crates/x86/src/lib.rs crates/x86/src/asm.rs crates/x86/src/binary.rs crates/x86/src/decode.rs crates/x86/src/encode.rs crates/x86/src/flags.rs crates/x86/src/inst.rs crates/x86/src/reg.rs

/root/repo/target/release/deps/liblasagne_x86-e345153e79e952aa.rlib: crates/x86/src/lib.rs crates/x86/src/asm.rs crates/x86/src/binary.rs crates/x86/src/decode.rs crates/x86/src/encode.rs crates/x86/src/flags.rs crates/x86/src/inst.rs crates/x86/src/reg.rs

/root/repo/target/release/deps/liblasagne_x86-e345153e79e952aa.rmeta: crates/x86/src/lib.rs crates/x86/src/asm.rs crates/x86/src/binary.rs crates/x86/src/decode.rs crates/x86/src/encode.rs crates/x86/src/flags.rs crates/x86/src/inst.rs crates/x86/src/reg.rs

crates/x86/src/lib.rs:
crates/x86/src/asm.rs:
crates/x86/src/binary.rs:
crates/x86/src/decode.rs:
crates/x86/src/encode.rs:
crates/x86/src/flags.rs:
crates/x86/src/inst.rs:
crates/x86/src/reg.rs:
