/root/repo/target/release/deps/lasagne_refine-b556a26ed085dd2f.d: crates/refine/src/lib.rs

/root/repo/target/release/deps/liblasagne_refine-b556a26ed085dd2f.rlib: crates/refine/src/lib.rs

/root/repo/target/release/deps/liblasagne_refine-b556a26ed085dd2f.rmeta: crates/refine/src/lib.rs

crates/refine/src/lib.rs:
