/root/repo/target/release/deps/passes-830a1a427e7929a6.d: crates/bench/benches/passes.rs

/root/repo/target/release/deps/passes-830a1a427e7929a6: crates/bench/benches/passes.rs

crates/bench/benches/passes.rs:
