/root/repo/target/release/deps/lasagne_opt-46a1947cdb26d229.d: crates/opt/src/lib.rs crates/opt/src/combine.rs crates/opt/src/dce.rs crates/opt/src/dse.rs crates/opt/src/fold.rs crates/opt/src/gvn.rs crates/opt/src/licm.rs crates/opt/src/mem.rs crates/opt/src/sccp.rs

/root/repo/target/release/deps/liblasagne_opt-46a1947cdb26d229.rlib: crates/opt/src/lib.rs crates/opt/src/combine.rs crates/opt/src/dce.rs crates/opt/src/dse.rs crates/opt/src/fold.rs crates/opt/src/gvn.rs crates/opt/src/licm.rs crates/opt/src/mem.rs crates/opt/src/sccp.rs

/root/repo/target/release/deps/liblasagne_opt-46a1947cdb26d229.rmeta: crates/opt/src/lib.rs crates/opt/src/combine.rs crates/opt/src/dce.rs crates/opt/src/dse.rs crates/opt/src/fold.rs crates/opt/src/gvn.rs crates/opt/src/licm.rs crates/opt/src/mem.rs crates/opt/src/sccp.rs

crates/opt/src/lib.rs:
crates/opt/src/combine.rs:
crates/opt/src/dce.rs:
crates/opt/src/dse.rs:
crates/opt/src/fold.rs:
crates/opt/src/gvn.rs:
crates/opt/src/licm.rs:
crates/opt/src/mem.rs:
crates/opt/src/sccp.rs:
