/root/repo/target/release/deps/lasagne_phoenix-59ed1f4868abed2b.d: crates/phoenix/src/lib.rs crates/phoenix/src/builders.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/native.rs crates/phoenix/src/strmatch.rs

/root/repo/target/release/deps/liblasagne_phoenix-59ed1f4868abed2b.rlib: crates/phoenix/src/lib.rs crates/phoenix/src/builders.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/native.rs crates/phoenix/src/strmatch.rs

/root/repo/target/release/deps/liblasagne_phoenix-59ed1f4868abed2b.rmeta: crates/phoenix/src/lib.rs crates/phoenix/src/builders.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/native.rs crates/phoenix/src/strmatch.rs

crates/phoenix/src/lib.rs:
crates/phoenix/src/builders.rs:
crates/phoenix/src/histogram.rs:
crates/phoenix/src/kmeans.rs:
crates/phoenix/src/linreg.rs:
crates/phoenix/src/matmul.rs:
crates/phoenix/src/native.rs:
crates/phoenix/src/strmatch.rs:
