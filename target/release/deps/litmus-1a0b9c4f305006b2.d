/root/repo/target/release/deps/litmus-1a0b9c4f305006b2.d: crates/bench/benches/litmus.rs

/root/repo/target/release/deps/litmus-1a0b9c4f305006b2: crates/bench/benches/litmus.rs

crates/bench/benches/litmus.rs:
