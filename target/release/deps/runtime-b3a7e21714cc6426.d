/root/repo/target/release/deps/runtime-b3a7e21714cc6426.d: crates/bench/benches/runtime.rs

/root/repo/target/release/deps/runtime-b3a7e21714cc6426: crates/bench/benches/runtime.rs

crates/bench/benches/runtime.rs:
