/root/repo/target/release/deps/lasagne_bench-b0a2dfc322d2049e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblasagne_bench-b0a2dfc322d2049e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblasagne_bench-b0a2dfc322d2049e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
