/root/repo/target/release/deps/lasagne_lifter-86205f67d23de18a.d: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

/root/repo/target/release/deps/liblasagne_lifter-86205f67d23de18a.rlib: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

/root/repo/target/release/deps/liblasagne_lifter-86205f67d23de18a.rmeta: crates/lifter/src/lib.rs crates/lifter/src/liveness.rs crates/lifter/src/translate.rs crates/lifter/src/typedisc.rs crates/lifter/src/xcfg.rs

crates/lifter/src/lib.rs:
crates/lifter/src/liveness.rs:
crates/lifter/src/translate.rs:
crates/lifter/src/typedisc.rs:
crates/lifter/src/xcfg.rs:
