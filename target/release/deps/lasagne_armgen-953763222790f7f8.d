/root/repo/target/release/deps/lasagne_armgen-953763222790f7f8.d: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

/root/repo/target/release/deps/liblasagne_armgen-953763222790f7f8.rlib: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

/root/repo/target/release/deps/liblasagne_armgen-953763222790f7f8.rmeta: crates/armgen/src/lib.rs crates/armgen/src/inst.rs crates/armgen/src/lower.rs crates/armgen/src/machine.rs crates/armgen/src/peephole.rs crates/armgen/src/print.rs

crates/armgen/src/lib.rs:
crates/armgen/src/inst.rs:
crates/armgen/src/lower.rs:
crates/armgen/src/machine.rs:
crates/armgen/src/peephole.rs:
crates/armgen/src/print.rs:
