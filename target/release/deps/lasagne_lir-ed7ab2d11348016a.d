/root/repo/target/release/deps/lasagne_lir-ed7ab2d11348016a.d: crates/lir/src/lib.rs crates/lir/src/analysis.rs crates/lir/src/func.rs crates/lir/src/inst.rs crates/lir/src/interp.rs crates/lir/src/print.rs crates/lir/src/ssa.rs crates/lir/src/types.rs crates/lir/src/verify.rs

/root/repo/target/release/deps/liblasagne_lir-ed7ab2d11348016a.rlib: crates/lir/src/lib.rs crates/lir/src/analysis.rs crates/lir/src/func.rs crates/lir/src/inst.rs crates/lir/src/interp.rs crates/lir/src/print.rs crates/lir/src/ssa.rs crates/lir/src/types.rs crates/lir/src/verify.rs

/root/repo/target/release/deps/liblasagne_lir-ed7ab2d11348016a.rmeta: crates/lir/src/lib.rs crates/lir/src/analysis.rs crates/lir/src/func.rs crates/lir/src/inst.rs crates/lir/src/interp.rs crates/lir/src/print.rs crates/lir/src/ssa.rs crates/lir/src/types.rs crates/lir/src/verify.rs

crates/lir/src/lib.rs:
crates/lir/src/analysis.rs:
crates/lir/src/func.rs:
crates/lir/src/inst.rs:
crates/lir/src/interp.rs:
crates/lir/src/print.rs:
crates/lir/src/ssa.rs:
crates/lir/src/types.rs:
crates/lir/src/verify.rs:
