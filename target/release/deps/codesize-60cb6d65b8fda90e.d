/root/repo/target/release/deps/codesize-60cb6d65b8fda90e.d: crates/bench/benches/codesize.rs

/root/repo/target/release/deps/codesize-60cb6d65b8fda90e: crates/bench/benches/codesize.rs

crates/bench/benches/codesize.rs:
