/root/repo/target/release/deps/lasagne_bench-6ec435530ba0c042.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/lasagne_bench-6ec435530ba0c042: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
