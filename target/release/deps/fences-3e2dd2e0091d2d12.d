/root/repo/target/release/deps/fences-3e2dd2e0091d2d12.d: crates/bench/benches/fences.rs

/root/repo/target/release/deps/fences-3e2dd2e0091d2d12: crates/bench/benches/fences.rs

crates/bench/benches/fences.rs:
