/root/repo/target/release/deps/lasagne_memmodel-f577b69f76ac1c96.d: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

/root/repo/target/release/deps/liblasagne_memmodel-f577b69f76ac1c96.rlib: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

/root/repo/target/release/deps/liblasagne_memmodel-f577b69f76ac1c96.rmeta: crates/memmodel/src/lib.rs crates/memmodel/src/exec.rs crates/memmodel/src/litmus.rs crates/memmodel/src/mapping.rs crates/memmodel/src/models.rs crates/memmodel/src/rel.rs crates/memmodel/src/transform.rs

crates/memmodel/src/lib.rs:
crates/memmodel/src/exec.rs:
crates/memmodel/src/litmus.rs:
crates/memmodel/src/mapping.rs:
crates/memmodel/src/models.rs:
crates/memmodel/src/rel.rs:
crates/memmodel/src/transform.rs:
