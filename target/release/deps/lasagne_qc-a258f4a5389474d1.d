/root/repo/target/release/deps/lasagne_qc-a258f4a5389474d1.d: crates/qc/src/lib.rs crates/qc/src/bench.rs crates/qc/src/collection.rs crates/qc/src/regress.rs crates/qc/src/rng.rs crates/qc/src/runner.rs crates/qc/src/shrink.rs crates/qc/src/source.rs crates/qc/src/strategy.rs

/root/repo/target/release/deps/liblasagne_qc-a258f4a5389474d1.rlib: crates/qc/src/lib.rs crates/qc/src/bench.rs crates/qc/src/collection.rs crates/qc/src/regress.rs crates/qc/src/rng.rs crates/qc/src/runner.rs crates/qc/src/shrink.rs crates/qc/src/source.rs crates/qc/src/strategy.rs

/root/repo/target/release/deps/liblasagne_qc-a258f4a5389474d1.rmeta: crates/qc/src/lib.rs crates/qc/src/bench.rs crates/qc/src/collection.rs crates/qc/src/regress.rs crates/qc/src/rng.rs crates/qc/src/runner.rs crates/qc/src/shrink.rs crates/qc/src/source.rs crates/qc/src/strategy.rs

crates/qc/src/lib.rs:
crates/qc/src/bench.rs:
crates/qc/src/collection.rs:
crates/qc/src/regress.rs:
crates/qc/src/rng.rs:
crates/qc/src/runner.rs:
crates/qc/src/shrink.rs:
crates/qc/src/source.rs:
crates/qc/src/strategy.rs:
