/root/repo/target/release/deps/lasagne_fences-8cb8c760635fc729.d: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

/root/repo/target/release/deps/liblasagne_fences-8cb8c760635fc729.rlib: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

/root/repo/target/release/deps/liblasagne_fences-8cb8c760635fc729.rmeta: crates/fences/src/lib.rs crates/fences/src/legality.rs crates/fences/src/placement.rs

crates/fences/src/lib.rs:
crates/fences/src/legality.rs:
crates/fences/src/placement.rs:
