/root/repo/target/release/examples/fence_optimizer-382bda38b504be05.d: examples/fence_optimizer.rs

/root/repo/target/release/examples/fence_optimizer-382bda38b504be05: examples/fence_optimizer.rs

examples/fence_optimizer.rs:
