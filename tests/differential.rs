//! Differential fuzzing of the whole translator: random x86-64 functions
//! are lifted and executed on the LIR interpreter, then translated under
//! every §9.1 configuration and executed on the simulated Arm core. All
//! six executions must agree on the return value and on the final contents
//! of the shared memory region — any divergence is a bug in the lifter,
//! an optimization pass, fence placement, or the Arm backend.

use lasagne_qc::collection;
use lasagne_qc::prelude::*;
use lasagne_repro::armgen::machine::ArmMachine;
use lasagne_repro::lir::interp::{Machine, Val};
use lasagne_repro::translator::{translate, Version};
use lasagne_repro::x86::asm::Asm;
use lasagne_repro::x86::binary::BinaryBuilder;
use lasagne_repro::x86::inst::{AluOp, FpPrec, Inst, MemRef, Rm, ShiftOp, SseOp, XmmRm};
use lasagne_repro::x86::reg::{Cond, Gpr, Width, Xmm};

/// Shared memory region base passed in RDI.
const REGION: u64 = 0x4000_0000;
const REGION_SLOTS: i64 = 8;

/// Scratch registers the generator plays with.
const REGS: [Gpr; 5] = [Gpr::Rax, Gpr::Rcx, Gpr::Rdx, Gpr::R8, Gpr::R9];

fn any_reg() -> impl Strategy<Value = Gpr> {
    prop_oneof![
        Just(REGS[0]),
        Just(REGS[1]),
        Just(REGS[2]),
        Just(REGS[3]),
        Just(REGS[4]),
        Just(Gpr::Rdi),
        Just(Gpr::Rsi),
    ]
}

fn any_dst() -> impl Strategy<Value = Gpr> {
    // Never clobber RDI (the region pointer).
    prop_oneof![
        Just(REGS[0]),
        Just(REGS[1]),
        Just(REGS[2]),
        Just(REGS[3]),
        Just(REGS[4])
    ]
}

fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W32), Just(Width::W64)]
}

fn any_slot() -> impl Strategy<Value = i64> {
    (0..REGION_SLOTS).prop_map(|s| s * 8)
}

fn any_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::E),
        Just(Cond::Ne),
        Just(Cond::L),
        Just(Cond::Ge),
        Just(Cond::B),
        Just(Cond::A),
        Just(Cond::S),
    ]
}

fn any_op() -> impl Strategy<Value = Inst> {
    prop_oneof![
        // Constants and moves.
        (any_dst(), -1000i64..1000).prop_map(|(r, v)| Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(r),
            imm: v as i32
        }),
        (any_dst(), any_reg(), any_width()).prop_map(|(d, s, w)| Inst::MovRRm {
            w,
            dst: d,
            src: Rm::Reg(s)
        }),
        // ALU.
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor),
                Just(AluOp::Cmp)
            ],
            any_dst(),
            any_reg(),
            any_width()
        )
            .prop_map(|(op, d, s, w)| Inst::AluRRm {
                op,
                w,
                dst: d,
                src: Rm::Reg(s)
            }),
        (any_dst(), any_reg()).prop_map(|(d, s)| Inst::IMul2 {
            w: Width::W64,
            dst: d,
            src: Rm::Reg(s)
        }),
        (
            prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)],
            any_dst(),
            0u8..32
        )
            .prop_map(|(op, d, k)| Inst::ShiftI {
                op,
                w: Width::W64,
                dst: Rm::Reg(d),
                imm: k
            }),
        // Width conversions.
        (any_dst(), any_reg()).prop_map(|(d, s)| Inst::MovZx {
            dw: Width::W64,
            sw: Width::W8,
            dst: d,
            src: Rm::Reg(s)
        }),
        (any_dst(), any_reg()).prop_map(|(d, s)| Inst::MovSx {
            dw: Width::W64,
            sw: Width::W32,
            dst: d,
            src: Rm::Reg(s)
        }),
        // Address computation.
        (any_dst(), any_slot()).prop_map(|(d, off)| Inst::Lea {
            w: Width::W64,
            dst: d,
            addr: MemRef::base_disp(Gpr::Rdi, off)
        }),
        // Shared memory traffic through the region.
        (any_dst(), any_slot()).prop_map(|(d, off)| Inst::MovRRm {
            w: Width::W64,
            dst: d,
            src: Rm::Mem(MemRef::base_disp(Gpr::Rdi, off))
        }),
        (any_reg(), any_slot()).prop_map(|(s, off)| Inst::MovRmR {
            w: Width::W64,
            dst: Rm::Mem(MemRef::base_disp(Gpr::Rdi, off)),
            src: s
        }),
        // Flag consumers.
        (any_cond(), any_dst()).prop_map(|(cc, d)| Inst::Setcc {
            cc,
            dst: Rm::Reg(d)
        }),
        (any_cond(), any_dst(), any_reg()).prop_map(|(cc, d, s)| Inst::Cmovcc {
            cc,
            w: Width::W64,
            dst: d,
            src: Rm::Reg(s)
        }),
        // Atomics.
        (any_reg(), any_slot()).prop_map(|(s, off)| Inst::LockXadd {
            w: Width::W64,
            mem: MemRef::base_disp(Gpr::Rdi, off),
            src: s
        }),
        Just(Inst::Mfence),
        // Scalar FP round-trip (kept deterministic with small ints).
        (any_dst(), any_reg()).prop_map(|(_d, s)| Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(0),
            src: Rm::Reg(s)
        }),
        Just(Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(0))
        }),
        (any_dst(),).prop_map(|(d,)| Inst::CvtF2Si {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: d,
            src: XmmRm::Reg(Xmm(0))
        }),
    ]
}

/// How a segment of generated instructions is wrapped in control flow.
#[derive(Debug, Clone)]
enum Shape {
    /// Straight-line.
    Straight,
    /// `cmp r9, imm; jcc over` — the segment runs conditionally.
    Guarded(Cond, i32),
    /// A counted loop over the segment (r10 is the dedicated counter).
    Loop(u8),
}

fn any_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        3 => Just(Shape::Straight),
        1 => (any_cond(), -2i32..3).prop_map(|(cc, k)| Shape::Guarded(cc, k)),
        1 => (1u8..4).prop_map(Shape::Loop),
    ]
}

fn emit_segment(a: &mut Asm, ops: &[Inst], shape: &Shape) {
    match shape {
        Shape::Straight => {
            for i in ops {
                a.push(*i);
            }
        }
        Shape::Guarded(cc, k) => {
            let skip = a.label();
            a.push(Inst::AluRmI {
                op: AluOp::Cmp,
                w: Width::W64,
                dst: Rm::Reg(Gpr::R9),
                imm: *k,
            });
            a.jcc(*cc, skip);
            for i in ops {
                a.push(*i);
            }
            a.bind(skip);
        }
        Shape::Loop(n) => {
            let top = a.label();
            a.push(Inst::MovRmI {
                w: Width::W64,
                dst: Rm::Reg(Gpr::R10),
                imm: i32::from(*n),
            });
            a.bind(top);
            for i in ops {
                a.push(*i);
            }
            a.push(Inst::AluRmI {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Rm::Reg(Gpr::R10),
                imm: 1,
            });
            a.jcc(Cond::Ne, top);
        }
    }
}

fn build_binary(body: &[Inst]) -> lasagne_repro::x86::binary::Binary {
    let mut bin = BinaryBuilder::new();
    let mut a = Asm::new();
    // Deterministic register init (every generated op may read any reg).
    for (i, r) in REGS.iter().enumerate() {
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(*r),
            imm: (i as i32 + 1) * 17,
        });
    }
    // Initialise XMM0 too, so FP ops never read a parameter register the
    // harness does not pass.
    a.push(Inst::CvtSi2F {
        prec: FpPrec::Double,
        iw: Width::W64,
        dst: Xmm(0),
        src: Rm::Reg(Gpr::Rsi),
    });
    for i in body {
        a.push(*i);
    }
    // Return rax.
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("fuzz", a.finish(addr).unwrap());
    bin.finish()
}

fn init_region<M: FnMut(u64, u64)>(mut write: M) {
    for i in 0..REGION_SLOTS as u64 {
        write(REGION + 8 * i, i.wrapping_mul(0x0101_0101) + 3);
    }
}

fn run_lir(m: &lasagne_repro::lir::Module) -> (u64, Vec<u64>) {
    let id = m.func_by_name("fuzz").unwrap();
    let mut machine = Machine::new(m);
    init_region(|a, v| machine.mem.write_u64(a, v));
    let r = machine.run(id, &[Val::B64(REGION), Val::B64(5)]).unwrap();
    let finals = (0..REGION_SLOTS as u64)
        .map(|i| machine.mem.read_u64(REGION + 8 * i))
        .collect();
    (r.ret.map(Val::bits).unwrap_or(0), finals)
}

fn run_arm(arm: &lasagne_repro::armgen::AModule) -> (u64, Vec<u64>) {
    let idx = arm.func_by_name("fuzz").unwrap();
    let mut machine = ArmMachine::new(arm);
    init_region(|a, v| machine.mem.write_u64(a, v));
    let r = machine.run(idx, &[REGION, 5], &[]).unwrap();
    let finals = (0..REGION_SLOTS as u64)
        .map(|i| machine.mem.read_u64(REGION + 8 * i))
        .collect();
    (r.ret, finals)
}

fn build_cfg_binary(segments: &[(Vec<Inst>, Shape)]) -> lasagne_repro::x86::binary::Binary {
    let mut bin = BinaryBuilder::new();
    let mut a = Asm::new();
    for (i, r) in REGS.iter().enumerate() {
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(*r),
            imm: (i as i32 + 1) * 17,
        });
    }
    a.push(Inst::CvtSi2F {
        prec: FpPrec::Double,
        iw: Width::W64,
        dst: Xmm(0),
        src: Rm::Reg(Gpr::Rsi),
    });
    for (ops, shape) in segments {
        emit_segment(&mut a, ops, shape);
    }
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("fuzz", a.finish(addr).unwrap());
    bin.finish()
}

fn check_all_versions(
    bin: &lasagne_repro::x86::binary::Binary,
    label: &str,
) -> Result<(), TestCaseError> {
    let lifted = lasagne_repro::lifter::lift_binary(bin)
        .map_err(|e| TestCaseError::fail(format!("lift: {e}")))?;
    let reference = run_lir(&lifted);
    for v in Version::ALL {
        let t = translate(bin, v).map_err(|e| TestCaseError::fail(format!("{}: {e}", v.name())))?;
        let lir_result = run_lir(&t.module);
        prop_assert_eq!(
            &lir_result,
            &reference,
            "LIR divergence under {} ({})",
            v.name(),
            label
        );
        let arm_result = run_arm(&t.arm);
        prop_assert_eq!(
            &arm_result,
            &reference,
            "Arm divergence under {} ({})",
            v.name(),
            label
        );
    }
    Ok(())
}

properties! {
    config = Config::with_cases(256);

    fn all_configurations_agree(body in collection::vec(any_op(), 1..24)) {
        let bin = build_binary(&body);
        let lifted = lasagne_repro::lifter::lift_binary(&bin)
            .map_err(|e| TestCaseError::fail(format!("lift: {e}")))?;
        let reference = run_lir(&lifted);

        for v in Version::ALL {
            let t = translate(&bin, v)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", v.name())))?;
            // The optimized LIR must agree with the lifted LIR…
            let lir_result = run_lir(&t.module);
            prop_assert_eq!(
                &lir_result, &reference,
                "LIR divergence under {} for {:?}", v.name(), body
            );
            // …and the Arm lowering must agree with both.
            let arm_result = run_arm(&t.arm);
            prop_assert_eq!(
                &arm_result, &reference,
                "Arm divergence under {} for {:?}", v.name(), body
            );
        }
    }

    /// Same property over programs with branches and loops — exercises the
    /// lifter's CFG reconstruction, φ insertion, and the optimizer's
    /// cross-block passes.
    fn all_configurations_agree_with_control_flow(
        segments in collection::vec(
            (collection::vec(any_op(), 1..8), any_shape()),
            1..5,
        )
    ) {
        let bin = build_cfg_binary(&segments);
        check_all_versions(&bin, "cfg-fuzz")?;
    }
}

/// The minimal counterexample persisted in `differential.proptest-regressions`
/// (seed `cc 54f1dac6…`): a 32-bit mov truncating RDI into RAX, an SSE
/// scalar add on XMM0, then a second 32-bit mov of RSI into RAX. The FP op
/// between the two integer moves historically diverged between the LIR
/// interpreter and the Arm lowering. Pinned here as a deterministic unit
/// test so the case survives any change to the generator or seed format.
#[test]
fn regression_w32_mov_around_sse_scalar_add() {
    let body = [
        Inst::MovRRm {
            w: Width::W32,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdi),
        },
        Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(0)),
        },
        Inst::MovRRm {
            w: Width::W32,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rsi),
        },
    ];
    let bin = build_binary(&body);
    check_all_versions(&bin, "persisted regression").unwrap_or_else(|e| panic!("{e}"));
}
