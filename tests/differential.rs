//! Differential fuzzing of the whole translator — the integration-test
//! face of the three-way oracle in [`lasagne::difftest`]. Random x86-64
//! functions are executed on the byte-level x86 interpreter (the
//! independent reference), then lifted and executed on the LIR
//! interpreter, then translated under every §9.1 configuration and
//! executed on the simulated Arm core. All executions must agree on the
//! return value and on the final contents of the shared memory region —
//! any divergence is a bug in the lifter, an optimization pass, fence
//! placement, the Arm backend, or the x86 interpreter itself.
//!
//! The generator (all 16 condition codes, shift-by-CL, 8/16-bit widths)
//! and the executors are shared with the `lasagne difftest` CLI sweep
//! and the capped ci.sh run; this file only binds them to the qc
//! harness. Failure seeds persist to `differential.qc-regressions`
//! (seeds in the legacy `differential.proptest-regressions` file are
//! replayed too).

use lasagne_qc::collection;
use lasagne_qc::prelude::*;
use lasagne_repro::translator::difftest::{
    any_op, any_shape, build_binary, build_cfg_binary, check_threeway, Shape,
};
use lasagne_repro::x86::inst::{FpPrec, Inst, Rm, ShiftOp, SseOp, XmmRm};
use lasagne_repro::x86::reg::{Gpr, Width, Xmm};

properties! {
    config = Config::with_cases(256);

    fn all_configurations_agree(body in collection::vec(any_op(), 1..24)) {
        let bin = build_binary(&body);
        check_threeway(&bin, "fuzz")
            .map(drop)
            .map_err(TestCaseError::fail)?;
    }

    /// Same property over programs with branches and loops — exercises the
    /// lifter's CFG reconstruction, φ insertion, and the optimizer's
    /// cross-block passes.
    fn all_configurations_agree_with_control_flow(
        segments in collection::vec(
            (collection::vec(any_op(), 1..8), any_shape()),
            1..5,
        )
    ) {
        let bin = build_cfg_binary(&segments);
        check_threeway(&bin, "cfg-fuzz")
            .map(drop)
            .map_err(TestCaseError::fail)?;
    }
}

/// The minimal counterexample persisted in `differential.proptest-regressions`
/// (seed `cc 54f1dac6…`, migrated to `qc 54f1dac6f8875464` in
/// `differential.qc-regressions`): a 32-bit mov truncating RDI into RAX, an
/// SSE scalar add on XMM0, then a second 32-bit mov of RSI into RAX. The FP
/// op between the two integer moves historically diverged between the LIR
/// interpreter and the Arm lowering. Pinned here as a deterministic unit
/// test so the case survives any change to the generator or seed format.
#[test]
fn regression_w32_mov_around_sse_scalar_add() {
    let body = [
        Inst::MovRRm {
            w: Width::W32,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdi),
        },
        Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(0)),
        },
        Inst::MovRRm {
            w: Width::W32,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rsi),
        },
    ];
    let bin = build_binary(&body);
    check_threeway(&bin, "persisted regression").unwrap_or_else(|e| panic!("{e}"));
}

/// The minimal counterexamples behind seeds `qc a22d3d68…` and
/// `qc 31d195ca…` in `differential.qc-regressions`: a function whose only
/// use of a parameter register is RSI (here a byte-wide read into AL; the
/// other seed reaches RSI through the prologue's `cvtsi2sd xmm0, rsi`).
/// Type discovery took the longest *live prefix* of the parameter
/// registers, so with RDI dead it found zero parameters and the lifted
/// function read undef where x86 read 5. The two-way harness bug-shared
/// this with its reference; only the byte-level x86 interpreter saw it.
#[test]
fn regression_unused_leading_param() {
    let segments = [(
        vec![Inst::MovRRm {
            w: Width::W8,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rsi),
        }],
        Shape::Straight,
    )];
    let bin = build_cfg_binary(&segments);
    check_threeway(&bin, "persisted regression").unwrap_or_else(|e| panic!("{e}"));
}

/// The minimal counterexample behind seed `qc e70950b8…` in
/// `crates/lasagne/tests/difftest.qc-regressions`: `shl cl` on a 32-bit
/// operand whose count (CL = 34) exceeds the operand width. x86 and LIR
/// reduce register shift counts modulo the operand width (34 % 32 = 2),
/// but armgen lowered narrow shifts on the 64-bit scratch ALU without
/// masking the count, shifting by 34 and producing 0 after the 32-bit
/// result mask. Found by the three-way sweep the first time shift-by-CL
/// entered the generator; the old two-way harness could never see it
/// because the lifter bug-shared the masked semantics with the reference.
#[test]
fn regression_narrow_shiftcl_count_masking() {
    let segments = [
        (
            vec![Inst::ShiftCl {
                op: ShiftOp::Shl,
                w: Width::W32,
                dst: Rm::Reg(Gpr::Rcx),
            }],
            Shape::Straight,
        ),
        (
            vec![Inst::MovRRm {
                w: Width::W16,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rcx),
            }],
            Shape::Straight,
        ),
    ];
    let bin = build_cfg_binary(&segments);
    check_threeway(&bin, "persisted regression").unwrap_or_else(|e| panic!("{e}"));
}
