//! End-to-end tests for the observability layer: `--trace-out` traces,
//! the `explain-fences` provenance table, and the `trace-check` validator,
//! exercised through the `lasagne` binary and the library pipeline.

use std::process::Command;

use lasagne_repro::phoenix::all_benchmarks;
use lasagne_repro::trace::{json, TraceCtx};
use lasagne_repro::translator::{FuncFenceRecord, Pipeline, Version};

fn lasagne(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lasagne"))
        .args(args)
        .output()
        .expect("spawn lasagne binary")
}

fn stdout(args: &[&str]) -> String {
    let out = lasagne(args);
    assert!(
        out.status.success(),
        "lasagne {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lasagne-trace-test-{}-{name}", std::process::id()))
}

/// Span/instant categories present in a trace file.
fn categories(trace_json: &str) -> Vec<String> {
    let doc = json::parse(trace_json).expect("trace file parses");
    let mut cats: Vec<String> = doc
        .get("traceEvents")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
        .filter_map(|e| e.get("cat").and_then(|c| c.as_str()).map(str::to_owned))
        .collect();
    cats.sort();
    cats.dedup();
    cats
}

#[test]
fn cold_trace_covers_all_six_stages_and_warm_trace_is_one_cache_hit() {
    let cache_dir = tmp("cache");
    let cold_path = tmp("cold.json");
    let warm_path = tmp("warm.json");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let base = [
        "translate",
        "HT",
        "--scale",
        "24",
        "--jobs",
        "4",
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "--trace-out",
    ];
    let mut cold_args: Vec<&str> = base.to_vec();
    cold_args.push(cold_path.to_str().unwrap());
    let cold_asm = stdout(&cold_args);
    let mut warm_args: Vec<&str> = base.to_vec();
    warm_args.push(warm_path.to_str().unwrap());
    let warm_asm = stdout(&warm_args);
    assert_eq!(cold_asm, warm_asm, "warm run changed the emitted assembly");

    let cold = std::fs::read_to_string(&cold_path).expect("cold trace written");
    let cold_cats = categories(&cold);
    for cat in ["lift", "refine", "fences", "merge", "opt", "armgen"] {
        assert!(
            cold_cats.iter().any(|c| c == cat),
            "cold trace has no {cat} events (saw {cold_cats:?})"
        );
    }
    assert!(
        !cold_cats.iter().any(|c| c == "cache"),
        "cold trace contains cache events: {cold_cats:?}"
    );

    let warm = std::fs::read_to_string(&warm_path).expect("warm trace written");
    let warm_cats = categories(&warm);
    assert!(
        warm_cats.iter().any(|c| c == "cache"),
        "warm trace has no cache-hit span (saw {warm_cats:?})"
    );
    for cat in ["lift", "refine", "fences", "merge", "opt"] {
        assert!(
            !warm_cats.iter().any(|c| c == cat),
            "warm trace fabricated {cat} events: {warm_cats:?}"
        );
    }
    let doc = json::parse(&warm).unwrap();
    assert!(
        doc.get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("cache-hit")),
        "no event named cache-hit in warm trace"
    );

    // The shipped validator accepts both files.
    for path in [&cold_path, &warm_path] {
        let out = lasagne(&["trace-check", path.to_str().unwrap(), "--jobs", "4"]);
        assert!(
            out.status.success(),
            "trace-check rejected {}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // And rejects garbage.
    let bad = tmp("bad.json");
    std::fs::write(&bad, "{\"traceEvents\":[]}").unwrap();
    let out = lasagne(&["trace-check", bad.to_str().unwrap()]);
    assert!(!out.status.success(), "trace-check accepted an empty trace");

    for p in [&cold_path, &warm_path, &bad] {
        std::fs::remove_file(p).ok();
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn explain_fences_is_byte_identical_serial_vs_parallel() {
    let serial = stdout(&["explain-fences", "KM", "--scale", "24"]);
    let parallel = stdout(&["explain-fences", "KM", "--scale", "24", "--jobs", "4"]);
    assert_eq!(
        serial, parallel,
        "--jobs 4 changed the explain-fences table"
    );
    for col in ["function", "rule", "fate", "reduction"] {
        assert!(serial.contains(col), "missing `{col}` in:\n{serial}");
    }
}

#[test]
fn provenance_totals_match_placement_stats_for_every_benchmark() {
    for b in &all_benchmarks(24) {
        let trace = TraceCtx::collecting();
        let (traced_t, report) = Pipeline::new(Version::PPOpt)
            .with_trace(trace)
            .run(&b.binary)
            .unwrap();
        let (t, records) = Pipeline::new(Version::PPOpt)
            .explain_fences(&b.binary)
            .unwrap();
        assert_eq!(
            lasagne_repro::armgen::print::print_module(&traced_t.arm),
            lasagne_repro::armgen::print::print_module(&t.arm),
            "{}: explain path diverged from the traced run",
            b.name
        );
        let inserted: usize = records.iter().map(FuncFenceRecord::inserted).sum();
        assert_eq!(inserted, t.stats.fences_placed, "{}", b.name);
        let merged: usize = records.iter().map(FuncFenceRecord::merged).sum();
        assert_eq!(
            merged,
            t.stats.fences_placed - t.stats.fences_final,
            "{}",
            b.name
        );
        let m = report.metrics.expect("metrics on traced run");
        assert_eq!(
            (m.counter("fences.placed.frm") + m.counter("fences.placed.fww")) as usize,
            inserted,
            "{}",
            b.name
        );
        let elided: usize = records.iter().map(FuncFenceRecord::elided).sum();
        assert_eq!(
            m.counter("fences.elided.stack") as usize,
            elided,
            "{}",
            b.name
        );
    }
}
