//! Stress tests for the persistent work-stealing pool under nesting and
//! panics.
//!
//! The pool is shared process-wide: the pipeline's fused sections, the
//! memory-model litmus sweeps, and any `par_map` caller all submit to the
//! same worker set. The two hazards of that design are (a) deadlock —
//! a worker that blocks on a nested fan-out while every sibling does the
//! same would starve the queue — and (b) lost panics — a work item that
//! panics on a worker thread must resurface on the submitting caller, not
//! hang the join or kill the pool. Both are exercised here against the
//! real shared pool (not a private test pool), so the tests also prove
//! the pool survives for later translations in the same process.

use lasagne_repro::armgen::print::print_module;
use lasagne_repro::memmodel;
use lasagne_repro::phoenix::all_benchmarks;
use lasagne_repro::translator::pipeline::{par_map, pool::Pool};
use lasagne_repro::translator::{Pipeline, Version};

/// Nested fan-out on the shared pool must not deadlock: an outer
/// `par_map` whose work items each run a full litmus sweep — itself
/// several layers of `par_map` (suite → per-model outcome enumeration →
/// per-partition) — on the same workers. Help-while-waiting makes this
/// safe: a runner blocked on its nested join executes queued tasks
/// instead of parking.
#[test]
fn nested_litmus_sweep_inside_par_map_does_not_deadlock() {
    let pool = Pool::shared();
    pool.ensure_workers(4);
    let serial = memmodel::sweep_suite_within(1);
    let nested = par_map(4, vec![4usize, 2, 4], |_, jobs| {
        memmodel::sweep_suite_within_on(pool, jobs)
    });
    for rows in &nested {
        assert_eq!(rows, &serial, "nested sweep diverged from serial");
    }
}

/// A litmus sweep nested inside a *pipeline stage* work item: translation
/// fan-outs and memory-model fan-outs interleave on one worker set. The
/// translation must still be byte-identical to serial.
#[test]
fn litmus_sweep_nested_inside_a_pipeline_translation_is_safe() {
    let b = &all_benchmarks(24)[0];
    let (serial, _) = Pipeline::new(Version::PPOpt).run(&b.binary).unwrap();
    let out = par_map(4, vec![(); 2], |i, ()| {
        if i == 0 {
            let rows = memmodel::sweep_suite_on(Pool::shared(), 4);
            assert!(rows.iter().all(|r| r.chain.is_ok()));
        }
        let (t, _) = Pipeline::new(Version::PPOpt)
            .with_jobs(4)
            .run(&b.binary)
            .unwrap();
        print_module(&t.arm)
    });
    for asm in &out {
        assert_eq!(asm, &print_module(&serial.arm));
    }
}

/// A panicking work item must surface as a panic on the caller — not a
/// hang, and not a poisoned pool. The follow-up translation proves the
/// shared pool still works afterwards.
#[test]
fn work_item_panic_surfaces_and_pool_survives() {
    Pool::shared().ensure_workers(4);
    let caught = std::panic::catch_unwind(|| {
        par_map(4, (0..16).collect::<Vec<u32>>(), |_, i| {
            if i == 7 {
                panic!("injected work-item failure");
            }
            i * 2
        })
    });
    let err = caught.expect_err("panic must propagate out of par_map");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_string)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("injected work-item failure"),
        "wrong panic payload: {msg:?}"
    );

    let b = &all_benchmarks(24)[0];
    let (serial, _) = Pipeline::new(Version::PPOpt).run(&b.binary).unwrap();
    let (parallel, _) = Pipeline::new(Version::PPOpt)
        .with_jobs(4)
        .run(&b.binary)
        .unwrap();
    assert_eq!(
        print_module(&serial.arm),
        print_module(&parallel.arm),
        "pool produced divergent output after a work-item panic"
    );
}

/// The `steals` counter must mean what it says: cross-thread deque
/// raids, and nothing else. A flat schedule — every fan-out submitted by
/// the external caller — routes all tasks through the injector, so no
/// worker deque is ever loaded and zero steals is the honest reading
/// (this is why BENCH_pipeline.json rows legitimately show `steals: 0`).
/// A *nested* fan-out, by contrast, pushes its tasks onto the submitting
/// worker's own deque; a sibling that goes dry must raid it, and that
/// raid has to show up in the counter. A private pool keeps the deltas
/// isolated from concurrently running tests on the shared pool.
#[test]
fn nested_fan_out_provokes_a_cross_thread_steal() {
    let pool = Pool::new(2);

    let before = pool.stats();
    let flat = pool.par_map(2, (0..8).collect::<Vec<u32>>(), |_, i| i * 2);
    assert_eq!(flat, (0..8).map(|i| i * 2).collect::<Vec<u32>>());
    assert_eq!(
        pool.stats().since(&before).steals,
        0,
        "flat external fan-out routed through the injector must not steal"
    );

    // Item 0 lands on a worker and its nested fan-out loads that worker's
    // own deque with slow tasks; item 1 is free, so its worker goes dry
    // while the deque is still full and must steal. Scheduling can
    // occasionally let the owner drain everything first, so retry.
    let mut stole = false;
    for _ in 0..32 {
        let before = pool.stats();
        let out = pool.par_map(2, vec![0u32, 1], |_, outer| {
            if outer == 0 {
                pool.par_map(2, (0..8).collect::<Vec<u32>>(), |_, i| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    i + 1
                })
                .into_iter()
                .sum()
            } else {
                outer
            }
        });
        assert_eq!(out, vec![36, 1]);
        if pool.stats().since(&before).steals > 0 {
            stole = true;
            break;
        }
    }
    assert!(
        stole,
        "nested fan-out never produced a cross-thread steal in 32 attempts"
    );
    pool.shutdown();
}

/// A panic inside a *pipeline* work item must come out of `Pipeline::run`
/// as a panic (the driver re-raises the first worker panic at the join),
/// not a deadlock. Uses a binary whose lift succeeds but injects the
/// panic through a par_map running on the same pool as the pipeline.
#[test]
fn nested_panic_under_load_still_propagates() {
    Pool::shared().ensure_workers(4);
    let caught = std::panic::catch_unwind(|| {
        par_map(4, (0..4).collect::<Vec<u32>>(), |_, outer| {
            // Inner fan-out: one branch panics while siblings grind real
            // enumeration work, so the panic has to cross a nested join.
            par_map(2, vec![outer, outer + 10], |_, inner| {
                if inner == 12 {
                    panic!("nested failure");
                }
                memmodel::sweep_suite_within(1).len()
            })
        })
    });
    assert!(caught.is_err(), "nested panic was swallowed");
}
