//! Determinism of the parallel translation driver: for every Phoenix
//! benchmark and every pipeline configuration, translating with 4 worker
//! threads must produce byte-identical Arm output and identical statistics
//! to the single-threaded run.
//!
//! This is the acceptance gate for `--jobs`: parallelism is an
//! implementation detail that may never leak into the translation.

use lasagne_repro::armgen::print::print_module;
use lasagne_repro::phoenix::all_benchmarks;
use lasagne_repro::translator::{Pipeline, Version};

#[test]
fn jobs4_is_byte_identical_to_serial_on_all_benchmarks() {
    for b in all_benchmarks(48) {
        for v in Version::ALL {
            let (serial, _) = Pipeline::new(v).run(&b.binary).unwrap();
            let (parallel, _) = Pipeline::new(v).with_jobs(4).run(&b.binary).unwrap();
            assert_eq!(
                print_module(&serial.arm),
                print_module(&parallel.arm),
                "{} under {}: parallel Arm output diverged",
                b.name,
                v.name()
            );
            assert_eq!(
                serial.stats,
                parallel.stats,
                "{} under {}: parallel statistics diverged",
                b.name,
                v.name()
            );
        }
    }
}

#[test]
fn job_count_beyond_function_count_is_safe() {
    // More workers than work items: excess threads must idle, not panic,
    // and the output must still match the serial run.
    let b = &all_benchmarks(16)[0];
    let (serial, _) = Pipeline::new(Version::PPOpt).run(&b.binary).unwrap();
    let (wide, _) = Pipeline::new(Version::PPOpt)
        .with_jobs(64)
        .run(&b.binary)
        .unwrap();
    assert_eq!(print_module(&serial.arm), print_module(&wide.arm));
}

#[test]
fn report_covers_every_function_in_every_stage() {
    let b = &all_benchmarks(24)[1]; // kmeans: several functions
    let nfuncs = b.binary.functions.len();
    let (_, report) = Pipeline::new(Version::PPOpt)
        .with_jobs(2)
        .run(&b.binary)
        .unwrap();
    assert!(report.total_nanos > 0);
    for st in &report.stages {
        assert_eq!(
            st.funcs.len(),
            nfuncs,
            "stage {} missing per-function entries",
            st.stage.name()
        );
        for f in &st.funcs {
            assert!(
                f.nanos > 0,
                "{}: zero-time entry for {}",
                st.stage.name(),
                f.func
            );
        }
    }
}
