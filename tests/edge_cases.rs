//! Hand-written flag/carry/overflow/NaN edge cases for the differential
//! oracle. Each case is a tiny x86 body with a hand-computed expected
//! return value: the byte-level x86 interpreter must produce that value,
//! and then the full three-way check must hold — the LIR interpreter and
//! the simulated Arm core (under all four §9.1 configurations) must agree
//! with the x86 reference on the return value and final memory.
//!
//! Float→int conversion and `min`/`max` are pinned to the *model*
//! semantics shared by all three legs (Rust saturating casts — NaN → 0,
//! ±inf → i64 extremes — and Rust `f64::min`/`max`), which the x86
//! interpreter documents as matching the LIR `FpToSi` model.

use lasagne_repro::translator::difftest::{build_binary, check_threeway, run_x86};
use lasagne_repro::x86::inst::{AluOp, FpPrec, Inst, Rm, ShiftOp, SseOp, XmmRm};
use lasagne_repro::x86::reg::{Cond, Gpr, Width, Xmm};

/// Runs `body` through the x86 interpreter, asserts the hand-computed
/// return value, then asserts three-way agreement.
fn case(name: &str, body: &[Inst], expected: u64) {
    let bin = build_binary(body);
    let (ret, _) = run_x86(&bin).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(
        ret, expected,
        "{name}: x86 interpreter disagrees with the hand-computed value"
    );
    check_threeway(&bin, name).unwrap_or_else(|e| panic!("{e}"));
}

fn movq(dst: Gpr, imm: i32) -> Inst {
    Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(dst),
        imm,
    }
}

fn addi(w: Width, dst: Gpr, imm: i32) -> Inst {
    Inst::AluRmI {
        op: AluOp::Add,
        w,
        dst: Rm::Reg(dst),
        imm,
    }
}

fn subi(w: Width, dst: Gpr, imm: i32) -> Inst {
    Inst::AluRmI {
        op: AluOp::Sub,
        w,
        dst: Rm::Reg(dst),
        imm,
    }
}

fn set(cc: Cond, dst: Gpr) -> Inst {
    Inst::Setcc {
        cc,
        dst: Rm::Reg(dst),
    }
}

/// Loads `xmm` with 0.0/0.0 = NaN (RCX is clobbered).
fn make_nan(xmm: u8) -> Vec<Inst> {
    vec![
        movq(Gpr::Rcx, 0),
        Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(xmm),
            src: Rm::Reg(Gpr::Rcx),
        },
        Inst::SseScalar {
            op: SseOp::Div,
            prec: FpPrec::Double,
            dst: Xmm(xmm),
            src: XmmRm::Reg(Xmm(xmm)),
        },
    ]
}

#[test]
fn carry_out_of_unsigned_add() {
    // u64::MAX + 1 wraps to 0 with CF=1.
    let body = [
        Inst::MovAbs {
            dst: Gpr::Rcx,
            imm: u64::MAX,
        },
        addi(Width::W64, Gpr::Rcx, 1),
        movq(Gpr::Rax, 0),
        set(Cond::B, Gpr::Rax),
    ];
    case("carry_out_of_unsigned_add", &body, 1);
}

#[test]
fn add_without_carry_clears_cf() {
    let body = [
        movq(Gpr::Rcx, 34),
        addi(Width::W64, Gpr::Rcx, 1),
        movq(Gpr::Rax, 0),
        set(Cond::B, Gpr::Rax),
    ];
    case("add_without_carry_clears_cf", &body, 0);
}

#[test]
fn signed_overflow_at_int64_max() {
    // i64::MAX + 1: OF=1 (signed wrap) but CF=0 (no unsigned carry).
    // Return 2*OF + CF = 2.
    let body = [
        Inst::MovAbs {
            dst: Gpr::Rcx,
            imm: i64::MAX as u64,
        },
        addi(Width::W64, Gpr::Rcx, 1),
        movq(Gpr::Rax, 0),
        movq(Gpr::Rdx, 0),
        set(Cond::O, Gpr::Rax),
        set(Cond::B, Gpr::Rdx),
        Inst::ShiftI {
            op: ShiftOp::Shl,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        },
        Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdx),
        },
    ];
    case("signed_overflow_at_int64_max", &body, 2);
}

#[test]
fn signed_overflow_at_int64_min_sub() {
    // i64::MIN - 1: OF=1, and no unsigned borrow (0x8000… ≥ 1) so CF=0.
    let body = [
        Inst::MovAbs {
            dst: Gpr::Rcx,
            imm: i64::MIN as u64,
        },
        subi(Width::W64, Gpr::Rcx, 1),
        movq(Gpr::Rax, 0),
        set(Cond::O, Gpr::Rax),
    ];
    case("signed_overflow_at_int64_min_sub", &body, 1);
}

#[test]
fn sub_borrow_sets_cf() {
    // 0 - 1 borrows: CF=1, SF=1, ZF=0. Return 2*CF + SF-via-Cond::S = 3.
    let body = [
        movq(Gpr::Rcx, 0),
        subi(Width::W64, Gpr::Rcx, 1),
        movq(Gpr::Rax, 0),
        movq(Gpr::Rdx, 0),
        set(Cond::B, Gpr::Rax),
        set(Cond::S, Gpr::Rdx),
        Inst::ShiftI {
            op: ShiftOp::Shl,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        },
        Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdx),
        },
    ];
    case("sub_borrow_sets_cf", &body, 3);
}

#[test]
fn cmp_signed_and_unsigned_orders_disagree() {
    // -1 vs 1: signed `<` holds (L=1) and unsigned `>` holds too (A=1),
    // because -1 is 0xFFFF…FFFF unsigned. Return 2*L + A = 3.
    let body = [
        movq(Gpr::Rcx, -1),
        movq(Gpr::Rax, 0),
        movq(Gpr::Rdx, 0),
        Inst::AluRmI {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rcx),
            imm: 1,
        },
        set(Cond::L, Gpr::Rax),
        set(Cond::A, Gpr::Rdx),
        Inst::ShiftI {
            op: ShiftOp::Shl,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        },
        Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdx),
        },
    ];
    case("cmp_signed_and_unsigned_orders_disagree", &body, 3);
}

#[test]
fn imul_wide_overflow_wraps_and_clears_of_in_model() {
    // 2^32 * 2^32 = 2^64 wraps the 64-bit product to 0. Hardware would set
    // OF/CF here; the shared model (x86 interpreter, LIR lifting, and the
    // Arm lowering alike) documents imul as clearing both, so the setcc
    // contributes 0 and the whole expression returns 0. What matters for
    // the oracle is that all three legs pin the SAME simplification.
    let body = [
        Inst::MovAbs {
            dst: Gpr::Rcx,
            imm: 1 << 32,
        },
        Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rcx,
            src: Rm::Reg(Gpr::Rcx),
        },
        movq(Gpr::Rax, 0),
        set(Cond::O, Gpr::Rax),
        Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rcx),
        },
    ];
    case("imul_wide_overflow_wraps_and_clears_of_in_model", &body, 0);
}

#[test]
fn carry_at_32_bit_boundary() {
    // 32-bit add of 0xFFFF_FFFF + 1: CF=1, and the 32-bit write zeroes
    // the upper half, so RCX ends up 0. Return CF + RCX = 1.
    let body = [
        Inst::MovAbs {
            dst: Gpr::Rcx,
            imm: 0xFFFF_FFFF,
        },
        addi(Width::W32, Gpr::Rcx, 1),
        movq(Gpr::Rax, 0),
        set(Cond::B, Gpr::Rax),
        Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rcx),
        },
    ];
    case("carry_at_32_bit_boundary", &body, 1);
}

#[test]
fn arithmetic_vs_logical_right_shift() {
    // -8 sar 1 = -4; -8 shr 60 = 15. Sum wraps to 11.
    let body = [
        movq(Gpr::Rcx, -8),
        Inst::ShiftI {
            op: ShiftOp::Sar,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rcx),
            imm: 1,
        },
        movq(Gpr::Rdx, -8),
        Inst::ShiftI {
            op: ShiftOp::Shr,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rdx),
            imm: 60,
        },
        movq(Gpr::Rax, 0),
        Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rcx),
        },
        Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdx),
        },
    ];
    case("arithmetic_vs_logical_right_shift", &body, 11);
}

#[test]
fn nan_compares_unordered() {
    // 0.0/0.0 is NaN; ucomisd NaN, NaN sets ZF=CF=PF=1.
    let mut body = make_nan(1);
    body.extend([
        Inst::Ucomis {
            prec: FpPrec::Double,
            a: Xmm(1),
            b: XmmRm::Reg(Xmm(1)),
        },
        movq(Gpr::Rax, 0),
        set(Cond::P, Gpr::Rax),
    ]);
    case("nan_compares_unordered", &body, 1);
}

#[test]
fn nan_propagates_through_arithmetic() {
    // NaN + 5.0 is still NaN (prologue sets XMM0 = 5.0).
    let mut body = make_nan(1);
    body.extend([
        Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(1),
            src: XmmRm::Reg(Xmm(0)),
        },
        Inst::Ucomis {
            prec: FpPrec::Double,
            a: Xmm(1),
            b: XmmRm::Reg(Xmm(1)),
        },
        movq(Gpr::Rax, 0),
        set(Cond::P, Gpr::Rax),
    ]);
    case("nan_propagates_through_arithmetic", &body, 1);
}

#[test]
fn nan_converts_to_zero_in_model() {
    // The shared FpToSi model saturates: NaN → 0. Add 7 so the result is
    // distinguishable from an accidental zero.
    let mut body = make_nan(1);
    body.extend([
        Inst::CvtF2Si {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Gpr::Rax,
            src: XmmRm::Reg(Xmm(1)),
        },
        addi(Width::W64, Gpr::Rax, 7),
    ]);
    case("nan_converts_to_zero_in_model", &body, 7);
}

#[test]
fn min_of_nan_and_value_returns_value() {
    // Model semantics (Rust f64::min): min(NaN, 5.0) = 5.0.
    let mut body = make_nan(1);
    body.extend([
        Inst::SseScalar {
            op: SseOp::Min,
            prec: FpPrec::Double,
            dst: Xmm(1),
            src: XmmRm::Reg(Xmm(0)),
        },
        Inst::CvtF2Si {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Gpr::Rax,
            src: XmmRm::Reg(Xmm(1)),
        },
    ]);
    case("min_of_nan_and_value_returns_value", &body, 5);
}

#[test]
fn infinity_saturates_float_to_int() {
    // 1.0/0.0 = +inf; the saturating cast pins it to i64::MAX.
    let body = [
        movq(Gpr::Rcx, 1),
        Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(1),
            src: Rm::Reg(Gpr::Rcx),
        },
        movq(Gpr::Rdx, 0),
        Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(2),
            src: Rm::Reg(Gpr::Rdx),
        },
        Inst::SseScalar {
            op: SseOp::Div,
            prec: FpPrec::Double,
            dst: Xmm(1),
            src: XmmRm::Reg(Xmm(2)),
        },
        Inst::CvtF2Si {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Gpr::Rax,
            src: XmmRm::Reg(Xmm(1)),
        },
    ];
    case("infinity_saturates_float_to_int", &body, i64::MAX as u64);
}
