//! Workspace-level integration tests: the complete translator exercised
//! across crates, from machine code to simulated Arm execution, including
//! the concurrency-semantics guarantees the paper proves.

use lasagne_repro::bench::{measure_native, measure_version, run_arm};
use lasagne_repro::memmodel::mapping::check_chain;
use lasagne_repro::memmodel::{litmus, outcomes, Model};
use lasagne_repro::phoenix::all_benchmarks;
use lasagne_repro::translator::{translate, Version};

/// The headline result (Figure 14): the full pipeline reduces fences by a
/// large factor versus the unrefined placement, on every benchmark, while
/// preserving the reference checksum.
#[test]
fn headline_fence_reduction() {
    let mut reductions = Vec::new();
    for b in all_benchmarks(96) {
        let (t, m) = measure_version(&b, Version::PPOpt);
        assert_eq!(m.checksum, b.workload.expected_ret);
        reductions.push(t.stats.fence_reduction_pct());
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        avg > 35.0,
        "average fence reduction should be paper-scale (≈45%), got {avg:.1}%"
    );
    assert!(
        reductions.iter().cloned().fold(0.0, f64::max) > 50.0,
        "some benchmark should reach a large reduction (paper: up to ~65%)"
    );
}

/// Figure 12's shape: translated code is slower than native but the
/// full pipeline recovers most of the gap on every benchmark.
#[test]
fn runtime_shape() {
    for b in all_benchmarks(96) {
        let native = measure_native(&b).runtime_cycles as f64;
        let (_, lifted) = measure_version(&b, Version::Lifted);
        let (_, ppopt) = measure_version(&b, Version::PPOpt);
        let lifted_norm = lifted.runtime_cycles as f64 / native;
        let ppopt_norm = ppopt.runtime_cycles as f64 / native;
        assert!(
            lifted_norm > 1.5,
            "{}: Lifted should be well above native",
            b.name
        );
        assert!(
            ppopt_norm < lifted_norm / 2.0,
            "{}: PPOpt should recover most of the gap",
            b.name
        );
        assert!(
            ppopt_norm >= 1.0,
            "{}: translated code cannot beat native",
            b.name
        );
    }
}

/// The concurrency contract, end to end: on every paper litmus program the
/// mapped Arm code admits no behavior the x86 source forbids.
#[test]
fn concurrency_contract_on_litmus_suite() {
    for (name, p) in litmus::paper_suite() {
        check_chain(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// The MP example of Figure 2: an incorrect (fence-free) translation
/// exhibits the bug the paper opens with; Lasagne's mapping does not.
#[test]
fn figure2_motivating_example() {
    let mp = litmus::mp();
    let weak = |o: &lasagne_repro::memmodel::Outcome| {
        let a = o
            .regs
            .iter()
            .find(|((t, r), _)| *t == 2 && *r == 0)
            .unwrap()
            .1;
        let b = o
            .regs
            .iter()
            .find(|((t, r), _)| *t == 2 && *r == 1)
            .unwrap()
            .1;
        a == 1 && b == 0
    };
    // The naive translation (reuse the same program on Arm) is buggy…
    assert!(outcomes(Model::Arm, &mp).iter().any(weak));
    // …the verified mapping is not.
    let fixed = lasagne_repro::memmodel::mapping::x86_to_arm(&mp);
    assert!(!outcomes(Model::Arm, &fixed).iter().any(weak));
}

/// Translating twice is deterministic (a requirement for a production SBT:
/// reproducible builds).
#[test]
fn translation_is_deterministic() {
    let b = &all_benchmarks(48)[0];
    let t1 = translate(&b.binary, Version::PPOpt).unwrap();
    let t2 = translate(&b.binary, Version::PPOpt).unwrap();
    assert_eq!(t1.stats, t2.stats);
    assert_eq!(t1.arm.inst_count(), t2.arm.inst_count());
    let m1 = run_arm(&t1.arm, &b.workload);
    let m2 = run_arm(&t2.arm, &b.workload);
    assert_eq!(m1, m2);
}

/// Dynamic barrier counts drop from Lifted to PPOpt (the mechanism behind
/// Figure 15).
#[test]
fn dynamic_barriers_drop() {
    for b in all_benchmarks(48) {
        let (_, lifted) = measure_version(&b, Version::Lifted);
        let (_, ppopt) = measure_version(&b, Version::PPOpt);
        let ld = lifted.dmbs.0 + lifted.dmbs.1 + lifted.dmbs.2;
        let pp = ppopt.dmbs.0 + ppopt.dmbs.1 + ppopt.dmbs.2;
        assert!(pp <= ld, "{}: dynamic barriers grew {ld} -> {pp}", b.name);
    }
}
