//! Integration tests for the `lasagne serve` daemon: an in-process
//! [`Server`] driven through the real wire protocol by [`Client`]
//! connections. Covers the determinism claim (responses byte-identical
//! to a local [`Pipeline`] run at any concurrency), the three-rung
//! lookup ladder (cold → disk → hot), explicit backpressure under a
//! tiny admission queue, and clean drain on shutdown.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use lasagne::serve::client::Client;
use lasagne::serve::wire::{Response, Source};
use lasagne::serve::{Config, Server};
use lasagne::{Pipeline, Version};
use lasagne_armgen::print::print_module;
use lasagne_phoenix::all_benchmarks;

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "lasagne-serve-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn unix_cfg(tag: &str) -> Config {
    Config {
        addr: temp_path(tag).to_string_lossy().into_owned(),
        jobs: 2,
        ..Config::default()
    }
}

/// Round-trips one translation and returns `(source, asm)`.
fn ask(client: &mut Client, bin: &lasagne_x86::binary::Binary, v: Version) -> (Source, String) {
    match client.translate(bin, v, 0).expect("translate call") {
        Response::Ok { source, asm, .. } => (source, asm),
        other => panic!("expected Ok, got {other:?}"),
    }
}

#[test]
fn responses_are_byte_identical_to_the_pipeline_at_any_concurrency() {
    let benches = all_benchmarks(24);
    let server = Server::spawn(unix_cfg("ident")).expect("spawn");
    let addr = server.addr().to_string();
    // Four client threads hammer overlapping subsets of the suite; every
    // response must match the local pipeline byte for byte, whether it
    // was translated cold, coalesced, or served hot.
    std::thread::scope(|s| {
        for w in 0..4usize {
            let benches = &benches;
            let addr = &addr;
            s.spawn(move || {
                let mut client =
                    Client::connect_with_retry(addr, std::time::Duration::from_secs(5))
                        .expect("connect");
                for i in 0..6 {
                    let b = &benches[(w + i) % benches.len()];
                    let (_, asm) = ask(&mut client, &b.binary, Version::PPOpt);
                    let (t, _) = Pipeline::new(Version::PPOpt)
                        .run(&b.binary)
                        .expect("local pipeline");
                    assert_eq!(
                        asm,
                        print_module(&t.arm),
                        "{} diverged from the local pipeline",
                        b.name
                    );
                }
            });
        }
    });
    let stats = server.stop();
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.errors + stats.shed + stats.timeouts, 0);
    // 7 unique keys: exactly 7 requests did pipeline work (cold or the
    // single-flight leader); the rest were answered from memory.
    assert_eq!(stats.cold + stats.coalesced + stats.hot, 24);
    assert_eq!(stats.cold, 7);
}

#[test]
fn lookup_ladder_serves_hot_then_disk_across_a_restart() {
    let cache_dir = temp_path("ladder-cache");
    let cfg = |tag: &str| Config {
        cache_dir: Some(cache_dir.clone()),
        ..unix_cfg(tag)
    };
    let b = &all_benchmarks(24)[0];

    let server = Server::spawn(cfg("ladder-a")).expect("spawn");
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    let (s1, asm1) = ask(&mut client, &b.binary, Version::PPOpt);
    let (s2, asm2) = ask(&mut client, &b.binary, Version::PPOpt);
    assert_eq!(s1, Source::Cold);
    assert_eq!(s2, Source::Hot, "repeat request must hit the hot tier");
    assert_eq!(asm1, asm2);
    server.stop();

    // A fresh daemon has an empty hot tier but the same disk cache: the
    // first request lands on the disk rung, and only then goes hot.
    let server = Server::spawn(cfg("ladder-b")).expect("spawn");
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    let (s3, asm3) = ask(&mut client, &b.binary, Version::PPOpt);
    let (s4, _) = ask(&mut client, &b.binary, Version::PPOpt);
    assert_eq!(s3, Source::Disk, "restart must fall back to the disk tier");
    assert_eq!(s4, Source::Hot);
    assert_eq!(asm1, asm3, "disk replay diverged from the cold run");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn tiny_queue_sheds_explicitly_and_recovers() {
    let server = Server::spawn(Config {
        queue: 1,
        hot_bytes: 0,
        ..unix_cfg("shed")
    })
    .expect("spawn");
    let addr = server.addr().to_string();
    let benches = all_benchmarks(24);
    let shed = std::sync::atomic::AtomicU32::new(0);
    std::thread::scope(|s| {
        for w in 0..8usize {
            let benches = &benches;
            let addr = &addr;
            let shed = &shed;
            s.spawn(move || {
                let mut client =
                    Client::connect_with_retry(addr, std::time::Duration::from_secs(5))
                        .expect("connect");
                for i in 0..3 {
                    let b = &benches[(w + i) % benches.len()];
                    match client.translate(&b.binary, Version::PPOpt, 0).unwrap() {
                        Response::Ok { .. } => {}
                        Response::Shed => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("expected Ok or Shed, got {other:?}"),
                    }
                }
            });
        }
    });
    assert!(
        shed.load(Ordering::Relaxed) > 0,
        "8 clients against a queue of 1 never shed"
    );
    // Shedding is backpressure, not damage: an unloaded request after
    // the storm is served normally.
    let mut client = Client::connect_with_retry(&addr, std::time::Duration::from_secs(5)).unwrap();
    let (source, _) = ask(&mut client, &benches[0].binary, Version::PPOpt);
    assert_eq!(source, Source::Cold);
    let stats = server.stop();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.shed, u64::from(shed.load(Ordering::Relaxed)));
}

#[test]
fn shutdown_drains_and_removes_the_socket() {
    let path = temp_path("drain");
    let server = Server::spawn(Config {
        addr: path.to_string_lossy().into_owned(),
        jobs: 2,
        ..Config::default()
    })
    .expect("spawn");
    let b = &all_benchmarks(24)[0];
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    ask(&mut client, &b.binary, Version::PPOpt);
    let stats = server.stop();
    assert_eq!(stats.requests, 1);
    assert!(
        !path.exists(),
        "socket file must be removed on clean shutdown"
    );
}

#[test]
fn stats_and_shutdown_requests_round_trip() {
    let server = Server::spawn(unix_cfg("stats")).expect("spawn");
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    let b = &all_benchmarks(24)[0];
    ask(&mut client, &b.binary, Version::PPOpt);
    let json = client.stats().expect("stats");
    assert!(
        json.starts_with("{\"requests\":1,"),
        "unexpected stats shape: {json}"
    );
    client.shutdown().expect("shutdown handshake");
    // The daemon thread exits on its own after the shutdown request; the
    // handle join must complete rather than hang.
    let stats = server.stop();
    assert_eq!(stats.requests, 1);
}
