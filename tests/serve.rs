//! Integration tests for the `lasagne serve` daemon: an in-process
//! [`Server`] driven through the real wire protocol by [`Client`]
//! connections. Covers the determinism claim (responses byte-identical
//! to a local [`Pipeline`] run at any concurrency), the three-rung
//! lookup ladder (cold → disk → hot), explicit backpressure under a
//! tiny admission queue, clean drain on shutdown, and the observability
//! surface: the Metrics wire frame (counters reconciling exactly with
//! [`ServeStats`] over both Unix and TCP transports), request tracing
//! that leaves response bytes untouched, and the sampled request log.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use lasagne::serve::client::Client;
use lasagne::serve::wire::{Response, Source};
use lasagne::serve::{Config, Server};
use lasagne::{Pipeline, Version};
use lasagne_armgen::print::print_module;
use lasagne_phoenix::all_benchmarks;
use lasagne_trace::json;

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "lasagne-serve-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn unix_cfg(tag: &str) -> Config {
    Config {
        addr: temp_path(tag).to_string_lossy().into_owned(),
        jobs: 2,
        ..Config::default()
    }
}

/// Round-trips one translation and returns `(source, asm)`.
fn ask(client: &mut Client, bin: &lasagne_x86::binary::Binary, v: Version) -> (Source, String) {
    match client.translate(bin, v, 0).expect("translate call") {
        Response::Ok { source, asm, .. } => (source, asm),
        other => panic!("expected Ok, got {other:?}"),
    }
}

#[test]
fn responses_are_byte_identical_to_the_pipeline_at_any_concurrency() {
    let benches = all_benchmarks(24);
    let server = Server::spawn(unix_cfg("ident")).expect("spawn");
    let addr = server.addr().to_string();
    // Four client threads hammer overlapping subsets of the suite; every
    // response must match the local pipeline byte for byte, whether it
    // was translated cold, coalesced, or served hot.
    std::thread::scope(|s| {
        for w in 0..4usize {
            let benches = &benches;
            let addr = &addr;
            s.spawn(move || {
                let mut client =
                    Client::connect_with_retry(addr, std::time::Duration::from_secs(5))
                        .expect("connect");
                for i in 0..6 {
                    let b = &benches[(w + i) % benches.len()];
                    let (_, asm) = ask(&mut client, &b.binary, Version::PPOpt);
                    let (t, _) = Pipeline::new(Version::PPOpt)
                        .run(&b.binary)
                        .expect("local pipeline");
                    assert_eq!(
                        asm,
                        print_module(&t.arm),
                        "{} diverged from the local pipeline",
                        b.name
                    );
                }
            });
        }
    });
    let stats = server.stop();
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.errors + stats.shed + stats.timeouts, 0);
    // 7 unique keys: exactly 7 requests did pipeline work (cold or the
    // single-flight leader); the rest were answered from memory.
    assert_eq!(stats.cold + stats.coalesced + stats.hot, 24);
    assert_eq!(stats.cold, 7);
}

#[test]
fn lookup_ladder_serves_hot_then_disk_across_a_restart() {
    let cache_dir = temp_path("ladder-cache");
    let cfg = |tag: &str| Config {
        cache_dir: Some(cache_dir.clone()),
        ..unix_cfg(tag)
    };
    let b = &all_benchmarks(24)[0];

    let server = Server::spawn(cfg("ladder-a")).expect("spawn");
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    let (s1, asm1) = ask(&mut client, &b.binary, Version::PPOpt);
    let (s2, asm2) = ask(&mut client, &b.binary, Version::PPOpt);
    assert_eq!(s1, Source::Cold);
    assert_eq!(s2, Source::Hot, "repeat request must hit the hot tier");
    assert_eq!(asm1, asm2);
    server.stop();

    // A fresh daemon has an empty hot tier but the same disk cache: the
    // first request lands on the disk rung, and only then goes hot.
    let server = Server::spawn(cfg("ladder-b")).expect("spawn");
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    let (s3, asm3) = ask(&mut client, &b.binary, Version::PPOpt);
    let (s4, _) = ask(&mut client, &b.binary, Version::PPOpt);
    assert_eq!(s3, Source::Disk, "restart must fall back to the disk tier");
    assert_eq!(s4, Source::Hot);
    assert_eq!(asm1, asm3, "disk replay diverged from the cold run");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn tiny_queue_sheds_explicitly_and_recovers() {
    let server = Server::spawn(Config {
        queue: 1,
        hot_bytes: 0,
        ..unix_cfg("shed")
    })
    .expect("spawn");
    let addr = server.addr().to_string();
    let benches = all_benchmarks(24);
    let shed = std::sync::atomic::AtomicU32::new(0);
    std::thread::scope(|s| {
        for w in 0..8usize {
            let benches = &benches;
            let addr = &addr;
            let shed = &shed;
            s.spawn(move || {
                let mut client =
                    Client::connect_with_retry(addr, std::time::Duration::from_secs(5))
                        .expect("connect");
                for i in 0..3 {
                    let b = &benches[(w + i) % benches.len()];
                    match client.translate(&b.binary, Version::PPOpt, 0).unwrap() {
                        Response::Ok { .. } => {}
                        Response::Shed => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("expected Ok or Shed, got {other:?}"),
                    }
                }
            });
        }
    });
    assert!(
        shed.load(Ordering::Relaxed) > 0,
        "8 clients against a queue of 1 never shed"
    );
    // Shedding is backpressure, not damage: an unloaded request after
    // the storm is served normally.
    let mut client = Client::connect_with_retry(&addr, std::time::Duration::from_secs(5)).unwrap();
    let (source, _) = ask(&mut client, &benches[0].binary, Version::PPOpt);
    assert_eq!(source, Source::Cold);
    let stats = server.stop();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.shed, u64::from(shed.load(Ordering::Relaxed)));
}

#[test]
fn shutdown_drains_and_removes_the_socket() {
    let path = temp_path("drain");
    let server = Server::spawn(Config {
        addr: path.to_string_lossy().into_owned(),
        jobs: 2,
        ..Config::default()
    })
    .expect("spawn");
    let b = &all_benchmarks(24)[0];
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    ask(&mut client, &b.binary, Version::PPOpt);
    let stats = server.stop();
    assert_eq!(stats.requests, 1);
    assert!(
        !path.exists(),
        "socket file must be removed on clean shutdown"
    );
}

#[test]
fn stats_and_shutdown_requests_round_trip() {
    let server = Server::spawn(unix_cfg("stats")).expect("spawn");
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    let b = &all_benchmarks(24)[0];
    ask(&mut client, &b.binary, Version::PPOpt);
    let body = client.stats().expect("stats");
    // Schema 2 leads with its version tag and closes with uptime, but
    // every schema-1 field must still be present with its old meaning —
    // existing scrapers keep working.
    assert!(
        body.starts_with("{\"schema\":2,\"requests\":1,"),
        "unexpected stats shape: {body}"
    );
    let doc = json::parse(&body).expect("stats body parses");
    for field in [
        "requests",
        "hot",
        "coalesced",
        "disk",
        "cold",
        "shed",
        "timeouts",
        "errors",
    ] {
        assert!(doc.get(field).is_some(), "stats lost old field {field}");
    }
    assert_eq!(doc.get("requests").unwrap().as_u64(), Some(1));
    assert_eq!(doc.get("cold").unwrap().as_u64(), Some(1));
    assert!(
        doc.get("hot_tier").and_then(|t| t.get("entries")).is_some(),
        "stats lost the hot_tier object"
    );
    assert!(
        doc.get("uptime_nanos").unwrap().as_u64().unwrap() > 0,
        "uptime_nanos must be positive on a live daemon"
    );
    client.shutdown().expect("shutdown handshake");
    // The daemon thread exits on its own after the shutdown request; the
    // handle join must complete rather than hang.
    let stats = server.stop();
    assert_eq!(stats.requests, 1);
}

/// Drives a daemon at `cfg` through a small mixed workload, then fetches
/// both metrics bodies and reconciles the JSON body against the stats
/// frame the same way `serve-metrics --check` does.
fn metrics_reconcile_roundtrip(cfg: Config) {
    let benches = all_benchmarks(24);
    let server = Server::spawn(cfg).expect("spawn");
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    for b in benches.iter().take(3) {
        ask(&mut client, &b.binary, Version::PPOpt);
        ask(&mut client, &b.binary, Version::PPOpt); // hot repeat
    }
    let stats_body = client.stats().expect("stats");
    let (metrics_body, prom) = client.metrics().expect("metrics");
    server.stop();

    let stats = json::parse(&stats_body).unwrap();
    let doc = json::parse(&metrics_body).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_u64(), Some(2));
    // The metrics frame embeds the same stats snapshot it was taken
    // with, so rung counters reconcile against histogram totals exactly.
    let histos = doc.get("metrics").unwrap().get("histograms").unwrap();
    for rung in ["hot", "coalesced", "disk", "cold"] {
        let total = histos
            .get(&format!("serve.latency.{rung}"))
            .map_or(0, |h| h.get("total").unwrap().as_u64().unwrap());
        assert_eq!(
            Some(total),
            stats.get(rung).unwrap().as_u64(),
            "rung {rung}: histogram total diverged from the stats counter"
        );
    }
    // Payload-size histograms count once per Translate request.
    for name in ["serve.bytes_in", "serve.bytes_out"] {
        assert_eq!(
            histos.get(name).unwrap().get("total").unwrap().as_u64(),
            Some(6),
            "{name} must count each of the 6 Translate requests once"
        );
    }
    // Derived percentiles are published for every histogram.
    let pcts = doc.get("percentiles").unwrap();
    for name in ["serve.latency.hot", "serve.queue_wait"] {
        let p = pcts.get(name).unwrap_or_else(|| panic!("no {name} pcts"));
        assert!(p.get("p50").unwrap().as_u64().unwrap() > 0);
        assert!(p.get("p99").unwrap().as_u64() >= p.get("p50").unwrap().as_u64());
    }
    // The Prometheus body exposes the same counters under stable names.
    assert!(
        prom.contains("# TYPE lasagne_serve_requests counter"),
        "prom body lost its TYPE line:\n{prom}"
    );
    assert!(prom.contains("lasagne_serve_latency_hot_bucket"));
    assert!(prom.contains("lasagne_serve_latency_hot_count 3"));
}

#[test]
fn metrics_round_trip_reconciles_over_unix() {
    metrics_reconcile_roundtrip(unix_cfg("metrics-unix"));
}

#[test]
fn metrics_round_trip_reconciles_over_tcp() {
    metrics_reconcile_roundtrip(Config {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        ..Config::default()
    });
}

#[test]
fn tracing_and_logging_leave_response_bytes_identical() {
    let trace_path = temp_path("traced.trace.json");
    let log_path = temp_path("traced.log");
    let traced = Server::spawn(Config {
        trace_out: Some(trace_path.clone()),
        log: Some(lasagne::serve::log::LogConfig {
            path: log_path.clone(),
            sample: 1,
            max_bytes: 0,
        }),
        ..unix_cfg("traced")
    })
    .expect("spawn traced");
    let plain = Server::spawn(unix_cfg("plain")).expect("spawn plain");

    // The same 4-way concurrent workload against both daemons; every
    // response must be byte-identical whether or not the server is
    // tracing and logging — observability must not perturb output.
    let benches = all_benchmarks(24);
    let run = |addr: &str| -> Vec<(usize, String)> {
        let results = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..4usize {
                let benches = &benches;
                let results = &results;
                s.spawn(move || {
                    let mut client =
                        Client::connect_with_retry(addr, std::time::Duration::from_secs(5))
                            .expect("connect");
                    for i in 0..6 {
                        let idx = (w + i) % benches.len();
                        let (_, asm) = ask(&mut client, &benches[idx].binary, Version::PPOpt);
                        results.lock().unwrap().push((w * 6 + i, asm));
                    }
                });
            }
        });
        let mut v = results.into_inner().unwrap();
        v.sort_by_key(|(k, _)| *k);
        v
    };
    let traced_out = run(&traced.addr().to_string());
    let plain_out = run(&plain.addr().to_string());
    assert_eq!(
        traced_out, plain_out,
        "tracing/logging changed response bytes"
    );
    let stats = traced.stop();
    plain.stop();
    assert_eq!(stats.requests, 24);

    // The trace file landed on shutdown, is valid Chrome JSON, and
    // carries the serve-side span names.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written on shutdown");
    let doc = json::parse(&trace).expect("trace parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    for name in ["conn-accept", "request", "admission"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(name)),
            "daemon trace has no {name:?} event"
        );
    }

    // The sample-every-request log covers all 24 requests with dense
    // 1-based ids and parseable schema-1 lines.
    let log_text = std::fs::read_to_string(&log_path).expect("request log written");
    let mut ids = Vec::new();
    for line in log_text.lines() {
        let v = json::parse(line).expect("log line parses");
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("ok"));
        assert!(v.get("bytes_out").unwrap().as_u64().unwrap() > 0);
        ids.push(v.get("id").unwrap().as_u64().unwrap());
    }
    ids.sort_unstable();
    assert_eq!(ids, (1..=24).collect::<Vec<u64>>());

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&log_path).ok();
}

#[test]
fn request_log_sampling_is_deterministic_through_the_daemon() {
    let log_path = temp_path("sampled.log");
    let server = Server::spawn(Config {
        log: Some(lasagne::serve::log::LogConfig {
            path: log_path.clone(),
            sample: 3,
            max_bytes: 0,
        }),
        ..unix_cfg("sampled")
    })
    .expect("spawn");
    let b = &all_benchmarks(24)[0];
    let mut client =
        Client::connect_with_retry(server.addr(), std::time::Duration::from_secs(5)).unwrap();
    for _ in 0..7 {
        ask(&mut client, &b.binary, Version::PPOpt);
    }
    server.stop();
    let ids: Vec<u64> = std::fs::read_to_string(&log_path)
        .expect("request log written")
        .lines()
        .map(|l| json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(
        ids,
        vec![3, 6],
        "sample=3 over 7 requests must log ids 3, 6"
    );
    std::fs::remove_file(&log_path).ok();
}
