//! Equivalence gates for the pipelined optimization stage: the fused
//! per-function pass schedule and the superstep `ipsccp` must be
//! indistinguishable — module-for-module and byte-for-byte — from the
//! serial module-wide reference (`lasagne_opt::blind_pipeline`), for
//! every [`Version`] across the Phoenix suite and for any worker count.
//! A warm translation cache populated before the restructure's schedule
//! ran at a different jobs value must keep serving every function.

use lasagne_repro::armgen::print::print_module;
use lasagne_repro::fences::{merge_fences_module, place_fences_module, Strategy};
use lasagne_repro::lifter::lift_binary;
use lasagne_repro::lir::Module;
use lasagne_repro::phoenix::all_benchmarks;
use lasagne_repro::refine::refine_module;
use lasagne_repro::translator::{Pipeline, Version};

/// The module as it stands when the opt stage begins, built by the plain
/// serial crate entry points the pipeline driver mirrors.
fn pre_opt_module(bin: &lasagne_repro::x86::binary::Binary, v: Version) -> Module {
    let mut m = lift_binary(bin).unwrap();
    if v == Version::PPOpt {
        refine_module(&mut m);
    }
    place_fences_module(&mut m, Strategy::StackAware);
    if matches!(v, Version::POpt | Version::PPOpt) {
        merge_fences_module(&mut m);
    }
    m
}

/// The serial reference for the whole opt stage: the pre-scheduler blind
/// driver — module-wide pass sweeps in `OPT_ORDER` (one barrier per
/// pass), capped at the pipeline's three rounds, then unconditional
/// per-function compaction. Returns the module plus the driver's pass
/// invocation count, which the change-driven scheduler's `ran + skipped`
/// must reconcile with exactly.
fn serial_reference(bin: &lasagne_repro::x86::binary::Binary, v: Version) -> (Module, u64) {
    let mut m = pre_opt_module(bin, v);
    let mut invocations = 0;
    if v != Version::Lifted {
        let (_, inv) = lasagne_repro::opt::blind_pipeline(&mut m, 3);
        invocations = inv;
        for f in &mut m.funcs {
            f.compact();
        }
    }
    (m, invocations)
}

#[test]
fn fused_opt_matches_serial_reference_for_all_versions() {
    for b in all_benchmarks(48) {
        for v in Version::ALL {
            let (expected, invocations) = serial_reference(&b.binary, v);
            for jobs in [1, 4] {
                let (t, report) = Pipeline::new(v).with_jobs(jobs).run(&b.binary).unwrap();
                assert_eq!(
                    expected,
                    t.module,
                    "{} under {} at jobs={jobs}: fused schedule diverged from \
                     the serial module-wide reference",
                    b.name,
                    v.name()
                );
                // The change-driven scheduler accounts for every slot the
                // blind driver would have executed: each is either run or
                // provably-clean skipped, never silently dropped.
                match report.opt_sched {
                    Some(sc) => {
                        assert_eq!(
                            sc.ran + sc.skipped,
                            invocations,
                            "{} under {} at jobs={jobs}: ran+skipped does not \
                             reconcile with the blind invocation count",
                            b.name,
                            v.name()
                        );
                        assert!(
                            sc.skipped > 0,
                            "{} under {} at jobs={jobs}: scheduler never skipped",
                            b.name,
                            v.name()
                        );
                        assert_eq!(
                            sc.compacted + sc.compact_skipped,
                            t.module.funcs.len() as u64,
                            "{} under {}: compaction accounting",
                            b.name,
                            v.name()
                        );
                    }
                    None => assert_eq!(
                        v,
                        Version::Lifted,
                        "{}: cold non-Lifted run must report opt_sched",
                        b.name
                    ),
                }
            }
        }
    }
}

#[test]
fn superstep_ipsccp_round_metrics_are_jobs_invariant() {
    // The per-round fact and substitution counts come out of the serial
    // join; worker count must not change what the lattice decides, when
    // it converges, or what the report says about it.
    for b in all_benchmarks(48) {
        let (_, serial) = Pipeline::new(Version::PPOpt).run(&b.binary).unwrap();
        for jobs in [2, 4, 7] {
            let (_, parallel) = Pipeline::new(Version::PPOpt)
                .with_jobs(jobs)
                .run(&b.binary)
                .unwrap();
            let key = |r: &lasagne_repro::translator::PipelineReport| -> Vec<(u32, u64, u64)> {
                r.ipsccp_rounds
                    .iter()
                    .map(|x| (x.round, x.facts, x.substitutions))
                    .collect()
            };
            assert_eq!(
                key(&serial),
                key(&parallel),
                "{} at jobs={jobs}: ipsccp round metrics diverged",
                b.name
            );
            let passes =
                |r: &lasagne_repro::translator::PipelineReport| -> Vec<(&'static str, u64, u64)> {
                    r.opt_passes
                        .iter()
                        .map(|p| (p.pass, p.changes, p.invocations))
                        .collect()
                };
            assert_eq!(
                passes(&serial),
                passes(&parallel),
                "{} at jobs={jobs}: per-pass change/invocation counts diverged",
                b.name
            );
            // Scheduling decisions depend only on per-function pass
            // results, so every scheduler counter — including the
            // changes-per-invocation histograms — is jobs-invariant.
            assert_eq!(
                serial.opt_sched, parallel.opt_sched,
                "{} at jobs={jobs}: scheduler counters diverged",
                b.name
            );
            let hists =
                |r: &lasagne_repro::translator::PipelineReport| -> Vec<(&'static str, [u64; 5])> {
                    r.opt_passes.iter().map(|p| (p.pass, p.hist)).collect()
                };
            assert_eq!(
                hists(&serial),
                hists(&parallel),
                "{} at jobs={jobs}: per-pass histograms diverged",
                b.name
            );
        }
    }
}

#[test]
fn warm_cache_serves_across_jobs_values_with_identical_output() {
    // Cache keys fold the pass list and the ipsccp fact digests; the
    // restructure must leave both unchanged. A cache populated by a
    // serial cold run has to serve a jobs=4 run entirely warm (and vice
    // versa), with byte-identical assembly.
    let dir = std::env::temp_dir().join(format!("lasagne-optpar-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for b in all_benchmarks(48) {
        let nfuncs = b.binary.functions.len() as u64;
        let (cold, cold_report) = Pipeline::new(Version::PPOpt)
            .with_cache(&dir)
            .run(&b.binary)
            .unwrap();
        let cr = cold_report.cache.expect("cache configured");
        assert!(!cr.warm, "{}: first run must be cold", b.name);
        assert_eq!(
            cr.writes, nfuncs,
            "{}: cold run writes every function",
            b.name
        );
        for jobs in [1, 4] {
            let (warm, warm_report) = Pipeline::new(Version::PPOpt)
                .with_jobs(jobs)
                .with_cache(&dir)
                .run(&b.binary)
                .unwrap();
            let wr = warm_report.cache.expect("cache configured");
            assert!(wr.warm, "{} at jobs={jobs}: expected a warm hit", b.name);
            assert_eq!(wr.hits, nfuncs, "{} at jobs={jobs}: partial hit", b.name);
            assert_eq!(wr.misses, 0, "{} at jobs={jobs}", b.name);
            assert_eq!(
                print_module(&cold.arm),
                print_module(&warm.arm),
                "{} at jobs={jobs}: warm output diverged from cold",
                b.name
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
