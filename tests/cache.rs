//! Integration tests for the content-addressed translation cache: cold
//! and warm runs agree byte-for-byte, invalidation is exactly as fine as
//! the per-function content keys (including interprocedural facts), and
//! on-disk corruption degrades to a miss instead of an error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use lasagne::pipeline::module_key;
use lasagne::{Pipeline, Stage, Version};
use lasagne_cache::TranslationCache;
use lasagne_phoenix::all_benchmarks;
use lasagne_phoenix::builders::{alui, call, loadq, mem_b, movri, movrr};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, Inst};
use lasagne_x86::reg::Gpr;

fn temp_cache_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lasagne-cache-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn translate_cached(
    bin: &Binary,
    v: Version,
    dir: &std::path::Path,
) -> (String, lasagne::Translation, lasagne::CacheReport) {
    let (t, report) = Pipeline::new(v)
        .with_jobs(2)
        .with_cache(dir)
        .run(bin)
        .unwrap();
    let text = lasagne_armgen::print::print_module(&t.arm);
    (text, t, report.cache.expect("cache was configured"))
}

/// Issue satellite (a): for every Phoenix benchmark under every version,
/// a warm run reproduces the cold run's Arm output byte for byte while
/// executing zero lift/refine/fence/merge/opt passes.
#[test]
fn warm_run_is_byte_identical_across_suite_and_versions() {
    for b in all_benchmarks(48) {
        for v in Version::ALL {
            let dir = temp_cache_dir("suite");
            let nfuncs = b.binary.functions.len() as u64;

            let (cold_text, cold_t, cc) = translate_cached(&b.binary, v, &dir);
            assert!(!cc.warm, "{} {v:?}: first run cannot be warm", b.name);
            assert_eq!(cc.misses, 1);
            assert_eq!(cc.writes, nfuncs);

            let (warm_text, warm_t, wc) = translate_cached(&b.binary, v, &dir);
            assert!(wc.warm, "{} {v:?}: second run should be warm", b.name);
            assert_eq!(wc.misses, 0);
            assert_eq!(wc.hits, nfuncs);
            assert_eq!(cold_text, warm_text, "{} {v:?}", b.name);
            assert_eq!(cold_t.stats, warm_t.stats, "{} {v:?}", b.name);

            // The warm run must not have executed a single non-backend
            // pass: every stage but ArmGen is empty and unpaid-for.
            let (_, report) = Pipeline::new(v)
                .with_jobs(2)
                .with_cache(&dir)
                .run(&b.binary)
                .unwrap();
            for st in &report.stages {
                if st.stage != Stage::ArmGen {
                    assert!(
                        st.funcs.is_empty() && st.nanos == 0 && st.module_nanos == 0,
                        "{} {v:?}: stage {:?} ran on a warm hit",
                        b.name,
                        st.stage
                    );
                }
            }
        }
    }
}

/// A leaf, a caller passing it a constant, and an unrelated function.
/// `k` is the immediate added inside the leaf; flipping it changes only
/// the leaf's machine code (same encoding length, so every symbol keeps
/// its address).
fn three_func_binary(k: i32) -> Binary {
    let mut bin = BinaryBuilder::new();

    let mut a = Asm::new();
    a.push(movrr(Gpr::Rax, Gpr::Rdi));
    a.push(alui(AluOp::Add, Gpr::Rax, k));
    a.push(Inst::Ret);
    let leaf_addr = bin.next_function_addr();
    bin.add_function("leaf", a.finish(leaf_addr).unwrap());

    let mut a = Asm::new();
    a.push(movri(Gpr::Rdi, 10));
    a.push(call(leaf_addr));
    a.push(Inst::Ret);
    bin.add_function("caller", a.finish(bin.next_function_addr()).unwrap());

    let mut a = Asm::new();
    a.push(movri(Gpr::Rax, 42));
    a.push(Inst::Ret);
    bin.add_function("other", a.finish(bin.next_function_addr()).unwrap());

    bin.finish()
}

/// Issue satellite (b): flipping one byte of one function's machine code
/// invalidates exactly that function's cache entries — the other
/// functions' artifacts are shared with the previous module entry.
#[test]
fn one_byte_flip_invalidates_only_that_function() {
    let v = Version::PPOpt;
    let dir = temp_cache_dir("flip");
    let bin_a = three_func_binary(3);
    let bin_b = three_func_binary(5);

    let (_, _, ca) = translate_cached(&bin_a, v, &dir);
    assert_eq!((ca.misses, ca.writes, ca.unchanged), (1, 3, 0));

    // Different leaf bytes → different module key → miss; but only the
    // leaf's artifact is new, the caller and `other` are shared.
    let (_, _, cb) = translate_cached(&bin_b, v, &dir);
    assert_eq!((cb.misses, cb.writes, cb.unchanged), (1, 1, 2));

    let cache = TranslationCache::open(&dir).unwrap();
    let man_a = cache.load_manifest(module_key(&bin_a, v)).unwrap();
    let man_b = cache.load_manifest(module_key(&bin_b, v)).unwrap();
    for (ea, eb) in man_a.entries.iter().zip(&man_b.entries) {
        assert_eq!(ea.name, eb.name);
        if ea.name == "leaf" {
            assert_ne!(ea.key, eb.key, "changed function must get a new key");
        } else {
            assert_eq!(ea.key, eb.key, "{} was not touched by the flip", ea.name);
        }
    }

    // Both module entries stay independently warm.
    let (_, _, wa) = translate_cached(&bin_a, v, &dir);
    let (_, _, wb) = translate_cached(&bin_b, v, &dir);
    assert!(wa.warm && wb.warm);
}

/// A callee whose signature depends on `two_params`, a caller whose bytes
/// never change, and an unrelated function. Both callee bodies encode to
/// 7 bytes, so every symbol keeps its address and size.
fn call_chain_binary(two_params: bool) -> Binary {
    let mut bin = BinaryBuilder::new();

    let mut a = Asm::new();
    if two_params {
        a.push(movrr(Gpr::Rax, Gpr::Rdi));
        a.push(Inst::AluRRm {
            op: AluOp::Add,
            w: lasagne_x86::reg::Width::W64,
            dst: Gpr::Rax,
            src: lasagne_x86::inst::Rm::Reg(Gpr::Rsi),
        });
    } else {
        a.push(movrr(Gpr::Rax, Gpr::Rdi));
        a.push(movrr(Gpr::Rax, Gpr::Rax));
    }
    a.push(Inst::Ret);
    let callee_addr = bin.next_function_addr();
    let bytes = a.finish(callee_addr).unwrap();
    assert_eq!(bytes.len(), 7, "both callee bodies must encode identically");
    bin.add_function("callee", bytes);

    let mut a = Asm::new();
    a.push(movri(Gpr::Rdi, 5));
    a.push(movri(Gpr::Rsi, 6));
    a.push(call(callee_addr));
    a.push(Inst::Ret);
    bin.add_function("caller", a.finish(bin.next_function_addr()).unwrap());

    let mut a = Asm::new();
    a.push(loadq(Gpr::Rax, mem_b(Gpr::Rdi)));
    a.push(Inst::Ret);
    bin.add_function("other", a.finish(bin.next_function_addr()).unwrap());

    bin.finish()
}

/// Issue satellite (c): changing a callee so its *signature* changes
/// invalidates the caller's entry too — the caller's own bytes are
/// untouched, but its key folds in the callee's signature row.
#[test]
fn callee_signature_change_invalidates_dependent_caller() {
    let v = Version::PPOpt;
    let dir = temp_cache_dir("sig");
    let two = call_chain_binary(true);
    let one = call_chain_binary(false);

    let (_, t_two, c2) = translate_cached(&two, v, &dir);
    assert_eq!((c2.misses, c2.writes), (1, 3));
    let (_, t_one, c1) = translate_cached(&one, v, &dir);
    assert_eq!(c1.misses, 1);

    // Sanity: the edit really changed the callee's lifted signature.
    let sig = |t: &lasagne::Translation| {
        let id = t.module.func_by_name("callee").unwrap();
        t.module.funcs[id.0 as usize].params.clone()
    };
    assert_ne!(sig(&t_two), sig(&t_one), "edit must change the signature");

    let cache = TranslationCache::open(&dir).unwrap();
    let man_two = cache.load_manifest(module_key(&two, v)).unwrap();
    let man_one = cache.load_manifest(module_key(&one, v)).unwrap();
    let key = |m: &lasagne_cache::Manifest, name: &str| {
        m.entries.iter().find(|e| e.name == name).unwrap().key
    };
    assert_ne!(key(&man_two, "callee"), key(&man_one, "callee"));
    assert_ne!(
        key(&man_two, "caller"),
        key(&man_one, "caller"),
        "caller consumes the callee's signature, so it must be invalidated"
    );
    assert_eq!(
        key(&man_two, "other"),
        key(&man_one, "other"),
        "a function with no edge to the callee must keep its entry"
    );
}

/// Issue satellite (d): a truncated artifact or a bit-flipped manifest is
/// a miss, never an error; the corrupt file is healed by the re-store and
/// the next run is fully warm again — with byte-identical output
/// throughout.
#[test]
fn corruption_degrades_to_miss_and_self_heals() {
    let b = &all_benchmarks(32)[0];
    let v = Version::PPOpt;
    let dir = temp_cache_dir("corrupt");
    let nfuncs = b.binary.functions.len() as u64;

    let (cold_text, _, cc) = translate_cached(&b.binary, v, &dir);
    assert_eq!(cc.writes, nfuncs);

    // Truncate one artifact.
    let obj = std::fs::read_dir(dir.join("obj"))
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let bytes = std::fs::read(&obj).unwrap();
    std::fs::write(&obj, &bytes[..bytes.len() / 2]).unwrap();

    let (text2, _, c2) = translate_cached(&b.binary, v, &dir);
    assert_eq!(text2, cold_text);
    assert!(!c2.warm);
    assert_eq!(c2.misses, 1);
    assert_eq!(
        (c2.writes, c2.unchanged),
        (1, nfuncs - 1),
        "only the corrupted artifact is rewritten"
    );

    // Flip one byte in the manifest.
    let man = dir
        .join(format!("man-{:016x}.bin", module_key(&b.binary, v)))
        .into_os_string();
    let mut bytes = std::fs::read(&man).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&man, &bytes).unwrap();

    let (text3, _, c3) = translate_cached(&b.binary, v, &dir);
    assert_eq!(text3, cold_text);
    assert!(!c3.warm);
    assert_eq!(
        (c3.writes, c3.unchanged),
        (0, nfuncs),
        "every artifact survived; only the manifest is rebuilt"
    );

    let (text4, _, c4) = translate_cached(&b.binary, v, &dir);
    assert_eq!(text4, cold_text);
    assert!(c4.warm);
    assert_eq!((c4.hits, c4.misses), (nfuncs, 0));
}
