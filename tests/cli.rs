//! Smoke tests for the `lasagne` command-line binary: every subcommand
//! runs, exits zero, and prints the expected shape of output.

use std::process::Command;

fn lasagne(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lasagne"))
        .args(args)
        .output()
        .expect("spawn lasagne binary")
}

fn stdout(args: &[&str]) -> String {
    let out = lasagne(args);
    assert!(
        out.status.success(),
        "lasagne {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn list_names_all_five_benchmarks() {
    let s = stdout(&["list", "--scale", "16"]);
    for abbrev in ["HT", "KM", "LR", "MM", "SM"] {
        assert!(s.contains(abbrev), "missing {abbrev} in:\n{s}");
    }
}

#[test]
fn run_reports_verified_checksum_and_barriers() {
    let s = stdout(&[
        "run",
        "HT",
        "--scale",
        "24",
        "--version",
        "ppopt",
        "--no-cache",
    ]);
    assert!(s.contains("(verified)"), "checksum not verified:\n{s}");
    assert!(s.contains("barriers"), "no barrier report:\n{s}");
    assert!(s.contains("cycles"), "no cycle count:\n{s}");
    assert!(
        s.contains("cache     : disabled"),
        "no explicit cache-disabled line:\n{s}"
    );
}

#[test]
fn translate_emits_arm_assembly() {
    let s = stdout(&["translate", "LR", "--scale", "16"]);
    assert!(s.contains("main:"), "no main label:\n{s}");
    assert!(s.contains("ret"), "no ret instruction:\n{s}");
}

#[test]
fn ir_prints_lir_functions() {
    let s = stdout(&["ir", "MM", "--scale", "16", "--version", "opt"]);
    assert!(s.contains("define"), "no LIR function header:\n{s}");
}

#[test]
fn disasm_prints_x86() {
    let s = stdout(&["disasm", "SM", "--scale", "16"]);
    assert!(s.contains("0x"), "no addresses:\n{s}");
    assert!(s.to_lowercase().contains("mov"), "no mov instruction:\n{s}");
}

#[test]
fn litmus_reports_every_test_ok() {
    let s = stdout(&["litmus"]);
    assert!(s.contains("OK"), "no OK lines:\n{s}");
    assert!(!s.contains("BUG"), "mapping bug reported:\n{s}");
    assert!(s.contains("SB"), "store-buffering litmus missing:\n{s}");
}

#[test]
fn translate_with_jobs_matches_serial_and_timings_has_all_stages() {
    let serial = stdout(&["translate", "KM", "--scale", "16"]);
    let path = std::env::temp_dir().join(format!("lasagne-timings-{}.json", std::process::id()));
    let path_s = path.to_str().unwrap();
    let parallel = stdout(&[
        "translate",
        "KM",
        "--scale",
        "16",
        "--jobs",
        "4",
        "--timings",
        path_s,
    ]);
    assert_eq!(serial, parallel, "--jobs 4 changed the emitted assembly");

    let json = std::fs::read_to_string(&path).expect("timings file written");
    std::fs::remove_file(&path).ok();
    assert!(
        json.starts_with("{\"schema\":2,"),
        "timings JSON lacks the schema version field:\n{json}"
    );
    for key in ["\"version\"", "\"jobs\":4", "\"total_nanos\"", "\"stages\""] {
        assert!(json.contains(key), "missing {key} in timings JSON:\n{json}");
    }
    for stage in ["lift", "refine", "fences", "merge", "opt", "armgen"] {
        assert!(
            json.contains(&format!("{{\"stage\":\"{stage}\"")),
            "missing stage {stage} in timings JSON:\n{json}"
        );
    }
    assert!(
        json.contains("\"func\":"),
        "no per-function entries:\n{json}"
    );
}

#[test]
fn bad_jobs_value_is_rejected() {
    let out = lasagne(&["translate", "HT", "--scale", "16", "--jobs", "0"]);
    assert!(!out.status.success(), "--jobs 0 should be rejected");
}

#[test]
fn versions_are_validated() {
    let out = lasagne(&["run", "HT", "--version", "bogus"]);
    assert!(!out.status.success(), "bogus version should be rejected");
}

#[test]
fn unknown_benchmark_is_an_error() {
    let out = lasagne(&["run", "ZZ"]);
    assert!(
        !out.status.success(),
        "unknown benchmark should be rejected"
    );
}
