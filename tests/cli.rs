//! Smoke tests for the `lasagne` command-line binary: every subcommand
//! runs, exits zero, and prints the expected shape of output.

use std::process::Command;

fn lasagne(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lasagne"))
        .args(args)
        .output()
        .expect("spawn lasagne binary")
}

fn stdout(args: &[&str]) -> String {
    let out = lasagne(args);
    assert!(
        out.status.success(),
        "lasagne {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn list_names_all_five_benchmarks() {
    let s = stdout(&["list", "--scale", "16"]);
    for abbrev in ["HT", "KM", "LR", "MM", "SM"] {
        assert!(s.contains(abbrev), "missing {abbrev} in:\n{s}");
    }
}

#[test]
fn run_reports_verified_checksum_and_barriers() {
    let s = stdout(&[
        "run",
        "HT",
        "--scale",
        "24",
        "--version",
        "ppopt",
        "--no-cache",
    ]);
    assert!(s.contains("(verified)"), "checksum not verified:\n{s}");
    assert!(s.contains("barriers"), "no barrier report:\n{s}");
    assert!(s.contains("cycles"), "no cycle count:\n{s}");
    assert!(
        s.contains("cache     : disabled"),
        "no explicit cache-disabled line:\n{s}"
    );
}

#[test]
fn translate_emits_arm_assembly() {
    let s = stdout(&["translate", "LR", "--scale", "16"]);
    assert!(s.contains("main:"), "no main label:\n{s}");
    assert!(s.contains("ret"), "no ret instruction:\n{s}");
}

#[test]
fn ir_prints_lir_functions() {
    let s = stdout(&["ir", "MM", "--scale", "16", "--version", "opt"]);
    assert!(s.contains("define"), "no LIR function header:\n{s}");
}

#[test]
fn disasm_prints_x86() {
    let s = stdout(&["disasm", "SM", "--scale", "16"]);
    assert!(s.contains("0x"), "no addresses:\n{s}");
    assert!(s.to_lowercase().contains("mov"), "no mov instruction:\n{s}");
}

#[test]
fn litmus_reports_every_test_ok() {
    let s = stdout(&["litmus"]);
    assert!(s.contains("OK"), "no OK lines:\n{s}");
    assert!(!s.contains("BUG"), "mapping bug reported:\n{s}");
    assert!(s.contains("SB"), "store-buffering litmus missing:\n{s}");
}

#[test]
fn translate_with_jobs_matches_serial_and_timings_has_all_stages() {
    let serial = stdout(&["translate", "KM", "--scale", "16"]);
    let path = std::env::temp_dir().join(format!("lasagne-timings-{}.json", std::process::id()));
    let path_s = path.to_str().unwrap();
    let parallel = stdout(&[
        "translate",
        "KM",
        "--scale",
        "16",
        "--jobs",
        "4",
        "--timings",
        path_s,
    ]);
    assert_eq!(serial, parallel, "--jobs 4 changed the emitted assembly");

    let json = std::fs::read_to_string(&path).expect("timings file written");
    std::fs::remove_file(&path).ok();
    assert!(
        json.starts_with("{\"schema\":6,"),
        "timings JSON lacks the schema version field:\n{json}"
    );
    for key in [
        "\"version\"",
        "\"jobs\":4",
        "\"total_nanos\"",
        "\"stages\"",
        "\"opt_passes\"",
        "\"ipsccp_rounds\"",
        "\"barrier_wait_nanos\"",
        "\"wall_nanos\"",
        "\"opt_sched\":{\"ran\":",
        "\"hist\":[",
    ] {
        assert!(json.contains(key), "missing {key} in timings JSON:\n{json}");
    }
    // Schema-4+ shape: the fused-section summary is always present, and a
    // jobs>1 run reports the shared pool's activity, including the
    // queue-depth histogram routed through the metrics registry.
    assert!(
        json.contains("\"fused\":{\"sections\":"),
        "missing fused block in timings:\n{json}"
    );
    for key in [
        "\"pool\":{\"workers\":",
        "\"submitted\":",
        "\"executed\":",
        "\"steals\":",
        "\"parks\":",
        "\"queue_depth\":{\"bounds\":",
    ] {
        assert!(
            json.contains(key),
            "missing pool field {key} in timings:\n{json}"
        );
    }
    for stage in ["lift", "refine", "fences", "merge", "opt", "armgen"] {
        assert!(
            json.contains(&format!("{{\"stage\":\"{stage}\"")),
            "missing stage {stage} in timings JSON:\n{json}"
        );
    }
    assert!(
        json.contains("\"func\":"),
        "no per-function entries:\n{json}"
    );
    // The fused opt stage must actually have fanned out at jobs=4.
    assert!(
        !json.contains("{\"stage\":\"opt\",\"parallel_sections\":0"),
        "opt stage ran zero parallel sections at --jobs 4:\n{json}"
    );
    // Per-pass attribution survives the fusion: every schedule pass with a
    // distinct name shows up in the aggregated table.
    for pass in [
        "mem2reg",
        "sroa",
        "instcombine",
        "reassociate",
        "sccp",
        "ipsccp",
        "gvn",
        "licm",
        "dse",
        "adce",
        "dce",
    ] {
        assert!(
            json.contains(&format!("{{\"pass\":\"{pass}\"")),
            "missing pass {pass} in opt_passes:\n{json}"
        );
    }
}

/// Schema-2 through schema-5 documents (as written by earlier builds)
/// must stay readable by the in-tree JSON reader alongside schema 6:
/// same access paths for every field that existed then, with the schema
/// field telling consumers which extensions to expect.
#[test]
fn schema_2_timings_documents_remain_readable() {
    let schema2 = r#"{"schema":2,"version":"PPOpt","jobs":4,"total_nanos":123456,
        "stages":[{"stage":"lift","nanos":88,"module_nanos":5,
                   "funcs":[{"func":"main","index":0,"nanos":83,"changes":120,"insts":120}]},
                  {"stage":"opt","nanos":40,"module_nanos":9,"funcs":[]}],
        "cache":{"warm":true,"hits":4,"misses":0,"writes":0,"unchanged":0,"evicted":0,"saved_nanos":77}}"#;
    // A schema-3 document as written by the pre-pool builds: per-stage
    // walls partition total_nanos, and there is no fused/pool block.
    let schema3 = r#"{"schema":3,"version":"PPOpt","jobs":4,"total_nanos":123456,
        "stages":[{"stage":"lift","parallel_sections":1,"nanos":88,"module_nanos":5,"wall_nanos":60,
                   "funcs":[{"func":"main","index":0,"nanos":83,"changes":120,"insts":120}]},
                  {"stage":"opt","parallel_sections":9,"nanos":40,"module_nanos":9,"wall_nanos":30,"funcs":[]}],
        "opt_passes":[{"pass":"mem2reg","nanos":10,"changes":0,"invocations":2}],
        "ipsccp_rounds":[{"round":0,"gather_nanos":1,"join_nanos":1,"apply_nanos":1,"facts":0,"substitutions":0}],
        "barrier_wait_nanos":[1,2,3,4],
        "cache":{"warm":true,"hits":4,"misses":0,"writes":0,"unchanged":0,"evicted":0,"saved_nanos":77}}"#;
    // A schema-4 document from the fused-schedule builds: stage walls
    // *overlap* (a fused region's extent is charged to every member
    // stage) and the fused/pool extension blocks appear.
    let schema4 = r#"{"schema":4,"version":"PPOpt","jobs":4,"total_nanos":123456,
        "stages":[{"stage":"lift","parallel_sections":1,"nanos":88,"module_nanos":5,"wall_nanos":100000,
                   "funcs":[{"func":"main","index":0,"nanos":83,"changes":120,"insts":120}]},
                  {"stage":"opt","parallel_sections":9,"nanos":40,"module_nanos":9,"wall_nanos":100000,"funcs":[]}],
        "opt_passes":[{"pass":"mem2reg","nanos":10,"changes":0,"invocations":2}],
        "ipsccp_rounds":[{"round":0,"gather_nanos":1,"join_nanos":1,"apply_nanos":1,"facts":0,"substitutions":0}],
        "barrier_wait_nanos":[1,2,3,4],
        "fused":{"sections":2,"wall_nanos":95},
        "pool":{"workers":4,"submitted":12,"executed":12,"steals":0,"parks":5,
                "queue_depth":{"bounds":[0,1,2,4,8,16,32],"counts":[6,4,2,0,0,0,0,0],"sum":8,"total":12}},
        "cache":{"warm":true,"hits":4,"misses":0,"writes":0,"unchanged":0,"evicted":0,"saved_nanos":77}}"#;
    // A schema-5 document from the disjoint-wall builds: same field set
    // as schema 4, walls partition total_nanos again.
    let schema5 = r#"{"schema":5,"version":"PPOpt","jobs":4,"total_nanos":123456,
        "stages":[{"stage":"lift","parallel_sections":1,"nanos":88,"module_nanos":5,"wall_nanos":60,
                   "funcs":[{"func":"main","index":0,"nanos":83,"changes":120,"insts":120}]},
                  {"stage":"opt","parallel_sections":9,"nanos":40,"module_nanos":9,"wall_nanos":30,"funcs":[]}],
        "opt_passes":[{"pass":"mem2reg","nanos":10,"changes":0,"invocations":2}],
        "ipsccp_rounds":[{"round":0,"gather_nanos":1,"join_nanos":1,"apply_nanos":1,"facts":0,"substitutions":0}],
        "barrier_wait_nanos":[1,2,3,4],
        "fused":{"sections":2,"wall_nanos":95},
        "pool":{"workers":4,"submitted":12,"executed":12,"steals":0,"parks":5,
                "queue_depth":{"bounds":[0,1,2,4,8,16,32],"counts":[6,4,2,0,0,0,0,0],"sum":8,"total":12}},
        "cache":{"warm":true,"hits":4,"misses":0,"writes":0,"unchanged":0,"evicted":0,"saved_nanos":77}}"#;
    // Current documents add the schema-6 change-driven scheduler block;
    // all five must parse through the same reader code.
    let path = std::env::temp_dir().join(format!("lasagne-schema6-{}.json", std::process::id()));
    stdout(&[
        "translate",
        "HT",
        "--scale",
        "16",
        "--jobs",
        "2",
        "--timings",
        path.to_str().unwrap(),
    ]);
    let schema6 = std::fs::read_to_string(&path).expect("timings file written");
    std::fs::remove_file(&path).ok();

    for (doc, expected_schema) in [
        (schema2, 2),
        (schema3, 3),
        (schema4, 4),
        (schema5, 5),
        (schema6.as_str(), 6),
    ] {
        let v = lasagne_repro::trace::json::parse(doc).expect("timings JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_u64()),
            Some(expected_schema),
            "wrong schema tag"
        );
        assert!(v.get("version").and_then(|s| s.as_str()).is_some());
        assert!(v.get("total_nanos").and_then(|s| s.as_u64()).is_some());
        let stages = v.get("stages").and_then(|s| s.as_arr()).expect("stages");
        assert!(!stages.is_empty());
        for st in stages {
            assert!(st.get("stage").and_then(|s| s.as_str()).is_some());
            assert!(st.get("nanos").and_then(|s| s.as_u64()).is_some());
            assert!(st.get("module_nanos").and_then(|s| s.as_u64()).is_some());
            assert!(st.get("funcs").and_then(|s| s.as_arr()).is_some());
        }
        // Extensions are present exactly when the tag says so.
        assert_eq!(
            v.get("ipsccp_rounds").is_some(),
            expected_schema >= 3,
            "ipsccp_rounds presence disagrees with schema tag"
        );
        assert_eq!(
            v.get("barrier_wait_nanos").is_some(),
            expected_schema >= 3,
            "barrier_wait_nanos presence disagrees with schema tag"
        );
        assert_eq!(
            v.get("fused").is_some(),
            expected_schema >= 4,
            "fused presence disagrees with schema tag"
        );
        // The pool block additionally requires jobs > 1, which holds for
        // the live document above.
        assert_eq!(
            v.get("pool").is_some(),
            expected_schema >= 4,
            "pool presence disagrees with schema tag"
        );
        // The scheduler block additionally requires the opt stage to have
        // run, which holds for the live document above (PPOpt, cold).
        assert_eq!(
            v.get("opt_sched").is_some(),
            expected_schema >= 6,
            "opt_sched presence disagrees with schema tag"
        );
        if expected_schema >= 6 {
            let sc = v.get("opt_sched").unwrap();
            let ran = sc.get("ran").and_then(|s| s.as_u64()).expect("ran");
            let skipped = sc.get("skipped").and_then(|s| s.as_u64()).expect("skipped");
            let rounds = sc.get("rounds").and_then(|s| s.as_u64()).expect("rounds");
            assert!(ran > 0 && rounds > 0, "scheduler ran nothing");
            assert!(
                skipped > 0,
                "change-driven scheduler skipped nothing on a cold translate"
            );
        }
    }
}

#[test]
fn bad_jobs_value_is_rejected() {
    let out = lasagne(&["translate", "HT", "--scale", "16", "--jobs", "0"]);
    assert!(!out.status.success(), "--jobs 0 should be rejected");
}

#[test]
fn versions_are_validated() {
    let out = lasagne(&["run", "HT", "--version", "bogus"]);
    assert!(!out.status.success(), "bogus version should be rejected");
}

#[test]
fn unknown_benchmark_is_an_error() {
    let out = lasagne(&["run", "ZZ"]);
    assert!(
        !out.status.success(),
        "unknown benchmark should be rejected"
    );
}
