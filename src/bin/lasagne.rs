//! `lasagne` — command-line front end for the translator.
//!
//! ```text
//! lasagne list                         available demo binaries
//! lasagne translate <DEMO> [opts]      translate and print AArch64 assembly
//! lasagne run <DEMO> [opts]            translate, simulate, report cycles
//! lasagne ir <DEMO> [opts]             print the final LIR
//! lasagne disasm <DEMO>                print the x86-64 disassembly
//! lasagne explain-fences <DEMO> [opts] per-fence provenance table
//! lasagne trace-check FILE [--jobs N]  validate a --trace-out file
//! lasagne litmus                       memory-model validation summary
//! lasagne difftest [opts]              three-way differential sweep
//! lasagne serve --socket ADDR [opts]   translation daemon (Unix/TCP socket)
//! lasagne serve-client <DEMO> --socket ADDR
//!                                      one request; assembly to stdout
//! lasagne serve-bench --socket ADDR [opts]
//!                                      replay the suite, print a JSON summary
//! lasagne serve-metrics --socket ADDR [--prom] [--check]
//!                                      daemon metrics snapshot (JSON, or
//!                                      Prometheus text with --prom; --check
//!                                      verifies histogram/stats reconciliation)
//! lasagne serve-watch --socket ADDR [--interval-ms N] [--iters N]
//!                                      live interval view: rps, rung hit
//!                                      ratios, shed/timeout rates, p50/p99
//! lasagne serve-stop --socket ADDR     ask a daemon to drain and exit
//! lasagne help                         this message
//!
//! options:
//!   --version lifted|opt|popt|ppopt    pipeline configuration (default ppopt)
//!   --scale N                          workload scale (default 128)
//!   --jobs N                           translation worker threads (default 1;
//!                                      N > 1 recommended on multi-core hosts
//!                                      — since the persistent work-stealing
//!                                      pool the parallel schedule is never
//!                                      slower than serial); output is
//!                                      byte-identical for every N. Workers
//!                                      are spawned once per process and
//!                                      reused across every translation of a
//!                                      `difftest` or `report` run
//!   --timings FILE                     write the per-pass/per-function timing
//!                                      report as JSON to FILE ("-" = stderr)
//!   --trace-out FILE                   write a Chrome trace-event JSON file
//!                                      (one track per worker thread)
//!   --cache-dir DIR                    content-addressed translation cache
//!                                      (default: $LASAGNE_CACHE_DIR if set);
//!                                      warm runs skip lift/refine/opt
//!   --no-cache                         disable the cache even if
//!                                      $LASAGNE_CACHE_DIR is set
//!   --cases N                          qc cases per family for difftest
//!                                      (default 32)
//!   --seed HEX                         base seed for difftest generation
//!   --skip-phoenix                     difftest: generator families only
//!
//! serve options:
//!   --socket ADDR                      Unix socket path, or host:port for TCP
//!   --hot-bytes N                      hot-tier byte budget (default 64 MiB;
//!                                      0 disables the in-memory tier)
//!   --queue N                          max requests in service; excess is
//!                                      shed with an explicit backpressure
//!                                      response (default 64)
//!   --timeout-ms N                     per-request deadline (default 60000)
//!   --concurrency N                    serve-bench client threads (default 4)
//!   --reps N                           serve-bench suite replays (default 1)
//!   --trace-out FILE                   serve: per-request Chrome trace,
//!                                      written when the daemon drains
//!   --log FILE                         serve: sampled JSON request log
//!   --log-sample N                     serve: log every Nth request (default 1)
//!   --log-max-bytes N                  serve: rotate the log past N bytes
//!                                      (default 16 MiB; 0 = never)
//!   --interval-ms N                    serve-watch poll interval (default 1000)
//!   --iters N                          serve-watch iterations (default 0 =
//!                                      until interrupted)
//! ```
//!
//! `<DEMO>` is a Phoenix benchmark, by abbreviation or name: `HT`
//! (histogram), `KM` (kmeans), `LR` (linear_regression), `MM`
//! (matrix_multiply), `SM` (string_match), `WC` (word_count), `PCA`
//! (pca).
//!
//! `difftest` executes qc-generated functions and the whole Phoenix suite
//! on three independent oracles — the byte-level x86 interpreter, the
//! lifted LIR on the LIR interpreter, and the translated code on the
//! simulated Arm core across all four versions × cold/warm cache ×
//! jobs 1/4 — and requires bit-identical return values and final memory.

use lasagne_repro::bench::{measure_native, run_arm};
use lasagne_repro::phoenix::{all_benchmarks, Benchmark};
use lasagne_repro::trace::TraceCtx;
use lasagne_repro::translator::{Pipeline, PipelineReport, Version};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let version = flag_value(&args, "--version")
        .map(|v| match v.to_ascii_lowercase().as_str() {
            "lifted" => Version::Lifted,
            "opt" => Version::Opt,
            "popt" => Version::POpt,
            "ppopt" => Version::PPOpt,
            other => {
                eprintln!("unknown version `{other}` (expected lifted|opt|popt|ppopt)");
                std::process::exit(2);
            }
        })
        .unwrap_or(Version::PPOpt);
    let scale: usize = flag_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let jobs: usize = match flag_value(&args, "--jobs") {
        None => 1,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs expects a positive integer, got `{s}`");
                std::process::exit(2);
            }
        },
    };
    let timings = flag_value(&args, "--timings");
    let trace_out = flag_value(&args, "--trace-out");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let cache_dir: Option<String> = if no_cache {
        None
    } else {
        flag_value(&args, "--cache-dir")
            .map(str::to_owned)
            .or_else(|| {
                std::env::var("LASAGNE_CACHE_DIR")
                    .ok()
                    .filter(|s| !s.is_empty())
            })
    };

    match cmd {
        "list" => {
            for b in all_benchmarks(scale) {
                println!(
                    "{:<4} {:<20} {} functions, {} bytes of x86",
                    b.abbrev,
                    b.name,
                    b.binary.functions.len(),
                    b.binary.text.len()
                );
            }
        }
        "disasm" => {
            let Some(b) = args.get(1).and_then(|n| find_bench(n, scale)) else {
                eprintln!("usage: lasagne disasm <HT|KM|LR|MM|SM|WC|PCA>");
                std::process::exit(2);
            };
            for f in &b.binary.functions {
                println!("{}:  ; {} bytes at {:#x}", f.name, f.size, f.addr);
                let code = b.binary.code_of(f);
                match lasagne_repro::x86::decode_all(code, f.addr) {
                    Ok(ds) => {
                        for d in ds {
                            println!("  {:#08x}:  {}", d.addr, d.inst);
                        }
                    }
                    Err(e) => println!("  <decode error: {e}>"),
                }
                println!();
            }
        }
        "translate" | "run" | "ir" => {
            let Some(b) = args.get(1).and_then(|n| find_bench(n, scale)) else {
                eprintln!(
                    "usage: lasagne {cmd} <HT|KM|LR|MM|SM|WC|PCA> [--version V] [--scale N] \
                     [--jobs N] [--timings FILE] [--cache-dir DIR] [--no-cache]"
                );
                std::process::exit(2);
            };
            let trace = if trace_out.is_some() {
                TraceCtx::collecting()
            } else {
                TraceCtx::disabled()
            };
            let mut pipeline = Pipeline::new(version)
                .with_jobs(jobs)
                .with_trace(trace.clone());
            if let Some(dir) = &cache_dir {
                pipeline = pipeline.with_cache(dir);
            }
            let (t, report) = pipeline.run(&b.binary).unwrap_or_else(|e| {
                eprintln!("translation failed: {e}");
                std::process::exit(1);
            });
            if let Some(path) = timings {
                write_timings(path, &report);
            }
            if let Some(path) = trace_out {
                write_trace(path, &trace);
            }
            match cmd {
                "translate" => {
                    print!("{}", lasagne_repro::armgen::print::print_module(&t.arm));
                    eprintln!(
                        "\n// {}: {} LIR insts, {} fences ({} before optimization)",
                        version.name(),
                        t.stats.insts_final,
                        t.stats.fences_final,
                        t.stats.fences_naive
                    );
                }
                "ir" => print!("{}", lasagne_repro::lir::print::print_module(&t.module)),
                "run" => {
                    let native = measure_native(&b);
                    let m = run_arm(&t.arm, &b.workload);
                    assert_eq!(m.checksum, b.workload.expected_ret, "checksum mismatch!");
                    println!("benchmark : {} ({})", b.name, b.abbrev);
                    println!("version   : {}", version.name());
                    println!("jobs      : {jobs}");
                    println!("checksum  : {:#x} (verified)", m.checksum);
                    println!("runtime   : {} cycles (critical path)", m.runtime_cycles);
                    println!(
                        "native    : {} cycles  →  normalized {:.2}",
                        native.runtime_cycles,
                        m.runtime_cycles as f64 / native.runtime_cycles as f64
                    );
                    println!(
                        "barriers  : {} ishld, {} ishst, {} ish",
                        m.dmbs.0, m.dmbs.1, m.dmbs.2
                    );
                    println!("translate : {:.1} ms wall", report.total_nanos as f64 / 1e6);
                    match &report.cache {
                        Some(c) => println!(
                            "cache     : {} ({} hits, {} misses, {} written)",
                            if c.warm { "warm" } else { "cold" },
                            c.hits,
                            c.misses,
                            c.writes
                        ),
                        None => println!("cache     : disabled"),
                    }
                }
                _ => unreachable!(),
            }
        }
        "explain-fences" => {
            let Some(b) = args.get(1).and_then(|n| find_bench(n, scale)) else {
                eprintln!(
                    "usage: lasagne explain-fences <HT|KM|LR|MM|SM|WC|PCA> [--version V] \
                     [--scale N] [--jobs N] [--trace-out FILE]"
                );
                std::process::exit(2);
            };
            let trace = if trace_out.is_some() {
                TraceCtx::collecting()
            } else {
                TraceCtx::disabled()
            };
            // Provenance only exists on the cold path, so the cache is
            // deliberately not attached here.
            let (t, records) = Pipeline::new(version)
                .with_jobs(jobs)
                .with_trace(trace.clone())
                .explain_fences(&b.binary)
                .unwrap_or_else(|e| {
                    eprintln!("translation failed: {e}");
                    std::process::exit(1);
                });
            if let Some(path) = trace_out {
                write_trace(path, &trace);
            }
            println!(
                "{:<24} {:>10} {:>10} {:<5} {:<13} {}",
                "function", "address", "site", "kind", "rule", "fate"
            );
            let (mut placed, mut elided, mut merged) = (0usize, 0usize, 0usize);
            for r in &records {
                for d in &r.decisions {
                    println!(
                        "{:<24} {:>#10x} {:>10} {:<5} {:<13} {}",
                        r.name,
                        r.addr,
                        format!("b{}/i{}", d.block, d.pos),
                        format!("{:?}", d.rule.kind()),
                        d.rule.name(),
                        d.fate.name()
                    );
                }
                placed += r.placed();
                elided += r.elided();
                merged += r.merged();
            }
            let naive = t.stats.fences_naive;
            let fin = t.stats.fences_final;
            println!();
            println!(
                "fences    : {placed} placed, {elided} elided (stack), {merged} merged \
                 -> {fin} final"
            );
            if naive > 0 {
                println!(
                    "naive     : {naive} -> reduction {:.1}%",
                    100.0 * (naive - fin) as f64 / naive as f64
                );
            }
        }
        "trace-check" => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: lasagne trace-check FILE [--jobs N]");
                std::process::exit(2);
            };
            let expect_jobs = flag_value(&args, "--jobs").and_then(|s| s.parse::<usize>().ok());
            match check_trace_file(path, expect_jobs) {
                Ok(msg) => println!("{msg}"),
                Err(e) => {
                    eprintln!("trace-check {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "litmus" => {
            // At --jobs > 1 the parallelism goes *inside* each program
            // (candidate-execution partitioning) rather than across the
            // suite — row-identical output either way, but the pool stays
            // busy on enumeration-heavy programs like IRIW.
            let rows = if jobs > 1 {
                lasagne_repro::memmodel::sweep_suite_within(jobs)
            } else {
                lasagne_repro::memmodel::sweep_suite(jobs)
            };
            for row in rows {
                println!(
                    "{:<16} x86 {:>2} outcomes | Arm {:>2} | x86→IR→Arm {}",
                    row.name,
                    row.x86_outcomes,
                    row.arm_outcomes,
                    if row.chain.is_ok() { "OK" } else { "BUG" }
                );
            }
        }
        "difftest" => {
            let cases: u32 = flag_value(&args, "--cases")
                .and_then(|s| s.parse().ok())
                .unwrap_or(32);
            let seed = flag_value(&args, "--seed")
                .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
                .unwrap_or(lasagne_repro::translator::difftest::default_seed());
            let cache_root = cache_dir
                .clone()
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    std::env::temp_dir().join(format!("lasagne-difftest-{}", std::process::id()))
                });
            // The cold legs of the matrix need the content hashes absent.
            let _ = std::fs::remove_dir_all(&cache_root);
            let opts = lasagne_repro::translator::difftest::DiffOptions {
                cases,
                seed,
                scale,
                cache_dir: cache_root.clone(),
                skip_phoenix: args.iter().any(|a| a == "--skip-phoenix"),
            };
            let s = lasagne_repro::translator::difftest::run_difftest(&opts);
            let _ = std::fs::remove_dir_all(&cache_root);
            println!("difftest  : x86-interp ≡ LIR-interp ≡ ArmMachine");
            println!("matrix    : 4 versions × cold/warm cache × jobs 1/4");
            println!(
                "functions : {} qc-generated + {} phoenix ({} benchmarks)",
                s.qc_functions, s.phoenix_functions, s.phoenix_benchmarks
            );
            println!("executions: {}", s.executions);
            println!("divergence: {}", s.divergences);
            println!("wall time : {:.1} s", s.wall_ms as f64 / 1e3);
            if let Some(cex) = &s.counterexample {
                eprintln!("counterexample: {cex}");
                std::process::exit(1);
            }
        }
        "serve" => {
            let Some(addr) = flag_value(&args, "--socket") else {
                eprintln!(
                    "usage: lasagne serve --socket ADDR [--jobs N] [--hot-bytes N] [--queue N] \
                     [--timeout-ms N] [--cache-dir DIR] [--no-cache] [--trace-out FILE] \
                     [--log FILE [--log-sample N] [--log-max-bytes N]]"
                );
                std::process::exit(2);
            };
            let log = flag_value(&args, "--log").map(|path| {
                lasagne_repro::translator::serve::log::LogConfig {
                    path: std::path::PathBuf::from(path),
                    sample: flag_value(&args, "--log-sample")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(1),
                    max_bytes: flag_value(&args, "--log-max-bytes")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(16 << 20),
                }
            });
            let cfg = lasagne_repro::translator::serve::Config {
                addr: addr.to_string(),
                jobs,
                hot_bytes: flag_value(&args, "--hot-bytes")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(64 << 20),
                queue: flag_value(&args, "--queue")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(64),
                timeout: std::time::Duration::from_millis(
                    flag_value(&args, "--timeout-ms")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(60_000),
                ),
                cache_dir: cache_dir.map(std::path::PathBuf::from),
                trace_out: trace_out.map(std::path::PathBuf::from),
                log,
            };
            let server = match lasagne_repro::translator::serve::Server::bind(cfg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("serve: cannot bind `{addr}`: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "serving on {} (jobs {jobs}); stop with: lasagne serve-stop --socket {addr}",
                server.addr()
            );
            let stats = server.run();
            eprintln!("serve: drained; final stats {}", stats.to_json());
        }
        "serve-client" => {
            let Some(b) = args.get(1).and_then(|n| find_bench(n, scale)) else {
                eprintln!("usage: lasagne serve-client <HT|KM|LR|MM|SM|WC|PCA> --socket ADDR");
                std::process::exit(2);
            };
            let Some(addr) = flag_value(&args, "--socket") else {
                eprintln!("usage: lasagne serve-client <DEMO> --socket ADDR");
                std::process::exit(2);
            };
            let mut client = connect_or_die(addr);
            match client.translate(&b.binary, version, jobs as u32) {
                Ok(lasagne_repro::translator::serve::wire::Response::Ok { source, nanos, asm }) => {
                    print!("{asm}");
                    eprintln!(
                        "// serve: {} {} via {} in {:.2} ms",
                        b.abbrev,
                        version.name(),
                        source.name(),
                        nanos as f64 / 1e6
                    );
                }
                Ok(other) => {
                    eprintln!("serve-client: request not served: {other:?}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("serve-client: {e}");
                    std::process::exit(1);
                }
            }
        }
        "serve-bench" => {
            let Some(addr) = flag_value(&args, "--socket") else {
                eprintln!(
                    "usage: lasagne serve-bench --socket ADDR [--concurrency N] [--reps N] \
                     [--scale N] [--version V] [--jobs N]"
                );
                std::process::exit(2);
            };
            let opts = lasagne_repro::bench::serve_load::LoadOpts {
                addr: addr.to_string(),
                versions: vec![version],
                concurrency: flag_value(&args, "--concurrency")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(4),
                scale,
                reps: flag_value(&args, "--reps")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1),
                jobs: jobs as u32,
            };
            let summary = lasagne_repro::bench::serve_load::replay(&opts);
            let lat = summary.ok_latencies();
            use lasagne_repro::bench::serve_load::percentile;
            println!(
                "{{\"requests\":{},\"hot\":{},\"coalesced\":{},\"disk\":{},\"cold\":{},\
                 \"shed\":{},\"timeouts\":{},\"errors\":{},\
                 \"p50_nanos\":{},\"p99_nanos\":{},\"p999_nanos\":{},\
                 \"throughput_rps\":{:.2},\"checksum\":\"{:016x}\"}}",
                summary.samples.len(),
                summary.hits[0],
                summary.hits[1],
                summary.hits[2],
                summary.hits[3],
                summary.shed,
                summary.timeouts,
                summary.errors,
                percentile(&lat, 50.0),
                percentile(&lat, 99.0),
                percentile(&lat, 99.9),
                summary.throughput_rps(),
                summary.checksum,
            );
        }
        "serve-metrics" => {
            let Some(addr) = flag_value(&args, "--socket") else {
                eprintln!("usage: lasagne serve-metrics --socket ADDR [--prom] [--check]");
                std::process::exit(2);
            };
            let mut client = connect_or_die(addr);
            let (json, prom) = match client.metrics() {
                Ok(bodies) => bodies,
                Err(e) => {
                    eprintln!("serve-metrics: {e}");
                    std::process::exit(1);
                }
            };
            if args.iter().any(|a| a == "--check") {
                match check_serve_metrics(&json) {
                    Ok(msg) => println!("{msg}"),
                    Err(e) => {
                        eprintln!("serve-metrics --check: {e}");
                        std::process::exit(1);
                    }
                }
            } else if args.iter().any(|a| a == "--prom") {
                print!("{prom}");
            } else {
                println!("{json}");
            }
        }
        "serve-watch" => {
            let Some(addr) = flag_value(&args, "--socket") else {
                eprintln!("usage: lasagne serve-watch --socket ADDR [--interval-ms N] [--iters N]");
                std::process::exit(2);
            };
            let interval = std::time::Duration::from_millis(
                flag_value(&args, "--interval-ms")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1000),
            );
            let iters: u64 = flag_value(&args, "--iters")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            use lasagne_repro::translator::serve::watch::{WatchDelta, WatchSnapshot};
            let mut client = connect_or_die(addr);
            let poll = |client: &mut lasagne_repro::translator::serve::client::Client| {
                let stats = client.stats()?;
                let (json, _) = client.metrics()?;
                Ok::<_, lasagne_repro::translator::serve::client::ClientError>((stats, json))
            };
            let snapshot = |client: &mut lasagne_repro::translator::serve::client::Client| {
                match poll(client) {
                    Ok((s, m)) => match WatchSnapshot::parse(&s, &m) {
                        Ok(snap) => snap,
                        Err(e) => {
                            eprintln!("serve-watch: {e}");
                            std::process::exit(1);
                        }
                    },
                    Err(e) => {
                        eprintln!("serve-watch: {e}");
                        std::process::exit(1);
                    }
                }
            };
            let clear = {
                use std::io::IsTerminal;
                std::io::stdout().is_terminal()
            };
            let mut prev = snapshot(&mut client);
            let mut done = 0u64;
            while iters == 0 || done < iters {
                std::thread::sleep(interval);
                let next = snapshot(&mut client);
                let delta = WatchDelta::between(&prev, &next);
                if clear {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", delta.render(&next));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                prev = next;
                done += 1;
            }
        }
        "serve-stop" => {
            let Some(addr) = flag_value(&args, "--socket") else {
                eprintln!("usage: lasagne serve-stop --socket ADDR");
                std::process::exit(2);
            };
            let mut client = connect_or_die(addr);
            if let Err(e) = client.shutdown() {
                eprintln!("serve-stop: {e}");
                std::process::exit(1);
            }
            println!("serve-stop: daemon draining");
        }
        _ => {
            println!("lasagne — static binary translator (PLDI 2022 reproduction)");
            println!("commands: list | translate <DEMO> | run <DEMO> | ir <DEMO> | disasm <DEMO>");
            println!("          explain-fences <DEMO> | trace-check FILE | litmus | difftest");
            println!("          serve | serve-client <DEMO> | serve-bench | serve-metrics");
            println!("          serve-watch | serve-stop");
            println!("options : --version lifted|opt|popt|ppopt   --scale N");
            println!(
                "          --jobs N (worker threads, spawned once and pooled; \
                 byte-identical output for any N; N > 1 recommended on multi-core hosts)"
            );
            println!("          --timings FILE (per-pass JSON timing report; \"-\" = stderr)");
            println!("          --trace-out FILE (Chrome trace-event JSON; one track per worker)");
            println!("          --cache-dir DIR (translation cache; default $LASAGNE_CACHE_DIR)");
            println!("          --no-cache (ignore $LASAGNE_CACHE_DIR)");
            println!("          --cases N --seed HEX --skip-phoenix (difftest)");
            println!("demos   : HT histogram | KM kmeans | LR linear_regression");
            println!("          MM matrix_multiply | SM string_match | WC word_count | PCA pca");
        }
    }
}

/// Writes the Chrome trace-event export of `trace` to `path`.
fn write_trace(path: &str, trace: &TraceCtx) {
    let Some(json) = trace.chrome_json() else {
        return;
    };
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write trace to `{path}`: {e}");
        std::process::exit(1);
    }
}

/// Validates a `--trace-out` file: well-formed JSON, a non-empty
/// `traceEvents` array with at least one real (non-metadata) event, and
/// exactly one `thread_name` metadata record per track that appears in the
/// log. With `expect_jobs = Some(n)`, additionally requires the named
/// tracks to be exactly `main` plus workers `1..=n`.
fn check_trace_file(path: &str, expect_jobs: Option<usize>) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = lasagne_repro::trace::json::parse(&text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("no traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut named_tracks: Vec<u64> = Vec::new();
    let mut used_tracks: Vec<u64> = Vec::new();
    let (mut spans, mut instants) = (0usize, 0usize);
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or("event without ph")?;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_u64())
            .ok_or("event without tid")?;
        match ph {
            "M" => {
                let name = ev
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or("metadata without name")?;
                if name == "thread_name" {
                    if named_tracks.contains(&tid) {
                        return Err(format!("track {tid} named twice"));
                    }
                    named_tracks.push(tid);
                }
            }
            "X" => {
                spans += 1;
                used_tracks.push(tid);
            }
            _ => {
                instants += 1;
                used_tracks.push(tid);
            }
        }
    }
    if spans + instants == 0 {
        return Err("no events besides metadata".into());
    }
    for t in &used_tracks {
        if !named_tracks.contains(t) {
            return Err(format!("track {t} has events but no thread_name"));
        }
    }
    if let Some(jobs) = expect_jobs {
        let mut expected: Vec<u64> = (0..=jobs.max(1) as u64).collect();
        if jobs <= 1 {
            expected = vec![0];
        }
        let mut named = named_tracks.clone();
        named.sort_unstable();
        if named != expected {
            return Err(format!(
                "named tracks {named:?} do not match --jobs {jobs} (expected {expected:?})"
            ));
        }
    }
    Ok(format!(
        "trace OK: {} events ({spans} spans, {instants} instants), {} named tracks",
        events.len(),
        named_tracks.len()
    ))
}

/// Validates a Metrics response body: versioned schema, every rung
/// latency histogram's total equal to that rung's Stats counter, payload
/// histograms covering every translation request, eviction churn equal
/// between counter and tier stats, and derived percentiles present for
/// every histogram. This is the reconciliation CI relies on: the
/// histograms and the counters are recorded at the same decision points,
/// so on a quiescent daemon they must agree exactly.
fn check_serve_metrics(body: &str) -> Result<String, String> {
    use lasagne_repro::trace::json;
    let doc = json::parse(body).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_u64())
        .ok_or("no schema field")?;
    if schema != 2 {
        return Err(format!("unexpected metrics schema {schema}"));
    }
    let stats = doc.get("stats").ok_or("no stats object")?;
    let stat = |name: &str| -> Result<u64, String> {
        stats
            .get(name)
            .and_then(|v| v.as_u64())
            .ok_or(format!("stats lacks {name}"))
    };
    let histo_total = |name: &str| -> u64 {
        doc.get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("total"))
            .and_then(|t| t.as_u64())
            .unwrap_or(0)
    };
    let mut checked = 0usize;
    for rung in ["hot", "coalesced", "disk", "cold"] {
        let counted = stat(rung)?;
        let observed = histo_total(&format!("serve.latency.{rung}"));
        if counted != observed {
            return Err(format!(
                "rung {rung}: stats count {counted} != histogram total {observed}"
            ));
        }
        checked += 1;
    }
    let requests = stat("requests")?;
    for h in ["serve.bytes_in", "serve.bytes_out"] {
        if histo_total(h) != requests {
            return Err(format!(
                "{h} total {} != requests {requests}",
                histo_total(h)
            ));
        }
        checked += 1;
    }
    let evictions = stats
        .get("hot_tier")
        .and_then(|t| t.get("evictions"))
        .and_then(|v| v.as_u64())
        .ok_or("stats lacks hot_tier.evictions")?;
    let churn = doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.hot.evictions"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if evictions != churn {
        return Err(format!(
            "hot_tier.evictions {evictions} != serve.hot.evictions counter {churn}"
        ));
    }
    checked += 1;
    let (Some(lasagne_repro::trace::json::Json::Obj(histos)), Some(pcts)) = (
        doc.get("metrics").and_then(|m| m.get("histograms")),
        doc.get("percentiles"),
    ) else {
        return Err("no histograms/percentiles objects".into());
    };
    for name in histos.keys() {
        let p = pcts.get(name).ok_or(format!("no percentiles for {name}"))?;
        for field in ["p50", "p99", "p999"] {
            p.get(field)
                .and_then(|v| v.as_u64())
                .ok_or(format!("{name} lacks {field}"))?;
        }
        checked += 1;
    }
    Ok(format!(
        "serve-metrics OK: {checked} reconciliations, {} histograms, {requests} requests",
        histos.len()
    ))
}

/// Writes the timing report as JSON to `path`, or to stderr (with a
/// human-readable summary) when `path` is `-`.
fn write_timings(path: &str, report: &PipelineReport) {
    if path == "-" {
        eprintln!("{}", report.summary_table());
        eprintln!("{}", report.to_json());
        return;
    }
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("cannot write timings to `{path}`: {e}");
        std::process::exit(1);
    }
}

/// Connects a serve client to `addr`, retrying briefly so a daemon
/// still binding its socket is not a race; exits on failure.
fn connect_or_die(addr: &str) -> lasagne_repro::translator::serve::client::Client {
    lasagne_repro::translator::serve::client::Client::connect_with_retry(
        addr,
        std::time::Duration::from_secs(5),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot connect to serve daemon at `{addr}`: {e}");
        std::process::exit(1);
    })
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn find_bench(name: &str, scale: usize) -> Option<Benchmark> {
    all_benchmarks(scale)
        .into_iter()
        .find(|b| b.abbrev.eq_ignore_ascii_case(name) || b.name.eq_ignore_ascii_case(name))
}
