//! `lasagne` — command-line front end for the translator.
//!
//! ```text
//! lasagne list                         available demo binaries
//! lasagne translate <DEMO> [opts]      translate and print AArch64 assembly
//! lasagne run <DEMO> [opts]            translate, simulate, report cycles
//! lasagne ir <DEMO> [opts]             print the final LIR
//! lasagne disasm <DEMO>                print the x86-64 disassembly
//! lasagne litmus                       memory-model validation summary
//! lasagne help                         this message
//!
//! options:
//!   --version lifted|opt|popt|ppopt    pipeline configuration (default ppopt)
//!   --scale N                          workload scale (default 128)
//!   --jobs N                           translation worker threads (default 1);
//!                                      output is byte-identical for every N
//!   --timings FILE                     write the per-pass/per-function timing
//!                                      report as JSON to FILE ("-" = stderr)
//!   --cache-dir DIR                    content-addressed translation cache
//!                                      (default: $LASAGNE_CACHE_DIR if set);
//!                                      warm runs skip lift/refine/opt
//!   --no-cache                         disable the cache even if
//!                                      $LASAGNE_CACHE_DIR is set
//! ```
//!
//! `<DEMO>` is a Phoenix benchmark, by abbreviation or name: `HT`
//! (histogram), `KM` (kmeans), `LR` (linear_regression), `MM`
//! (matrix_multiply), `SM` (string_match).

use lasagne_repro::bench::{measure_native, run_arm};
use lasagne_repro::phoenix::{all_benchmarks, Benchmark};
use lasagne_repro::translator::{Pipeline, PipelineReport, Version};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let version = flag_value(&args, "--version")
        .map(|v| match v.to_ascii_lowercase().as_str() {
            "lifted" => Version::Lifted,
            "opt" => Version::Opt,
            "popt" => Version::POpt,
            "ppopt" => Version::PPOpt,
            other => {
                eprintln!("unknown version `{other}` (expected lifted|opt|popt|ppopt)");
                std::process::exit(2);
            }
        })
        .unwrap_or(Version::PPOpt);
    let scale: usize = flag_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let jobs: usize = match flag_value(&args, "--jobs") {
        None => 1,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs expects a positive integer, got `{s}`");
                std::process::exit(2);
            }
        },
    };
    let timings = flag_value(&args, "--timings");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let cache_dir: Option<String> = if no_cache {
        None
    } else {
        flag_value(&args, "--cache-dir")
            .map(str::to_owned)
            .or_else(|| {
                std::env::var("LASAGNE_CACHE_DIR")
                    .ok()
                    .filter(|s| !s.is_empty())
            })
    };

    match cmd {
        "list" => {
            for b in all_benchmarks(scale) {
                println!(
                    "{:<4} {:<20} {} functions, {} bytes of x86",
                    b.abbrev,
                    b.name,
                    b.binary.functions.len(),
                    b.binary.text.len()
                );
            }
        }
        "disasm" => {
            let Some(b) = args.get(1).and_then(|n| find_bench(n, scale)) else {
                eprintln!("usage: lasagne disasm <HT|KM|LR|MM|SM>");
                std::process::exit(2);
            };
            for f in &b.binary.functions {
                println!("{}:  ; {} bytes at {:#x}", f.name, f.size, f.addr);
                let code = b.binary.code_of(f);
                match lasagne_repro::x86::decode_all(code, f.addr) {
                    Ok(ds) => {
                        for d in ds {
                            println!("  {:#08x}:  {}", d.addr, d.inst);
                        }
                    }
                    Err(e) => println!("  <decode error: {e}>"),
                }
                println!();
            }
        }
        "translate" | "run" | "ir" => {
            let Some(b) = args.get(1).and_then(|n| find_bench(n, scale)) else {
                eprintln!(
                    "usage: lasagne {cmd} <HT|KM|LR|MM|SM> [--version V] [--scale N] \
                     [--jobs N] [--timings FILE] [--cache-dir DIR] [--no-cache]"
                );
                std::process::exit(2);
            };
            let mut pipeline = Pipeline::new(version).with_jobs(jobs);
            if let Some(dir) = &cache_dir {
                pipeline = pipeline.with_cache(dir);
            }
            let (t, report) = pipeline.run(&b.binary).unwrap_or_else(|e| {
                eprintln!("translation failed: {e}");
                std::process::exit(1);
            });
            if let Some(path) = timings {
                write_timings(path, &report);
            }
            match cmd {
                "translate" => {
                    print!("{}", lasagne_repro::armgen::print::print_module(&t.arm));
                    eprintln!(
                        "\n// {}: {} LIR insts, {} fences ({} before optimization)",
                        version.name(),
                        t.stats.insts_final,
                        t.stats.fences_final,
                        t.stats.fences_naive
                    );
                }
                "ir" => print!("{}", lasagne_repro::lir::print::print_module(&t.module)),
                "run" => {
                    let native = measure_native(&b);
                    let m = run_arm(&t.arm, &b.workload);
                    assert_eq!(m.checksum, b.workload.expected_ret, "checksum mismatch!");
                    println!("benchmark : {} ({})", b.name, b.abbrev);
                    println!("version   : {}", version.name());
                    println!("jobs      : {jobs}");
                    println!("checksum  : {:#x} (verified)", m.checksum);
                    println!("runtime   : {} cycles (critical path)", m.runtime_cycles);
                    println!(
                        "native    : {} cycles  →  normalized {:.2}",
                        native.runtime_cycles,
                        m.runtime_cycles as f64 / native.runtime_cycles as f64
                    );
                    println!(
                        "barriers  : {} ishld, {} ishst, {} ish",
                        m.dmbs.0, m.dmbs.1, m.dmbs.2
                    );
                    println!("translate : {:.1} ms wall", report.total_nanos as f64 / 1e6);
                    if let Some(c) = &report.cache {
                        println!(
                            "cache     : {} ({} hits, {} misses, {} written)",
                            if c.warm { "warm" } else { "cold" },
                            c.hits,
                            c.misses,
                            c.writes
                        );
                    }
                }
                _ => unreachable!(),
            }
        }
        "litmus" => {
            for row in lasagne_repro::memmodel::sweep_suite(jobs) {
                println!(
                    "{:<16} x86 {:>2} outcomes | Arm {:>2} | x86→IR→Arm {}",
                    row.name,
                    row.x86_outcomes,
                    row.arm_outcomes,
                    if row.chain.is_ok() { "OK" } else { "BUG" }
                );
            }
        }
        _ => {
            println!("lasagne — static binary translator (PLDI 2022 reproduction)");
            println!("commands: list | translate <DEMO> | run <DEMO> | ir <DEMO> | disasm <DEMO> | litmus");
            println!("options : --version lifted|opt|popt|ppopt   --scale N");
            println!("          --jobs N (worker threads; byte-identical output for any N)");
            println!("          --timings FILE (per-pass JSON timing report; \"-\" = stderr)");
            println!("          --cache-dir DIR (translation cache; default $LASAGNE_CACHE_DIR)");
            println!("          --no-cache (ignore $LASAGNE_CACHE_DIR)");
            println!("demos   : HT histogram | KM kmeans | LR linear_regression");
            println!("          MM matrix_multiply | SM string_match");
        }
    }
}

/// Writes the timing report as JSON to `path`, or to stderr (with a
/// human-readable summary) when `path` is `-`.
fn write_timings(path: &str, report: &PipelineReport) {
    if path == "-" {
        eprintln!("{}", report.summary_table());
        eprintln!("{}", report.to_json());
        return;
    }
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("cannot write timings to `{path}`: {e}");
        std::process::exit(1);
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn find_bench(name: &str, scale: usize) -> Option<Benchmark> {
    all_benchmarks(scale)
        .into_iter()
        .find(|b| b.abbrev.eq_ignore_ascii_case(name) || b.name.eq_ignore_ascii_case(name))
}
