//! Reproduction of **"Lasagne: A Static Binary Translator for Weak Memory
//! Model Architectures"** (Rocha et al., PLDI 2022) as a Rust workspace.
//!
//! This umbrella crate re-exports the workspace's public surface; see the
//! individual crates for the subsystems:
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`x86`] | §4 | x86-64 ISA, assembler, disassembler |
//! | [`lir`] | §3/§6 | the typed IR, interpreter, SSA utilities |
//! | [`lifter`] | §4 | binary lifting (CFG recon, type discovery, translation) |
//! | [`refine`] | §5 | pointer-exposing peepholes + parameter promotion |
//! | [`memmodel`] | §6–7 | x86-TSO / Armv8 / LIMM axiomatic models, litmus checking |
//! | [`fences`] | §7–8 | fence placement, merging, Figure 11 legality |
//! | [`opt`] | §9.4 | the Figure 17 optimization passes |
//! | [`armgen`] | §8 | AArch64 backend + cost-model interpreter |
//! | [`phoenix`] | §9.1 | the Phoenix benchmarks as x86 binaries |
//! | [`translator`] | §3 | the end-to-end pipeline and §9.1 versions |
//! | [`mod@bench`] | §9 | measurement harness behind `report` and the benches |
//! | [`cache`] | — | content-addressed on-disk translation cache |
//! | [`trace`] | — | structured tracing, metrics, Chrome trace export |

pub use lasagne as translator;
pub use lasagne_armgen as armgen;
pub use lasagne_bench as bench;
pub use lasagne_cache as cache;
pub use lasagne_fences as fences;
pub use lasagne_lifter as lifter;
pub use lasagne_lir as lir;
pub use lasagne_memmodel as memmodel;
pub use lasagne_opt as opt;
pub use lasagne_phoenix as phoenix;
pub use lasagne_refine as refine;
pub use lasagne_trace as trace;
pub use lasagne_x86 as x86;
