//! Persisted-seed regression files.
//!
//! When a property fails, the *case seed* that produced the failure is
//! appended to `tests/<suite>.qc-regressions` next to the suite's source
//! file; every later run replays persisted seeds before generating novel
//! cases, so a bug once found stays found until fixed.
//!
//! The parser also ingests the `proptest`-style files this repository
//! checked in before going offline (`tests/<suite>.proptest-regressions`):
//! their `cc <hex>` lines carry a 256-bit case hash, of which the leading
//! 64 bits are ingested as a replay seed. The exact proptest value cannot
//! be resynthesized from a foreign hash — known divergences are pinned as
//! named unit tests instead — but the seed still deterministically
//! exercises the generator on every run.
//!
//! Line format (one case per line, `#` comments ignored):
//!
//! ```text
//! qc <16 hex digits> [# shrinks to <debug repr>]
//! cc <hex digits>    [# comment]            (legacy proptest)
//! ```

use std::path::{Path, PathBuf};

/// Regression state for one property suite.
#[derive(Debug, Clone)]
pub struct Regressions {
    /// Seeds to replay, in file order (legacy files first).
    pub seeds: Vec<u64>,
    /// Where new failures should be persisted.
    pub persist_path: PathBuf,
}

/// Parses one regression-file line; `None` for blanks and comments.
pub fn parse_line(line: &str) -> Option<u64> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let mut words = line.split_whitespace();
    let tag = words.next()?;
    if tag != "qc" && tag != "cc" {
        return None;
    }
    let hex = words.next()?;
    let hex = hex.strip_prefix("0x").unwrap_or(hex);
    let lead: String = hex.chars().take(16).collect();
    u64::from_str_radix(&lead, 16).ok()
}

fn parse_file(path: &Path, seeds: &mut Vec<u64>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for line in text.lines() {
        if let Some(seed) = parse_line(line) {
            if !seeds.contains(&seed) {
                seeds.push(seed);
            }
        }
    }
}

/// Loads the regression seeds for a suite, given the owning crate's
/// manifest directory and the suite's `file!()` path.
pub fn load(manifest_dir: &str, source_file: &str) -> Regressions {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "suite".to_string());
    let dir = Path::new(manifest_dir).join("tests");
    let mut seeds = Vec::new();
    parse_file(
        &dir.join(format!("{stem}.proptest-regressions")),
        &mut seeds,
    );
    let native = dir.join(format!("{stem}.qc-regressions"));
    parse_file(&native, &mut seeds);
    Regressions {
        seeds,
        persist_path: native,
    }
}

/// Appends a newly found failing seed (no-op if already present). The
/// minimal value's debug repr rides along as a comment, newlines folded.
pub fn append(path: &Path, seed: u64, minimal: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let line_seed = format!("{seed:016x}");
    for line in existing.lines() {
        if parse_line(line) == Some(seed) {
            return Ok(());
        }
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let note: String = minimal
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    let mut out = existing;
    if out.is_empty() {
        out.push_str(
            "# Seeds for failure cases lasagne-qc found in the past. Replayed before\n\
             # novel cases on every run; check this file in to source control.\n",
        );
    }
    out.push_str(&format!("qc {line_seed} # shrinks to {note}\n"));
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_native_and_legacy_lines() {
        assert_eq!(
            parse_line("qc 00000000000001ff # shrinks to 3"),
            Some(0x1ff)
        );
        assert_eq!(
            parse_line("cc 54f1dac6f88754644458ebdfcaec7ffff394289b2865f02e2939d19df4bd0252 # x"),
            Some(0x54f1_dac6_f887_5464)
        );
        assert_eq!(parse_line("# comment"), None);
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("zz 1234"), None);
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = std::env::temp_dir()
            .join("lasagne-qc-regress-test")
            .join("tests");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
        let path = dir.join("suite.qc-regressions");
        append(&path, 0xdead_beef, "[1, 2]").unwrap();
        append(&path, 0xdead_beef, "[1, 2]").unwrap(); // dedup
        append(&path, 7, "multi\nline").unwrap();
        let r = load(dir.parent().unwrap().to_str().unwrap(), "tests/suite.rs");
        assert_eq!(r.seeds, vec![0xdead_beef, 7]);
        assert_eq!(r.persist_path, path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("deadbeef").count(), 1, "no duplicate lines");
        assert!(text.contains("multi line"), "newlines folded: {text}");
    }
}
