//! Collection strategies (`vec`), mirroring `proptest::collection`.

use crate::source::{Source, VecSpan};
use crate::strategy::{Rejected, Strategy};

/// An inclusive size range for generated collections. Converts from
/// `usize` (exact), `Range<usize>` (half-open), and `RangeInclusive`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest permitted length.
    pub min: usize,
    /// Largest permitted length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(
            r.start < r.end,
            "empty vec size range {}..{}",
            r.start,
            r.end
        );
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates a `Vec` of values from `elem`, with a length drawn from
/// `size`. Shrinking removes elements (down to `size.min`) and then
/// minimizes the survivors.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecOf<S> {
    VecOf {
        elem,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecOf<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, src: &mut Source) -> Result<Vec<S::Value>, Rejected> {
        let len_idx = src.pos();
        let width = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + (src.next() % width) as usize;
        let mut out = Vec::with_capacity(len);
        let mut elems = Vec::with_capacity(len);
        for _ in 0..len {
            let start = src.pos();
            out.push(self.elem.generate(src)?);
            elems.push((start, src.pos()));
        }
        src.record_vec(VecSpan {
            len_idx,
            width,
            elems,
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range() {
        let s = vec(0u64..10, 2..5);
        let mut src = Source::random(11);
        for _ in 0..300 {
            let v = s.generate(&mut src).unwrap();
            assert!((2..=4).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn exact_size_and_inclusive_ranges() {
        let mut src = Source::random(1);
        assert_eq!(vec(0u8..5, 3usize).generate(&mut src).unwrap().len(), 3);
        let v = vec(0u8..5, 1..=2).generate(&mut src).unwrap();
        assert!((1..=2).contains(&v.len()));
    }

    #[test]
    fn records_vec_structure() {
        let s = vec(0u64..10, 2..5);
        let mut src = Source::random(11);
        let v = s.generate(&mut src).unwrap();
        let st = src.into_structure();
        assert_eq!(st.vecs.len(), 1);
        assert_eq!(st.vecs[0].elems.len(), v.len());
        assert_eq!(st.vecs[0].len_idx, 0);
    }
}
