//! A minimal wall-clock benchmark runner (the in-tree `criterion`
//! replacement).
//!
//! Methodology: a warm-up phase both warms caches and calibrates how many
//! iterations fit in one sample; then `samples` timed samples of that many
//! iterations each are collected, and per-iteration median, mean, and
//! standard deviation are reported. A human-readable line is printed per
//! benchmark as it completes; [`Runner::finish`] emits a machine-readable
//! JSON summary to stdout (and to `$LASAGNE_BENCH_JSON` if set).
//!
//! Environment knobs: `LASAGNE_BENCH_WARMUP_MS`, `LASAGNE_BENCH_SAMPLES`,
//! `LASAGNE_BENCH_SAMPLE_MS`, `LASAGNE_BENCH_JSON`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing parameters for one [`Runner`].
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Warm-up / calibration budget per benchmark, in milliseconds.
    pub warmup_ms: u64,
    /// Number of timed samples per benchmark.
    pub samples: u32,
    /// Target wall-clock length of one sample, in milliseconds.
    pub sample_ms: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            warmup_ms: 200,
            samples: 10,
            sample_ms: 50,
        }
    }
}

impl BenchConfig {
    /// The default configuration with `LASAGNE_BENCH_*` overrides applied.
    pub fn from_env() -> BenchConfig {
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        let d = BenchConfig::default();
        BenchConfig {
            warmup_ms: get("LASAGNE_BENCH_WARMUP_MS").unwrap_or(d.warmup_ms),
            samples: get("LASAGNE_BENCH_SAMPLES")
                .map(|v| v as u32)
                .unwrap_or(d.samples),
            sample_ms: get("LASAGNE_BENCH_SAMPLE_MS").unwrap_or(d.sample_ms),
        }
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark id within its group.
    pub name: String,
    /// Iterations per timed sample (calibrated during warm-up).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: u32,
    /// Median of the per-sample means.
    pub median_ns: f64,
    /// Mean of the per-sample means.
    pub mean_ns: f64,
    /// Standard deviation of the per-sample means.
    pub stddev_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Formats nanoseconds with a human-appropriate unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects and reports a group of benchmarks.
pub struct Runner {
    group: String,
    cfg: BenchConfig,
    results: Vec<Summary>,
    meta: Vec<(String, u64)>,
}

impl Runner {
    /// A runner for the named group, configured from the environment.
    pub fn new(group: &str) -> Runner {
        Runner {
            group: group.to_string(),
            cfg: BenchConfig::from_env(),
            results: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// A runner with an explicit configuration.
    pub fn with_config(group: &str, cfg: BenchConfig) -> Runner {
        Runner {
            group: group.to_string(),
            cfg,
            results: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Records a group-level counter (e.g. cache hits) emitted under
    /// `"meta"` in the JSON summary. Later notes with the same key
    /// overwrite earlier ones.
    pub fn note(&mut self, key: &str, value: u64) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key.to_string(), value));
        }
    }

    /// Measures `f`, printing one progress line and recording a summary.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warm-up doubles as calibration.
        let warmup = Duration::from_millis(self.cfg.warmup_ms.max(1));
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_ns = (start.elapsed().as_nanos() as u64 / warm_iters.max(1)).max(1);
        let iters = (self.cfg.sample_ms.max(1) * 1_000_000 / per_iter_ns).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.cfg.samples as usize);
        for _ in 0..self.cfg.samples.max(1) {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        let median = if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2.0
        };
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let summary = Summary {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: n as u32,
            median_ns: median,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            min_ns: samples[0],
            max_ns: samples[n - 1],
        };
        println!(
            "{:<40} median {:>12}   σ {:>12}   ({} iters × {} samples)",
            format!("{}/{}", self.group, summary.name),
            fmt_ns(summary.median_ns),
            fmt_ns(summary.stddev_ns),
            summary.iters_per_sample,
            summary.samples,
        );
        self.results.push(summary);
    }

    /// Serializes the group's results as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"group\":{},\"warmup_ms\":{},\"samples\":{},\"sample_ms\":{},\"benches\":[",
            json_str(&self.group),
            self.cfg.warmup_ms,
            self.cfg.samples,
            self.cfg.sample_ms
        ));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"iters_per_sample\":{},\"samples\":{},\"median_ns\":{:.1},\
                 \"mean_ns\":{:.1},\"stddev_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
                json_str(&r.name),
                r.iters_per_sample,
                r.samples,
                r.median_ns,
                r.mean_ns,
                r.stddev_ns,
                r.min_ns,
                r.max_ns
            ));
        }
        s.push(']');
        if !self.meta.is_empty() {
            s.push_str(",\"meta\":{");
            for (i, (k, v)) in self.meta.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:{v}", json_str(k)));
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// Prints the JSON summary (and writes `$LASAGNE_BENCH_JSON` if set).
    pub fn finish(self) {
        let json = self.to_json();
        println!("{json}");
        if let Some(path) = std::env::var_os("LASAGNE_BENCH_JSON") {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!(
                    "[lasagne-qc] could not write {}: {e}",
                    path.to_string_lossy()
                );
            }
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes() {
        let cfg = BenchConfig {
            warmup_ms: 1,
            samples: 3,
            sample_ms: 1,
        };
        let mut r = Runner::with_config("unit", cfg);
        let mut acc = 0u64;
        r.bench("wrapping_sum", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(r.results.len(), 1);
        let json = r.to_json();
        assert!(json.contains("\"group\":\"unit\""), "{json}");
        assert!(json.contains("\"name\":\"wrapping_sum\""), "{json}");
        assert!(json.contains("median_ns"), "{json}");
        assert!(!json.contains("\"meta\""), "{json}");
        r.note("cache_hits", 7);
        r.note("cache_hits", 9);
        r.note("cache_misses", 1);
        let json = r.to_json();
        assert!(
            json.ends_with(",\"meta\":{\"cache_hits\":9,\"cache_misses\":1}}"),
            "{json}"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
