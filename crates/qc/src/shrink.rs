//! Greedy integrated shrinking over the recorded choice tape.
//!
//! A failing case is a tape of `u64` choices (plus the vector structure
//! recorded while generating it). Shrinking proposes edited tapes, re-runs
//! the strategy on each in replay mode, and keeps any edit that still
//! fails the property — greedily, restarting the pass list after every
//! accepted edit, until a fixpoint or the evaluation budget is exhausted.
//!
//! Two passes, ordered so the big structural wins come first:
//!
//! 1. **Element removal** — for every recorded vector, try deleting each
//!    element's choice range (decrementing the recorded length draw);
//! 2. **Choice minimization** — per choice: try 0 outright, then binary
//!    search the smallest still-failing value.
//!
//! Because edits are re-executed through the strategy, invariants are
//! preserved by construction (a tape that generates at all generates a
//! valid value), and `prop_map`/`prop_oneof`/`prop_filter` compositions
//! shrink without any per-strategy shrink code.

use crate::source::{Source, Structure};
use crate::strategy::Strategy;

/// Re-runs `strat` on a tape; `None` if the strategy rejects it.
fn regen<S: Strategy>(strat: &S, tape: &[u64]) -> Option<(S::Value, Structure)> {
    let mut src = Source::replay(tape.to_vec());
    match strat.generate(&mut src) {
        Ok(v) => Some((v, src.into_structure())),
        Err(_) => None,
    }
}

/// Tries one candidate tape: returns the new structure if it still fails.
fn attempt<S, F>(strat: &S, fails: &F, tape: Vec<u64>, budget: &mut usize) -> Option<Structure>
where
    S: Strategy,
    F: Fn(S::Value) -> bool,
{
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    let (value, st) = regen(strat, &tape)?;
    if fails(value) {
        Some(st)
    } else {
        None
    }
}

/// Removing element `ei` of vector `vi`: splices out its choice range and
/// rewrites the length draw. `None` when the vector is already minimal.
fn remove_elem(cur: &Structure, vi: usize, ei: usize) -> Option<Vec<u64>> {
    let vs = &cur.vecs[vi];
    let offset = cur.choices[vs.len_idx] % vs.width;
    if offset == 0 {
        return None; // Already at the minimum length.
    }
    let (start, end) = vs.elems[ei];
    let mut tape = cur.choices.clone();
    tape[vs.len_idx] = offset - 1;
    tape.drain(start..end);
    Some(tape)
}

/// Minimizes a single choice: 0 first, then binary search in `(0, c]`.
fn minimize_choice<S, F>(
    strat: &S,
    fails: &F,
    cur: &Structure,
    idx: usize,
    budget: &mut usize,
) -> Option<Structure>
where
    S: Strategy,
    F: Fn(S::Value) -> bool,
{
    let c = cur.choices[idx];
    if c == 0 {
        return None;
    }
    let with = |v: u64| {
        let mut tape = cur.choices.clone();
        tape[idx] = v;
        tape
    };
    if let Some(st) = attempt(strat, fails, with(0), budget) {
        return Some(st);
    }
    // 0 passes, c fails: find the smallest failing value in between.
    let (mut lo, mut hi) = (0u64, c);
    let mut best = None;
    while hi - lo > 1 && *budget > 0 {
        let mid = lo + (hi - lo) / 2;
        match attempt(strat, fails, with(mid), budget) {
            Some(st) => {
                hi = mid;
                best = Some(st);
            }
            None => lo = mid,
        }
    }
    best
}

/// Greedily minimizes a failing tape. `fails` must run the property and
/// report whether it still fails; `budget` bounds the total number of
/// property evaluations. Returns the minimal structure found.
pub fn minimize<S, F>(strat: &S, fails: &F, start: Structure, budget: &mut usize) -> Structure
where
    S: Strategy,
    F: Fn(S::Value) -> bool,
{
    let mut cur = start;
    'restart: loop {
        if *budget == 0 {
            return cur;
        }
        // Pass 1: vector element removal, innermost vectors last so outer
        // removals (which delete whole nested runs) are tried first.
        for vi in (0..cur.vecs.len()).rev() {
            for ei in (0..cur.vecs[vi].elems.len()).rev() {
                if let Some(tape) = remove_elem(&cur, vi, ei) {
                    if let Some(st) = attempt(strat, fails, tape, budget) {
                        cur = st;
                        continue 'restart;
                    }
                }
            }
        }
        // Pass 2: per-choice minimization.
        for idx in 0..cur.choices.len() {
            if let Some(st) = minimize_choice(strat, fails, &cur, idx, budget) {
                cur = st;
                continue 'restart;
            }
        }
        return cur;
    }
}

/// Regenerates the value for a (minimal) structure. Panics if the tape no
/// longer generates — it was accepted by [`minimize`], so it must.
pub fn value_of<S: Strategy>(strat: &S, st: &Structure) -> S::Value {
    regen(strat, &st.choices)
        .expect("accepted tape regenerates")
        .0
}
