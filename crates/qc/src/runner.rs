//! The property runner: regression replay, case generation, shrinking,
//! and reporting.
//!
//! [`check`] is the pure entry point (returns the failure, if any);
//! [`run`] is what the [`crate::properties!`] macro expands to — it
//! persists the failing seed and panics with a report, which is how a
//! failing property surfaces through `cargo test`.

use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::OnceLock;

use crate::rng::SplitMix64;
use crate::shrink;
use crate::source::Source;
use crate::strategy::Strategy;
use crate::{regress, Config};

/// How a test case ends: `Ok(())`, a rejection (the case does not apply,
/// cf. `prop_assume!`), or a failure.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input does not satisfy the property's preconditions; the case
    /// is skipped without counting toward the case budget.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// What a property body returns.
pub type CaseResult = Result<(), TestCaseError>;

/// Identity of a property, captured by the [`crate::properties!`] macro.
#[derive(Debug, Clone, Copy)]
pub struct TestInfo {
    /// Fully qualified property name (for reports).
    pub name: &'static str,
    /// `CARGO_MANIFEST_DIR` of the crate defining the property — anchors
    /// the regression file independent of the test-time working directory.
    pub manifest_dir: &'static str,
    /// `file!()` of the property definition.
    pub source_file: &'static str,
}

/// A minimized property failure.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// The case seed that (re)produces the failure.
    pub seed: u64,
    /// The shrunk counterexample.
    pub minimal: T,
    /// The failure message of the minimal case.
    pub message: String,
    /// Property evaluations the shrinker spent.
    pub shrink_evals: usize,
    /// Whether the seed came from a persisted regression file.
    pub from_regression: bool,
}

thread_local! {
    static IN_CASE: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays quiet while a
/// property case is executing — shrinking re-runs failing, possibly
/// panicking, bodies hundreds of times and must not spew backtraces.
fn install_quiet_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_CASE.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

/// Runs the property body on one value, converting panics to failures.
fn call<T, F>(f: &F, value: T) -> Outcome
where
    F: Fn(T) -> CaseResult,
{
    IN_CASE.with(|c| c.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(|| f(value)));
    IN_CASE.with(|c| c.set(false));
    match r {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(TestCaseError::Reject(_))) => Outcome::Reject,
        Ok(Err(TestCaseError::Fail(m))) => Outcome::Fail(m),
        Err(payload) => Outcome::Fail(panic_message(payload)),
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = v
        .strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| v.parse::<u64>());
    match parsed {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("[lasagne-qc] ignoring unparseable {name}={v}");
            None
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Checks the property and returns the minimized failure, if any.
///
/// Replays persisted regression seeds first, then generates fresh cases
/// until `cfg.cases` have been accepted (rejections don't count, but an
/// excessive rejection rate is itself an error). This function never
/// writes regression files — that is [`run`]'s job.
///
/// # Panics
///
/// Panics if the rejection rate makes the configured case count
/// unreachable.
pub fn check<S, F>(info: TestInfo, cfg: &Config, strat: &S, f: F) -> Result<(), Failure<S::Value>>
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    install_quiet_hook();
    let seed = env_u64("LASAGNE_QC_SEED").unwrap_or(cfg.seed);
    let cases = env_u64("LASAGNE_QC_CASES")
        .map(|n| n as u32)
        .unwrap_or(cfg.cases);

    let one = |case_seed: u64, from_regression: bool| -> Result<bool, Failure<S::Value>> {
        let mut src = Source::random(case_seed);
        let value = match strat.generate(&mut src) {
            Ok(v) => v,
            Err(_) => return Ok(false),
        };
        match call(&f, value) {
            Outcome::Pass => Ok(true),
            Outcome::Reject => Ok(false),
            Outcome::Fail(first_message) => {
                let fails = |v: S::Value| matches!(call(&f, v), Outcome::Fail(_));
                let mut budget = cfg.max_shrink_evals;
                let total = budget;
                let min = shrink::minimize(strat, &fails, src.into_structure(), &mut budget);
                let minimal = shrink::value_of(strat, &min);
                let message = match call(&f, shrink::value_of(strat, &min)) {
                    Outcome::Fail(m) => m,
                    _ => first_message,
                };
                Err(Failure {
                    seed: case_seed,
                    minimal,
                    message,
                    shrink_evals: total - budget,
                    from_regression,
                })
            }
        }
    };

    // 1. Persisted regressions, replayed deterministically.
    let reg = regress::load(info.manifest_dir, info.source_file);
    for s in &reg.seeds {
        one(*s, true)?;
    }

    // 2. Fresh cases from the per-property seed stream.
    let mut stream = SplitMix64::new(seed ^ fnv1a(info.name));
    let mut accepted = 0u32;
    let max_attempts = u64::from(cases) * 16 + 64;
    let mut attempts = 0u64;
    while accepted < cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{}: too many rejected cases ({accepted}/{cases} accepted in {max_attempts} attempts)",
            info.name
        );
        if one(stream.next_u64(), false)? {
            accepted += 1;
        }
    }
    Ok(())
}

/// Entry point used by the [`crate::properties!`] macro: [`check`], plus
/// seed persistence and a panic report on failure.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) when the property fails.
pub fn run<S, F>(info: TestInfo, cfg: Config, strat: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let Err(failure) = check(info, &cfg, &strat, f) else {
        return;
    };
    let minimal_line = format!("{:?}", failure.minimal);
    let mut persisted = String::new();
    if cfg.persist
        && !failure.from_regression
        && std::env::var_os("LASAGNE_QC_NO_PERSIST").is_none()
    {
        let path = regress::load(info.manifest_dir, info.source_file).persist_path;
        match regress::append(&path, failure.seed, &minimal_line) {
            Ok(()) => persisted = format!("\n  persisted to: {}", path.display()),
            Err(e) => persisted = format!("\n  (could not persist seed: {e})"),
        }
    }
    panic!(
        "[lasagne-qc] property {} failed.\n  seed: 0x{:016x}{}{}\n  minimal input \
         ({} shrink evals): {:#?}\n  error: {}",
        info.name,
        failure.seed,
        if failure.from_regression {
            " (persisted regression)"
        } else {
            ""
        },
        persisted,
        failure.shrink_evals,
        failure.minimal,
        failure.message,
    );
}
