//! Deterministic pseudo-random number generation.
//!
//! Two tiny, well-known generators, both implemented from their public
//! reference descriptions:
//!
//! * [`SplitMix64`] — a one-word-state mixer, used to expand a `u64` seed
//!   into the larger [`Xoshiro256`] state and to derive independent
//!   per-case seeds from a base seed;
//! * [`Xoshiro256`] (xoshiro256**) — the main generator behind random test
//!   case generation.
//!
//! Everything here is pure and `Copy`-cheap: the same seed always yields
//! the same stream, on every platform, which is the foundation of the
//! persisted-seed regression format in [`crate::regress`].

/// SplitMix64: a 64-bit mixing generator with a single word of state.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed. Any value, including 0, is a
    /// valid seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator for case generation.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the 256-bit state by running [`SplitMix64`] on `seed`, as the
    /// xoshiro authors recommend.
    pub fn from_seed(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::from_seed(42);
        let mut b = Xoshiro256::from_seed(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::from_seed(1);
        let mut b = Xoshiro256::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must not produce colliding streams");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = Xoshiro256::from_seed(0);
        // The state expansion must keep the generator out of the all-zero
        // fixed point.
        let sum: u64 = (0..16).fold(0u64, |acc, _| acc | g.next_u64());
        assert_ne!(sum, 0);
    }
}
