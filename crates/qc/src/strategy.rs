//! Value-generation strategies and their combinators.
//!
//! A [`Strategy`] turns draws from a [`Source`] into values of its
//! `Value` type. The combinator surface intentionally mirrors the subset
//! of `proptest` this workspace used before going offline — integer
//! ranges, [`Just`], [`any`], tuples, weighted [`OneOf`] (via
//! [`crate::prop_oneof!`]), `prop_map`, and `prop_filter` — so property
//! suites port with only an import change.
//!
//! Shrinking is *integrated*: strategies never implement a shrink method.
//! Because every strategy is a deterministic function of the choice tape,
//! the shrinker in [`crate::shrink`] minimizes the tape and simply re-runs
//! the strategy.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::source::Source;

/// Marker returned when a strategy cannot produce a value from the current
/// stream (e.g. a `prop_filter` predicate kept failing). The runner skips
/// the case; the shrinker discards the candidate tape.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// A recipe for generating values of type `Value` from a choice stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value, drawing as many choices as needed.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] if no acceptable value could be produced.
    fn generate(&self, src: &mut Source) -> Result<Self::Value, Rejected>;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, src: &mut Source) -> Result<Self::Value, Rejected> {
        (**self).generate(src)
    }
}

/// A heap-allocated, type-erased strategy, as produced by
/// [`StrategyExt::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> Result<T, Rejected> {
        (**self).generate(src)
    }
}

/// Combinator methods available on every sized strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying a bounded number
    /// of times before rejecting the whole case. `why` names the filter in
    /// nothing but the reader's mind — it documents intent at the call
    /// site, matching the `proptest` signature.
    fn prop_filter<F>(self, why: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            why,
            pred,
        }
    }

    /// Erases the concrete strategy type behind a `Box`, so strategies of
    /// different shapes can live in one [`OneOf`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

/// Always produces a clone of the given value; draws no choices.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _src: &mut Source) -> Result<T, Rejected> {
        Ok(self.0.clone())
    }
}

/// See [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, src: &mut Source) -> Result<U, Rejected> {
        Ok((self.f)(self.inner.generate(src)?))
    }
}

/// See [`StrategyExt::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    why: &'static str,
    pred: F,
}

/// How many fresh draws a [`Filter`] attempts before rejecting the case.
const FILTER_RETRIES: usize = 8;

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, src: &mut Source) -> Result<S::Value, Rejected> {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(src)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejected)
    }
}

/// Chooses between boxed alternative strategies with integer weights.
/// Construct via [`crate::prop_oneof!`]. The *first* alternative is the
/// "simplest": shrinking drives the selector choice toward 0, so order
/// alternatives from simple to complex.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Builds a weighted choice from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total > 0,
            "OneOf requires at least one arm with nonzero weight"
        );
        OneOf { arms }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, src: &mut Source) -> Result<T, Rejected> {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut roll = src.next() % total;
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if roll < w {
                return strat.generate(src);
            }
            roll -= w;
        }
        unreachable!("roll is bounded by the total weight")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source) -> Result<$t, Rejected> {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(src.next()) % width;
                Ok((self.start as i128 + off as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source) -> Result<$t, Rejected> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy {start}..={end}");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = u128::from(src.next()) % width;
                Ok((start as i128 + off as i128) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy behind [`any`] for primitive types: the full domain, uniform.
pub struct AnyPrim<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy, usable via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical full-domain strategy for `T`, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source) -> Result<$t, Rejected> {
                Ok(src.next() as $t)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;

            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(PhantomData)
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;

    fn generate(&self, src: &mut Source) -> Result<bool, Rejected> {
        Ok(src.next() & 1 == 1)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;

    fn arbitrary() -> AnyPrim<bool> {
        AnyPrim(PhantomData)
    }
}

macro_rules! tuple_strategies {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, src: &mut Source) -> Result<Self::Value, Rejected> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.generate(src)?,)+))
            }
        }
    };
}

tuple_strategies!(A);
tuple_strategies!(A, B);
tuple_strategies!(A, B, C);
tuple_strategies!(A, B, C, D);
tuple_strategies!(A, B, C, D, E);
tuple_strategies!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut src = Source::random(3);
        for _ in 0..500 {
            let v = (-5i64..7).generate(&mut src).unwrap();
            assert!((-5..7).contains(&v));
            let u = (1u8..=3).generate(&mut src).unwrap();
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        let mut src = Source::random(9);
        for _ in 0..200 {
            let v = s.generate(&mut src).unwrap();
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn oneof_honors_zero_choice() {
        // A replayed 0 choice must select the first (simplest) arm.
        let s: OneOf<u32> = OneOf::new(vec![(1, Just(7u32).boxed()), (3, (10u32..20).boxed())]);
        let mut src = Source::replay(vec![0]);
        assert_eq!(s.generate(&mut src).unwrap(), 7);
    }
}
