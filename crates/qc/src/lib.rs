//! `lasagne-qc` — the workspace's in-tree, std-only, deterministic
//! property-testing and benchmarking harness.
//!
//! This container builds fully offline; no crates.io dependency is
//! available. Everything the translator's correctness story needs from
//! `proptest` and `criterion` is therefore reimplemented here, small and
//! deterministic:
//!
//! * [`rng`] — splitmix64 / xoshiro256** PRNGs;
//! * [`strategy`] + [`collection`] — a `Strategy` combinator layer
//!   (integer ranges, [`strategy::Just`], [`strategy::any`], tuples,
//!   weighted [`prop_oneof!`], `prop_map`, `prop_filter`, `vec`);
//! * [`shrink`] — greedy *integrated* shrinking over the recorded choice
//!   tape, so mapped/filtered/one-of strategies shrink with no
//!   per-strategy code;
//! * [`regress`] — persisted-seed regression files (and ingestion of the
//!   legacy `*.proptest-regressions` files);
//! * [`runner`] — the case loop behind the [`properties!`] macro;
//! * [`mod@bench`] — a minimal wall-clock benchmark runner with JSON output.
//!
//! # Writing a property
//!
//! ```
//! use lasagne_qc::prelude::*;
//! use lasagne_qc::collection;
//!
//! fn small_even() -> impl Strategy<Value = u32> {
//!     (0u32..500).prop_map(|n| n * 2)
//! }
//!
//! properties! {
//!     config = Config::with_cases(256);
//!
//!     fn sums_commute(xs in collection::vec(small_even(), 0..16), y in small_even()) {
//!         let a: u64 = xs.iter().map(|v| u64::from(*v) + u64::from(y)).sum();
//!         let b: u64 = xs.iter().map(|v| u64::from(*v)).sum::<u64>()
//!             + u64::from(y) * xs.len() as u64;
//!         prop_assert_eq!(a, b, "sum mismatch for {} elements", xs.len());
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Every run is reproducible: cases derive from a fixed default seed (or
//! `LASAGNE_QC_SEED`), failures shrink to a minimal counterexample, and
//! the failing seed is persisted to `tests/<suite>.qc-regressions` for
//! replay on every subsequent run.

#![warn(missing_docs)]

pub mod bench;
pub mod collection;
pub mod regress;
pub mod rng;
pub mod runner;
pub mod shrink;
pub mod source;
pub mod strategy;

/// Configuration for one property (the `config = …;` line of
/// [`properties!`]).
#[derive(Debug, Clone)]
pub struct Config {
    /// Accepted cases to run (rejections do not count).
    pub cases: u32,
    /// Base seed; per-property and per-case seeds derive from it.
    /// Overridable at run time with `LASAGNE_QC_SEED`.
    pub seed: u64,
    /// Property-evaluation budget for shrinking one failure.
    pub max_shrink_evals: usize,
    /// Whether failures persist their seed to the regression file
    /// (`LASAGNE_QC_NO_PERSIST` disables at run time).
    pub persist: bool,
}

/// The workspace-wide default seed. Arbitrary but fixed: results must be
/// identical across machines and runs.
pub const DEFAULT_SEED: u64 = 0x1a5a_67e5_eed5_0001;

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            seed: DEFAULT_SEED,
            max_shrink_evals: 2048,
            persist: true,
        }
    }
}

impl Config {
    /// The default configuration with the given case count.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Declares deterministic property tests.
///
/// Each `fn name(binder in strategy, …) { body }` expands to a `#[test]`
/// that runs the body over generated inputs via [`runner::run`]. The body
/// may use [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
/// [`prop_assume!`], and `?` on [`runner::CaseResult`]s. The leading
/// `config = expr;` line is optional and defaults to [`Config::default`].
#[macro_export]
macro_rules! properties {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::runner::run(
                    $crate::runner::TestInfo {
                        name: concat!(module_path!(), "::", stringify!($name)),
                        manifest_dir: env!("CARGO_MANIFEST_DIR"),
                        source_file: file!(),
                    },
                    $cfg,
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )+
    };
    ( $($rest:tt)+ ) => {
        $crate::properties! { config = $crate::Config::default(); $($rest)+ }
    };
}

/// Weighted or unweighted choice between strategies producing the same
/// value type: `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
/// Shrinking prefers earlier alternatives — order simple-to-complex.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(($weight as u32, $crate::strategy::StrategyExt::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $((1u32, $crate::strategy::StrategyExt::boxed($strat)),)+
        ])
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds. Usable in any function returning
/// [`runner::CaseResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} at {}:{}",
                    stringify!($cond), file!(), line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({}) at {}:{}",
                    stringify!($cond), ::std::format!($($fmt)+), file!(), line!()
                ),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "`{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "`{:?}` != `{:?}`: {}", l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "`{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "`{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Skips the current case (without counting it) unless the precondition
/// holds — the moral equivalent of `proptest`'s `prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::runner::TestCaseError::reject(
                ::std::concat!("assumption not met: ", stringify!($cond)),
            ));
        }
    };
}

/// The glob-import surface property suites use:
/// `use lasagne_qc::prelude::*;`.
pub mod prelude {
    pub use crate::runner::{CaseResult, TestCaseError};
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, StrategyExt};
    pub use crate::Config;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, properties,
    };
}
