//! `lasagne-qc` testing itself: shrinking must converge on minimal
//! counterexamples for planted bugs, runs must be reproducible from the
//! seed, and the regression file format must round-trip.

use lasagne_qc::collection;
use lasagne_qc::prelude::*;
use lasagne_qc::runner::{check, Failure, TestCaseError, TestInfo};

fn info() -> TestInfo {
    // Point the regression lookup at a directory with no files so the
    // planted failures below never read or write real regression state.
    TestInfo {
        name: "qc::self_test",
        manifest_dir: "/nonexistent-qc-self-test",
        source_file: "tests/self_test.rs",
    }
}

fn no_persist(cases: u32) -> Config {
    Config {
        persist: false,
        ..Config::with_cases(cases)
    }
}

fn expect_failure<S, F>(strat: S, f: F) -> Failure<S::Value>
where
    S: lasagne_qc::strategy::Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    check(info(), &no_persist(512), &strat, f).expect_err("planted bug must be found")
}

#[test]
fn shrinks_scalar_to_exact_boundary() {
    // Planted bug: fails iff v >= 500. The minimal counterexample is 500.
    let failure = expect_failure(0u64..10_000, |v| {
        prop_assert!(v < 500);
        Ok(())
    });
    assert_eq!(
        failure.minimal, 500,
        "greedy shrink must reach the boundary"
    );
}

#[test]
fn shrinks_through_map_and_oneof() {
    // Mapped/one-of composition still shrinks: fails iff value is an even
    // number >= 100; minimal is 100 (arm 1 doubled from 50).
    let strat = prop_oneof![
        (0u32..5000).prop_map(|v| v * 2 + 1),
        (0u32..5000).prop_map(|v| v * 2)
    ];
    let failure = expect_failure(strat, |v| {
        prop_assert!(v % 2 == 1 || v < 100);
        Ok(())
    });
    assert_eq!(failure.minimal, 100);
}

#[test]
fn shrinks_vec_to_single_minimal_element() {
    // Planted bug: fails iff any element >= 700. Minimal is `[700]`.
    let failure = expect_failure(collection::vec(0u64..10_000, 0..24), |v| {
        prop_assert!(v.iter().all(|x| *x < 700), "got {v:?}");
        Ok(())
    });
    assert_eq!(failure.minimal, vec![700]);
}

#[test]
fn shrinks_vec_len_only_to_its_minimum() {
    // Planted bug: fails iff the vec has >= 5 elements; shrinking must
    // drop elements but respect the element minimum of the size range.
    let failure = expect_failure(collection::vec(0u64..100, 2..12), |v| {
        prop_assert!(v.len() < 5);
        Ok(())
    });
    assert_eq!(failure.minimal, vec![0, 0, 0, 0, 0]);
}

#[test]
fn shrinks_tuples_componentwise() {
    let failure = expect_failure((0u64..1000, 0u64..1000), |(a, b)| {
        prop_assert!(a + b < 300);
        Ok(())
    });
    // Greedy shrinking guarantees a *local* minimum: the pair sits exactly
    // on the failure boundary (no single coordinate can shrink further).
    let (a, b) = failure.minimal;
    assert_eq!(a + b, 300, "minimal pair must sit exactly on the boundary");
}

#[test]
fn failures_are_reproducible_across_runs() {
    let run = || {
        expect_failure(collection::vec(0u64..10_000, 0..24), |v| {
            prop_assert!(v.iter().all(|x| *x < 700));
            Ok(())
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.seed, b.seed, "same config seed must find the same case");
    assert_eq!(a.minimal, b.minimal);
    assert_eq!(
        a.shrink_evals, b.shrink_evals,
        "the whole shrink trace must replay"
    );
}

#[test]
fn replaying_the_failure_seed_reproduces_the_failure() {
    use lasagne_qc::source::Source;
    let strat = collection::vec(0u64..10_000, 0..24);
    let failure = expect_failure(&strat, |v: Vec<u64>| {
        prop_assert!(v.iter().all(|x| *x < 700));
        Ok(())
    });
    // Regenerating from the persisted seed alone must reproduce a failing
    // value — this is what regression replay relies on.
    let mut src = Source::random(failure.seed);
    let v = strat.generate(&mut src).unwrap();
    assert!(
        v.iter().any(|x| *x >= 700),
        "seed 0x{:x} no longer fails: {v:?}",
        failure.seed
    );
}

#[test]
fn rejection_via_assume_does_not_fail() {
    // Always-rejecting preconditions must abort with a clear panic, not
    // hang; satisfiable ones must pass.
    let r = check(info(), &no_persist(64), &(0u64..100), |v| {
        prop_assume!(v % 2 == 0);
        prop_assert!(v < 100);
        Ok(())
    });
    assert!(r.is_ok());
}

#[test]
fn regression_file_round_trip_through_runner() {
    // A failure persisted by one run must be replayed (and still fail,
    // with the same minimal input) when the next run loads it — even if
    // the base seed differs.
    let dir = std::env::temp_dir().join(format!("lasagne-qc-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("tests")).unwrap();
    let dir_str = dir.to_str().unwrap().to_string();
    let dir_static: &'static str = Box::leak(dir_str.into_boxed_str());
    let info = TestInfo {
        name: "qc::self_test::persisted",
        manifest_dir: dir_static,
        source_file: "tests/persisted.rs",
    };
    let strat = 0u64..10_000;
    let prop = |v: u64| -> CaseResult {
        if v >= 500 {
            return Err(TestCaseError::fail("planted"));
        }
        Ok(())
    };

    let first = check(info, &no_persist(128), &strat, prop).expect_err("must fail");
    let path = lasagne_qc::regress::load(dir_static, info.source_file).persist_path;
    lasagne_qc::regress::append(&path, first.seed, &format!("{:?}", first.minimal)).unwrap();

    // Second run with a different base seed: the persisted seed replays
    // first and fails before any novel case is generated.
    let cfg = Config {
        seed: 0xdead_beef,
        ..no_persist(128)
    };
    let second = check(info, &cfg, &strat, prop).expect_err("regression must replay");
    assert!(second.from_regression);
    assert_eq!(second.seed, first.seed);
    assert_eq!(second.minimal, 500);
    let _ = std::fs::remove_dir_all(&dir);
}

properties! {
    config = Config::with_cases(256);

    /// The macro surface end-to-end: binders, assume, assert, `?`.
    fn macro_surface_works(xs in collection::vec(0u32..100, 0..8), flip in any::<bool>()) {
        prop_assume!(xs.len() != 7);
        let total: u64 = xs.iter().map(|v| u64::from(*v)).sum();
        prop_assert!(total <= 99 * 8, "total {total}");
        let parity = if flip { total % 2 } else { (total + 1) % 2 };
        prop_assert_ne!(parity, 2);
        Ok::<(), TestCaseError>(()).map_err(|e| e)?;
    }
}
