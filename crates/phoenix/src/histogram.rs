//! Phoenix `histogram` (HT): bucket-count the bytes of an image, split
//! across four pthreads with per-thread local histograms merged by main.
//!
//! Functions (4, matching Table 1): `main`, `hist_worker`, plus the merge
//! and checksum loops live in `main` as in the original; the x86 image also
//! contains `hist_merge` and `hist_sum` helpers to mirror the original's
//! function structure.

use crate::builders::*;
use crate::{Workload, WORKLOAD_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, Inst, Rm, ShiftOp};
use lasagne_x86::reg::{Cond, Gpr, Width};

/// Number of worker threads (as in the paper's runs).
pub const THREADS: u64 = 4;
/// Histogram bins.
pub const BINS: u64 = 256;

/// Builds the x86-64 binary.
pub fn binary() -> Binary {
    let mut b = BinaryBuilder::new();
    let malloc = b.declare_extern("malloc");
    let memset = b.declare_extern("memset");
    let pthread_create = b.declare_extern("pthread_create");
    let pthread_join = b.declare_extern("pthread_join");

    // ---- hist_worker(args) ----
    // args: [0]=data [8]=start [16]=end [24]=out local bins
    let worker_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.push(Inst::Push { src: Gpr::Rbx });
        a.push(Inst::Push { src: Gpr::R12 });
        a.push(movrr(Gpr::Rbx, Gpr::Rdi));
        // local = malloc(2048); memset(local, 0, 2048)
        a.push(movri(Gpr::Rdi, 8 * BINS as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R12, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::R12));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, 8 * BINS as i64));
        a.push(call(memset));
        // reload fields
        a.push(loadq(Gpr::R8, mem_b(Gpr::Rbx)));
        a.push(loadq(Gpr::R9, mem_bd(Gpr::Rbx, 8)));
        a.push(loadq(Gpr::R10, mem_bd(Gpr::Rbx, 16)));
        a.bind(top);
        a.push(cmprr(Gpr::R9, Gpr::R10));
        a.jcc(Cond::E, done);
        // rax = zext data[i]
        a.push(Inst::MovZx {
            dw: Width::W64,
            sw: Width::W8,
            dst: Gpr::Rax,
            src: Rm::Mem(mem_bi(Gpr::R8, Gpr::R9, 1, 0)),
        });
        // local[b] += 1
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::R12, Gpr::Rax, 8, 0)),
            imm: 1,
        });
        a.push(alui(AluOp::Add, Gpr::R9, 1));
        a.jmp(top);
        a.bind(done);
        a.push(storeq(mem_bd(Gpr::Rbx, 24), Gpr::R12));
        a.push(movri(Gpr::Rax, 0));
        a.push(Inst::Pop { dst: Gpr::R12 });
        a.push(Inst::Pop { dst: Gpr::Rbx });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("hist_worker", a.finish(addr).unwrap());
        addr
    };

    // ---- hist_merge(bins, args_area) : merge 4 workers' local bins ----
    let merge_addr = {
        let mut a = Asm::new();
        let t_top = a.label();
        let t_done = a.label();
        let i_top = a.label();
        let i_done = a.label();
        // rdi = bins, rsi = slots (args ptrs at [rsi + t*8 + 32])
        a.push(movri(Gpr::Rbx, 0));
        a.bind(t_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, t_done);
        a.push(loadq(Gpr::Rdx, mem_bi(Gpr::Rsi, Gpr::Rbx, 8, 32)));
        a.push(loadq(Gpr::Rdx, mem_bd(Gpr::Rdx, 24)));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(i_top);
        a.push(cmpri(Gpr::Rcx, BINS as i32));
        a.jcc(Cond::E, i_done);
        a.push(loadq(Gpr::Rax, mem_bi(Gpr::Rdx, Gpr::Rcx, 8, 0)));
        a.push(Inst::AluRmR {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::Rdi, Gpr::Rcx, 8, 0)),
            src: Gpr::Rax,
        });
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(i_top);
        a.bind(i_done);
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(t_top);
        a.bind(t_done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("hist_merge", a.finish(addr).unwrap());
        addr
    };

    // ---- hist_sum(bins) -> Σ i * bins[i] ----
    let sum_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(top);
        a.push(cmpri(Gpr::Rcx, BINS as i32));
        a.jcc(Cond::E, done);
        a.push(loadq(Gpr::Rdx, mem_bi(Gpr::Rdi, Gpr::Rcx, 8, 0)));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rcx),
        });
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::Rdx));
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(top);
        a.bind(done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("hist_sum", a.finish(addr).unwrap());
        addr
    };

    // ---- main(data, n) -> checksum ----
    {
        let mut a = Asm::new();
        let spawn_top = a.label();
        let spawn_done = a.label();
        let last = a.label();
        let join_top = a.label();
        let join_done = a.label();
        for r in [Gpr::Rbp, Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::R12, Gpr::Rdi)); // data
        a.push(movrr(Gpr::R13, Gpr::Rsi)); // n
                                           // bins = calloc-ish
        a.push(movri(Gpr::Rdi, 8 * BINS as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R14, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, 8 * BINS as i64));
        a.push(call(memset));
        // slots = malloc(64): [t*8] = tid, [t*8+32] = args ptr
        a.push(movri(Gpr::Rdi, 64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax));
        // chunk = n >> 2
        a.push(movrr(Gpr::Rbp, Gpr::R13));
        a.push(shifti(ShiftOp::Shr, Gpr::Rbp, 2));
        a.push(movri(Gpr::Rbx, 0));
        a.bind(spawn_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, spawn_done);
        // args = malloc(32)
        a.push(movri(Gpr::Rdi, 32));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rax), Gpr::R12)); // data
        a.push(movrr(Gpr::Rdx, Gpr::Rbx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rbp),
        });
        a.push(storeq(mem_bd(Gpr::Rax, 8), Gpr::Rdx)); // start
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rbp));
        a.push(cmpri(Gpr::Rbx, THREADS as i32 - 1));
        a.jcc(Cond::Ne, last);
        a.push(movrr(Gpr::Rdx, Gpr::R13)); // last thread takes the tail
        a.bind(last);
        a.push(storeq(mem_bd(Gpr::Rax, 16), Gpr::Rdx)); // end
                                                        // slots[t+4] = args; pthread_create(&slots[t], 0, worker, args)
        a.push(storeq(mem_bi(Gpr::R15, Gpr::Rbx, 8, 32), Gpr::Rax));
        a.push(movrr(Gpr::Rcx, Gpr::Rax));
        a.push(Inst::Lea {
            w: Width::W64,
            dst: Gpr::Rdi,
            addr: mem_bi(Gpr::R15, Gpr::Rbx, 8, 0),
        });
        a.push(movri(Gpr::Rsi, 0));
        a.push(lea_func(Gpr::Rdx, worker_addr));
        a.push(call(pthread_create));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(spawn_top);
        a.bind(spawn_done);
        // join all
        a.push(movri(Gpr::Rbx, 0));
        a.bind(join_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, join_done);
        a.push(loadq(Gpr::Rdi, mem_bi(Gpr::R15, Gpr::Rbx, 8, 0)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(call(pthread_join));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(join_top);
        a.bind(join_done);
        // merge + checksum
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(movrr(Gpr::Rsi, Gpr::R15));
        a.push(call(merge_addr));
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(call(sum_addr));
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx, Gpr::Rbp] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("main", a.finish(addr).unwrap());
    }

    b.finish()
}

/// Builds the native AArch64 baseline as clean LIR (what a compiler would
/// emit from the C source for Arm) — same fork–join structure, no fences.
pub fn native() -> lasagne_lir::Module {
    crate::native::build_native(crate::native::NativeSpec::Histogram)
}

/// Deterministic workload: `n` pseudo-random bytes; expected checksum
/// computed by a Rust reference implementation.
pub fn workload(n: usize) -> Workload {
    let data = crate::lcg_bytes(n, 0x9E37_79B9);
    let mut bins = [0u64; BINS as usize];
    for &byte in &data {
        bins[byte as usize] += 1;
    }
    let expected: u64 = bins.iter().enumerate().map(|(i, c)| i as u64 * c).sum();
    Workload {
        name: "histogram",
        mem_init: vec![(WORKLOAD_BASE, data)],
        args: vec![WORKLOAD_BASE, n as u64],
        expected_ret: expected,
    }
}
