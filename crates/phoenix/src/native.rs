//! Native AArch64 baselines, written as clean LIR — the code a compiler
//! would emit for the benchmarks' C sources when targeting Arm directly
//! (Figure 12's "Native" and Figure 16's size baseline): typed pointers,
//! SSA loops, no fences, same pthread fork–join structure.

use lasagne_lir::func::{ExternDecl, Function, Module};
use lasagne_lir::inst::{
    BinOp, Callee, CastOp, ExternId, FuncId, IPred, InstKind, Operand, Ordering, Terminator,
};
use lasagne_lir::types::{Pointee, Ty};
use lasagne_lir::BlockId;

/// Which benchmark's native module to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeSpec {
    /// Byte histogram.
    Histogram,
    /// Linear regression sums.
    LinearRegression,
    /// Dense integer matrix multiply.
    MatrixMultiply,
    /// Fixed-width string match.
    StringMatch,
    /// K-means clustering.
    Kmeans,
}

/// Small function-builder DSL over LIR.
pub struct Fb {
    /// The function being built.
    pub f: Function,
    /// Current insertion block.
    pub cur: BlockId,
}

impl Fb {
    /// Starts a function.
    pub fn new(name: &str, params: Vec<Ty>, ret: Ty) -> Fb {
        let f = Function::new(name, params, ret);
        let cur = f.entry();
        Fb { f, cur }
    }

    /// Emits an instruction.
    pub fn op(&mut self, ty: Ty, kind: InstKind) -> Operand {
        Operand::Inst(self.f.push(self.cur, ty, kind))
    }

    /// Integer binary op (i64 unless stated).
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        self.op(ty, InstKind::Bin { op, lhs, rhs })
    }

    /// i64 add.
    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Add, Ty::I64, a, b)
    }

    /// i64 mul.
    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Mul, Ty::I64, a, b)
    }

    /// Typed load.
    pub fn load(&mut self, ty: Ty, ptr: Operand) -> Operand {
        self.op(
            ty,
            InstKind::Load {
                ptr,
                order: Ordering::NotAtomic,
            },
        )
    }

    /// Typed store.
    pub fn store(&mut self, ptr: Operand, val: Operand) {
        self.op(
            Ty::Void,
            InstKind::Store {
                ptr,
                val,
                order: Ordering::NotAtomic,
            },
        );
    }

    /// `gep` with element size.
    pub fn gep(&mut self, ty: Ty, base: Operand, idx: Operand, elem: u64) -> Operand {
        self.op(
            ty,
            InstKind::Gep {
                base,
                offset: idx,
                elem_size: elem,
            },
        )
    }

    /// Pointer bitcast.
    pub fn cast_ptr(&mut self, to: Pointee, p: Operand) -> Operand {
        self.op(
            Ty::Ptr(to),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: p,
            },
        )
    }

    /// Integer compare.
    pub fn icmp(&mut self, pred: IPred, a: Operand, b: Operand) -> Operand {
        self.op(
            Ty::I1,
            InstKind::ICmp {
                pred,
                lhs: a,
                rhs: b,
            },
        )
    }

    /// Call.
    pub fn call(&mut self, ret: Ty, callee: Callee, args: Vec<Operand>) -> Operand {
        self.op(ret, InstKind::Call { callee, args })
    }

    /// A counted loop `for i in from..to` with loop-carried accumulators.
    /// `body` receives `(builder, i, accs)` and returns the next accs.
    /// Returns the final accumulator values.
    pub fn counted_loop(
        &mut self,
        from: Operand,
        to: Operand,
        acc_tys: &[Ty],
        init: &[Operand],
        body: impl FnOnce(&mut Fb, Operand, &[Operand]) -> Vec<Operand>,
    ) -> Vec<Operand> {
        let pre = self.cur;
        let header = self.f.add_block();
        let body_b = self.f.add_block();
        let exit = self.f.add_block();
        self.f.set_term(pre, Terminator::Br { dest: header });

        // φs: induction variable + accumulators.
        self.cur = header;
        let phi_i = self
            .f
            .push(header, Ty::I64, InstKind::Phi { incoming: vec![] });
        let mut phi_accs = Vec::new();
        for ty in acc_tys {
            phi_accs.push(self.f.push(header, *ty, InstKind::Phi { incoming: vec![] }));
        }
        let cond = self.icmp(IPred::Ult, Operand::Inst(phi_i), to);
        self.f.set_term(
            header,
            Terminator::CondBr {
                cond,
                if_true: body_b,
                if_false: exit,
            },
        );

        self.cur = body_b;
        let accs: Vec<Operand> = phi_accs.iter().map(|p| Operand::Inst(*p)).collect();
        let next = body(self, Operand::Inst(phi_i), &accs);
        assert_eq!(next.len(), acc_tys.len());
        let i_next = self.add(Operand::Inst(phi_i), Operand::i64(1));
        let body_end = self.cur; // body may have created inner blocks
        self.f.set_term(body_end, Terminator::Br { dest: header });

        self.f.inst_mut(phi_i).kind = InstKind::Phi {
            incoming: vec![(pre, from), (body_end, i_next)],
        };
        for (k, p) in phi_accs.iter().enumerate() {
            self.f.inst_mut(*p).kind = InstKind::Phi {
                incoming: vec![(pre, init[k]), (body_end, next[k])],
            };
        }

        self.cur = exit;
        // Values of accumulators *after* the loop are the φ values (they
        // hold the value from the last completed iteration check).
        phi_accs.into_iter().map(Operand::Inst).collect()
    }

    /// Finishes with `ret val`.
    pub fn ret(mut self, val: Option<Operand>) -> Function {
        let cur = self.cur;
        self.f.set_term(cur, Terminator::Ret { val });
        self.f
    }
}

/// Declares the pthread/libc externs every native module uses.
pub struct Rt {
    /// `malloc`.
    pub malloc: ExternId,
    /// `memset`.
    pub memset: ExternId,
    /// `pthread_create`.
    pub create: ExternId,
    /// `pthread_join`.
    pub join: ExternId,
}

/// Adds the standard externs to `m`.
pub fn runtime(m: &mut Module) -> Rt {
    let e = |m: &mut Module, name: &str, params: Vec<Ty>, ret: Ty| {
        m.declare_extern(ExternDecl {
            name: name.into(),
            params,
            ret,
            variadic: false,
        })
    };
    Rt {
        malloc: e(m, "malloc", vec![Ty::I64], Ty::Ptr(Pointee::I8)),
        memset: e(m, "memset", vec![Ty::I64, Ty::I64, Ty::I64], Ty::I64),
        create: e(
            m,
            "pthread_create",
            vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64],
            Ty::I32,
        ),
        join: e(m, "pthread_join", vec![Ty::I64, Ty::I64], Ty::I32),
    }
}

/// Emits the fork–join `main` skeleton shared by the native benchmarks:
/// allocates a slot area, spawns `threads` workers over `[0, n)` chunks
/// with an args record `[ctx0, start, end, t, ctx1, out]`, joins, then calls
/// `finish(builder, slots_ptr)` for the merge/checksum tail.
#[allow(clippy::too_many_arguments)]
pub fn fork_join_main(
    m: &mut Module,
    rt: &Rt,
    worker: FuncId,
    name: &str,
    params: Vec<Ty>,
    n_expr: impl FnOnce(&mut Fb) -> Operand,
    ctx: impl FnOnce(&mut Fb) -> (Operand, Operand),
    finish: impl FnOnce(&mut Fb, Operand) -> Operand,
    threads: u64,
) -> FuncId {
    let mut fb = Fb::new(name, params, Ty::I64);
    let n = n_expr(&mut fb);
    let (ctx0, ctx1) = ctx(&mut fb);
    // slots = malloc(threads*16): [t*8]=tid, [t*8 + threads*8]=args
    let slots = fb.call(
        Ty::Ptr(Pointee::I8),
        Callee::Extern(rt.malloc),
        vec![Operand::i64((threads * 16) as i64)],
    );
    let slots_i = fb.cast_ptr(Pointee::I64, slots);
    let chunk = fb.bin(BinOp::LShr, Ty::I64, n, Operand::i64(2));
    // spawn loop
    fb.counted_loop(
        Operand::i64(0),
        Operand::i64(threads as i64),
        &[],
        &[],
        |fb, t, _| {
            let args = fb.call(
                Ty::Ptr(Pointee::I8),
                Callee::Extern(rt.malloc),
                vec![Operand::i64(48)],
            );
            let args64 = fb.cast_ptr(Pointee::I64, args);
            fb.store(args64, ctx0);
            let start = fb.mul(t, chunk);
            let p1 = fb.gep(Ty::Ptr(Pointee::I64), args64, Operand::i64(1), 8);
            fb.store(p1, start);
            let end0 = fb.add(start, chunk);
            let is_last = fb.icmp(IPred::Eq, t, Operand::i64(threads as i64 - 1));
            let end = fb.op(
                Ty::I64,
                InstKind::Select {
                    cond: is_last,
                    if_true: n,
                    if_false: end0,
                },
            );
            let p2 = fb.gep(Ty::Ptr(Pointee::I64), args64, Operand::i64(2), 8);
            fb.store(p2, end);
            let p3 = fb.gep(Ty::Ptr(Pointee::I64), args64, Operand::i64(3), 8);
            fb.store(p3, t);
            let p4 = fb.gep(Ty::Ptr(Pointee::I64), args64, Operand::i64(4), 8);
            fb.store(p4, ctx1);
            // record args for the merge
            let aidx = fb.add(t, Operand::i64(threads as i64));
            let aslot = fb.gep(Ty::Ptr(Pointee::I64), slots_i, aidx, 8);
            let argsint = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: args,
                },
            );
            fb.store(aslot, argsint);
            // pthread_create(&slots[t], 0, worker, args)
            let tid_ptr = fb.gep(Ty::Ptr(Pointee::I64), slots_i, t, 8);
            let tid_int = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: tid_ptr,
                },
            );
            let wptr = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: Operand::Func(worker),
                },
            );
            fb.call(
                Ty::I32,
                Callee::Extern(rt.create),
                vec![tid_int, Operand::i64(0), wptr, argsint],
            );
            vec![]
        },
    );
    // join loop
    fb.counted_loop(
        Operand::i64(0),
        Operand::i64(threads as i64),
        &[],
        &[],
        |fb, t, _| {
            let tid_ptr = fb.gep(Ty::Ptr(Pointee::I64), slots_i, t, 8);
            let tid = fb.load(Ty::I64, tid_ptr);
            fb.call(Ty::I32, Callee::Extern(rt.join), vec![tid, Operand::i64(0)]);
            vec![]
        },
    );
    let result = finish(&mut fb, slots_i);
    let f = fb.ret(Some(result));
    m.add_func(f)
}

/// Builds the requested native module.
pub fn build_native(spec: NativeSpec) -> Module {
    match spec {
        NativeSpec::Histogram => native_histogram(),
        NativeSpec::LinearRegression => crate::linreg::native_impl(),
        NativeSpec::MatrixMultiply => crate::matmul::native_impl(),
        NativeSpec::StringMatch => crate::strmatch::native_impl(),
        NativeSpec::Kmeans => crate::kmeans::native_impl(),
    }
}

fn native_histogram() -> Module {
    let mut m = Module::new();
    let rt = runtime(&mut m);

    // worker(args i8*): local = malloc(2048); count; args[3] = local
    let worker = {
        let mut fb = Fb::new("hist_worker", vec![Ty::Ptr(Pointee::I8)], Ty::I64);
        let args = fb.cast_ptr(Pointee::I64, Operand::Param(0));
        let data_i = fb.load(Ty::I64, args);
        let data = fb.op(
            Ty::Ptr(Pointee::I8),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: data_i,
            },
        );
        let p1 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(1), 8);
        let start = fb.load(Ty::I64, p1);
        let p2 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(2), 8);
        let end = fb.load(Ty::I64, p2);
        let local = fb.call(
            Ty::Ptr(Pointee::I8),
            Callee::Extern(rt.malloc),
            vec![Operand::i64(2048)],
        );
        let local_int = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: local,
            },
        );
        fb.call(
            Ty::I64,
            Callee::Extern(rt.memset),
            vec![local_int, Operand::i64(0), Operand::i64(2048)],
        );
        let local64 = fb.cast_ptr(Pointee::I64, local);
        fb.counted_loop(start, end, &[], &[], |fb, i, _| {
            let bp = fb.gep(Ty::Ptr(Pointee::I8), data, i, 1);
            let byte = fb.load(Ty::I8, bp);
            let idx = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::ZExt,
                    val: byte,
                },
            );
            let cell = fb.gep(Ty::Ptr(Pointee::I64), local64, idx, 8);
            let old = fb.load(Ty::I64, cell);
            let new = fb.add(old, Operand::i64(1));
            fb.store(cell, new);
            vec![]
        });
        let p5 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(5), 8);
        fb.store(p5, local_int);
        let f = fb.ret(Some(Operand::i64(0)));
        m.add_func(f)
    };

    // main(data i64, n i64): fork-join, then merge + checksum.
    let threads = crate::histogram::THREADS;
    fork_join_main(
        &mut m,
        &rt,
        worker,
        "main",
        vec![Ty::I64, Ty::I64],
        |_| Operand::Param(1),
        |fb| {
            // ctx0 = data pointer; ctx1 = global bins
            let bins = fb.call(
                Ty::Ptr(Pointee::I8),
                Callee::Extern(rt.malloc),
                vec![Operand::i64(2048)],
            );
            let bins_int = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: bins,
                },
            );
            fb.call(
                Ty::I64,
                Callee::Extern(rt.memset),
                vec![bins_int, Operand::i64(0), Operand::i64(2048)],
            );
            (Operand::Param(0), bins_int)
        },
        move |fb, slots| {
            // bins pointer is in the first args record's ctx1 slot.
            let a0p = fb.gep(
                Ty::Ptr(Pointee::I64),
                slots,
                Operand::i64(threads as i64),
                8,
            );
            let a0 = fb.load(Ty::I64, a0p);
            let a0p64 = fb.op(
                Ty::Ptr(Pointee::I64),
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: a0,
                },
            );
            let bins_ip = fb.gep(Ty::Ptr(Pointee::I64), a0p64, Operand::i64(4), 8);
            let bins_i = fb.load(Ty::I64, bins_ip);
            let bins = fb.op(
                Ty::Ptr(Pointee::I64),
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: bins_i,
                },
            );
            // merge each worker's local bins
            fb.counted_loop(
                Operand::i64(0),
                Operand::i64(threads as i64),
                &[],
                &[],
                |fb, t, _| {
                    let ap = {
                        let x = fb.add(t, Operand::i64(threads as i64));
                        fb.gep(Ty::Ptr(Pointee::I64), slots, x, 8)
                    };
                    let a = fb.load(Ty::I64, ap);
                    let a64 = fb.op(
                        Ty::Ptr(Pointee::I64),
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: a,
                        },
                    );
                    let lp = fb.gep(Ty::Ptr(Pointee::I64), a64, Operand::i64(5), 8);
                    let l = fb.load(Ty::I64, lp);
                    let local = fb.op(
                        Ty::Ptr(Pointee::I64),
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: l,
                        },
                    );
                    fb.counted_loop(Operand::i64(0), Operand::i64(256), &[], &[], |fb, i, _| {
                        let src = fb.gep(Ty::Ptr(Pointee::I64), local, i, 8);
                        let v = fb.load(Ty::I64, src);
                        let dst = fb.gep(Ty::Ptr(Pointee::I64), bins, i, 8);
                        let old = fb.load(Ty::I64, dst);
                        let s = fb.add(old, v);
                        fb.store(dst, s);
                        vec![]
                    });
                    vec![]
                },
            );
            // checksum = Σ i * bins[i]
            let sums = fb.counted_loop(
                Operand::i64(0),
                Operand::i64(256),
                &[Ty::I64],
                &[Operand::i64(0)],
                |fb, i, accs| {
                    let p = fb.gep(Ty::Ptr(Pointee::I64), bins, i, 8);
                    let v = fb.load(Ty::I64, p);
                    let prod = fb.mul(v, i);
                    let s = fb.add(accs[0], prod);
                    vec![s]
                },
            );
            sums[0]
        },
        threads,
    );
    m
}
