//! Phoenix `matrix_multiply` (MM): dense `n×n` integer multiply,
//! row-partitioned across four pthreads. Three functions (Table 1):
//! `main`, `mm_worker`, `mm_dot`.

use crate::builders::*;
use crate::{Workload, WORKLOAD_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, Inst, Rm, ShiftOp};
use lasagne_x86::reg::{Cond, Gpr, Width};

/// Worker threads.
pub const THREADS: u64 = 4;

/// Builds the x86-64 binary.
pub fn binary() -> Binary {
    let mut b = BinaryBuilder::new();
    let malloc = b.declare_extern("malloc");
    let pthread_create = b.declare_extern("pthread_create");
    let pthread_join = b.declare_extern("pthread_join");

    // ---- mm_dot(rowA, B, j, n) -> Σ_k rowA[k] * B[k*n + j] ----
    let dot_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        // rdi=rowA rsi=B rdx=j rcx=n; r8=k r9=acc r10/r11 scratch
        a.push(movri(Gpr::R8, 0));
        a.push(movri(Gpr::R9, 0));
        a.bind(top);
        a.push(cmprr(Gpr::R8, Gpr::Rcx));
        a.jcc(Cond::E, done);
        a.push(loadq(Gpr::R10, mem_bi(Gpr::Rdi, Gpr::R8, 8, 0)));
        a.push(movrr(Gpr::R11, Gpr::R8));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R11,
            src: Rm::Reg(Gpr::Rcx),
        });
        a.push(alurr(AluOp::Add, Gpr::R11, Gpr::Rdx));
        a.push(loadq(Gpr::R11, mem_bi(Gpr::Rsi, Gpr::R11, 8, 0)));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R10,
            src: Rm::Reg(Gpr::R11),
        });
        a.push(alurr(AluOp::Add, Gpr::R9, Gpr::R10));
        a.push(alui(AluOp::Add, Gpr::R8, 1));
        a.jmp(top);
        a.bind(done);
        a.push(movrr(Gpr::Rax, Gpr::R9));
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("mm_dot", a.finish(addr).unwrap());
        addr
    };

    // ---- mm_worker(args) ----
    // args: [0]=A [8]=start [16]=end [24]=B [32]=C [40]=n
    let worker_addr = {
        let mut a = Asm::new();
        let i_top = a.label();
        let i_done = a.label();
        let j_top = a.label();
        let j_done = a.label();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15, Gpr::Rbp] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::Rbx, Gpr::Rdi)); // args
        a.push(loadq(Gpr::R12, mem_bd(Gpr::Rbx, 8))); // i = start
        a.bind(i_top);
        a.push(loadq(Gpr::Rax, mem_bd(Gpr::Rbx, 16))); // end
        a.push(cmprr(Gpr::R12, Gpr::Rax));
        a.jcc(Cond::E, i_done);
        a.push(movri(Gpr::R13, 0)); // j
        a.bind(j_top);
        a.push(loadq(Gpr::R14, mem_bd(Gpr::Rbx, 40))); // n
        a.push(cmprr(Gpr::R13, Gpr::R14));
        a.jcc(Cond::E, j_done);
        // rowA = A + i*n*8
        a.push(loadq(Gpr::Rdi, mem_b(Gpr::Rbx)));
        a.push(movrr(Gpr::R15, Gpr::R12));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R15,
            src: Rm::Reg(Gpr::R14),
        });
        a.push(movrr(Gpr::Rbp, Gpr::R15)); // save i*n for the C index
        a.push(shifti(ShiftOp::Shl, Gpr::R15, 3));
        a.push(alurr(AluOp::Add, Gpr::Rdi, Gpr::R15));
        a.push(loadq(Gpr::Rsi, mem_bd(Gpr::Rbx, 24))); // B
        a.push(movrr(Gpr::Rdx, Gpr::R13)); // j
        a.push(movrr(Gpr::Rcx, Gpr::R14)); // n
        a.push(call(dot_addr));
        // C[i*n + j] = rax
        a.push(alurr(AluOp::Add, Gpr::Rbp, Gpr::R13));
        a.push(loadq(Gpr::Rcx, mem_bd(Gpr::Rbx, 32))); // C
        a.push(storeq(mem_bi(Gpr::Rcx, Gpr::Rbp, 8, 0), Gpr::Rax));
        a.push(alui(AluOp::Add, Gpr::R13, 1));
        a.jmp(j_top);
        a.bind(j_done);
        a.push(alui(AluOp::Add, Gpr::R12, 1));
        a.jmp(i_top);
        a.bind(i_done);
        a.push(movri(Gpr::Rax, 0));
        for r in [Gpr::Rbp, Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("mm_worker", a.finish(addr).unwrap());
        addr
    };

    // ---- main(A, B, C, n) -> Σ C ----
    {
        let mut a = Asm::new();
        let spawn_top = a.label();
        let spawn_done = a.label();
        let last = a.label();
        let join_top = a.label();
        let join_done = a.label();
        let sum_top = a.label();
        let sum_done = a.label();
        for r in [Gpr::Rbp, Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::R12, Gpr::Rdi)); // A
        a.push(movrr(Gpr::R13, Gpr::Rsi)); // B
        a.push(movrr(Gpr::R14, Gpr::Rdx)); // C
        a.push(movrr(Gpr::Rbp, Gpr::Rcx)); // n
        a.push(movri(Gpr::Rdi, (THREADS * 16) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax)); // slots
        a.push(movri(Gpr::Rbx, 0));
        a.bind(spawn_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, spawn_done);
        a.push(movri(Gpr::Rdi, 48));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rax), Gpr::R12));
        // start = t * (n >> 2); end = start + chunk or n
        a.push(movrr(Gpr::Rcx, Gpr::Rbp));
        a.push(shifti(ShiftOp::Shr, Gpr::Rcx, 2));
        a.push(movrr(Gpr::Rdx, Gpr::Rbx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rcx),
        });
        a.push(storeq(mem_bd(Gpr::Rax, 8), Gpr::Rdx));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rcx));
        a.push(cmpri(Gpr::Rbx, THREADS as i32 - 1));
        a.jcc(Cond::Ne, last);
        a.push(movrr(Gpr::Rdx, Gpr::Rbp));
        a.bind(last);
        a.push(storeq(mem_bd(Gpr::Rax, 16), Gpr::Rdx));
        a.push(storeq(mem_bd(Gpr::Rax, 24), Gpr::R13));
        a.push(storeq(mem_bd(Gpr::Rax, 32), Gpr::R14));
        a.push(storeq(mem_bd(Gpr::Rax, 40), Gpr::Rbp));
        a.push(storeq(
            mem_bi(Gpr::R15, Gpr::Rbx, 8, (THREADS * 8) as i64),
            Gpr::Rax,
        ));
        a.push(movrr(Gpr::Rcx, Gpr::Rax));
        a.push(Inst::Lea {
            w: Width::W64,
            dst: Gpr::Rdi,
            addr: mem_bi(Gpr::R15, Gpr::Rbx, 8, 0),
        });
        a.push(movri(Gpr::Rsi, 0));
        a.push(lea_func(Gpr::Rdx, worker_addr));
        a.push(call(pthread_create));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(spawn_top);
        a.bind(spawn_done);
        a.push(movri(Gpr::Rbx, 0));
        a.bind(join_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, join_done);
        a.push(loadq(Gpr::Rdi, mem_bi(Gpr::R15, Gpr::Rbx, 8, 0)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(call(pthread_join));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(join_top);
        a.bind(join_done);
        // checksum = Σ_{i<n*n} C[i]
        a.push(movrr(Gpr::Rcx, Gpr::Rbp));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rcx,
            src: Rm::Reg(Gpr::Rbp),
        });
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rdx, 0));
        a.bind(sum_top);
        a.push(cmprr(Gpr::Rdx, Gpr::Rcx));
        a.jcc(Cond::E, sum_done);
        a.push(alurm(
            AluOp::Add,
            Gpr::Rax,
            mem_bi(Gpr::R14, Gpr::Rdx, 8, 0),
        ));
        a.push(alui(AluOp::Add, Gpr::Rdx, 1));
        a.jmp(sum_top);
        a.bind(sum_done);
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx, Gpr::Rbp] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("main", a.finish(addr).unwrap());
    }

    b.finish()
}

/// Native LIR baseline.
pub fn native() -> lasagne_lir::Module {
    native_impl()
}

pub(crate) fn native_impl() -> lasagne_lir::Module {
    use crate::native::{fork_join_main, runtime, Fb};
    use lasagne_lir::inst::{CastOp, InstKind, Operand};
    use lasagne_lir::types::{Pointee, Ty};

    let mut m = lasagne_lir::Module::new();
    let rt = runtime(&mut m);

    // worker(args): ctx0 = A, ctx1 = packed pointer to [B, C, n] record.
    let worker = {
        let mut fb = Fb::new("mm_worker", vec![Ty::Ptr(Pointee::I8)], Ty::I64);
        let args = fb.cast_ptr(Pointee::I64, Operand::Param(0));
        let a_i = fb.load(Ty::I64, args);
        let a_m = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: a_i,
            },
        );
        let p1 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(1), 8);
        let start = fb.load(Ty::I64, p1);
        let p2 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(2), 8);
        let end = fb.load(Ty::I64, p2);
        let p4 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(4), 8);
        let rec_i = fb.load(Ty::I64, p4);
        let rec = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: rec_i,
            },
        );
        let b_i = fb.load(Ty::I64, rec);
        let b_m = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: b_i,
            },
        );
        let rc = fb.gep(Ty::Ptr(Pointee::I64), rec, Operand::i64(1), 8);
        let c_i = fb.load(Ty::I64, rc);
        let c_m = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: c_i,
            },
        );
        let rn = fb.gep(Ty::Ptr(Pointee::I64), rec, Operand::i64(2), 8);
        let n = fb.load(Ty::I64, rn);
        fb.counted_loop(start, end, &[], &[], |fb, i, _| {
            let in_row = fb.mul(i, n);
            fb.counted_loop(Operand::i64(0), n, &[], &[], |fb, j, _| {
                let acc = fb.counted_loop(
                    Operand::i64(0),
                    n,
                    &[Ty::I64],
                    &[Operand::i64(0)],
                    |fb, k, accs| {
                        let ai = fb.add(in_row, k);
                        let ap = fb.gep(Ty::Ptr(Pointee::I64), a_m, ai, 8);
                        let av = fb.load(Ty::I64, ap);
                        let bi0 = fb.mul(k, n);
                        let bi = fb.add(bi0, j);
                        let bp = fb.gep(Ty::Ptr(Pointee::I64), b_m, bi, 8);
                        let bv = fb.load(Ty::I64, bp);
                        let prod = fb.mul(av, bv);
                        vec![fb.add(accs[0], prod)]
                    },
                );
                let ci = fb.add(in_row, j);
                let cp = fb.gep(Ty::Ptr(Pointee::I64), c_m, ci, 8);
                fb.store(cp, acc[0]);
                vec![]
            });
            vec![]
        });
        let f = fb.ret(Some(Operand::i64(0)));
        m.add_func(f)
    };

    fork_join_main(
        &mut m,
        &rt,
        worker,
        "main",
        vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64],
        |_| Operand::Param(3),
        |fb| {
            // Pack [B, C, n] into a record for ctx1.
            let rec = fb.call(
                Ty::Ptr(Pointee::I8),
                lasagne_lir::inst::Callee::Extern(rt.malloc),
                vec![Operand::i64(24)],
            );
            let rec64 = fb.cast_ptr(Pointee::I64, rec);
            fb.store(rec64, Operand::Param(1));
            let r1 = fb.gep(Ty::Ptr(Pointee::I64), rec64, Operand::i64(1), 8);
            fb.store(r1, Operand::Param(2));
            let r2 = fb.gep(Ty::Ptr(Pointee::I64), rec64, Operand::i64(2), 8);
            fb.store(r2, Operand::Param(3));
            let rec_i = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: rec,
                },
            );
            (Operand::Param(0), rec_i)
        },
        |fb, _slots| {
            // checksum = Σ C[i] for i < n*n
            let c = fb.op(
                Ty::Ptr(Pointee::I64),
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: Operand::Param(2),
                },
            );
            let nn = fb.mul(Operand::Param(3), Operand::Param(3));
            let total = fb.counted_loop(
                Operand::i64(0),
                nn,
                &[Ty::I64],
                &[Operand::i64(0)],
                |fb, i, accs| {
                    let p = fb.gep(Ty::Ptr(Pointee::I64), c, i, 8);
                    let v = fb.load(Ty::I64, p);
                    vec![fb.add(accs[0], v)]
                },
            );
            total[0]
        },
        THREADS,
    );
    m
}

/// Deterministic `n×n` matrices A, B (small values) and a zeroed C.
pub fn workload(n: usize) -> Workload {
    let raw = crate::lcg_u64(2 * n * n, 99);
    let a_vals: Vec<i64> = raw[..n * n].iter().map(|v| (v % 10) as i64).collect();
    let b_vals: Vec<i64> = raw[n * n..].iter().map(|v| (v % 10) as i64).collect();
    let mut c_ref = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0i64;
            for k in 0..n {
                s += a_vals[i * n + k] * b_vals[k * n + j];
            }
            c_ref[i * n + j] = s;
        }
    }
    let expected: i64 = c_ref.iter().sum();
    let mut bytes = Vec::with_capacity(16 * n * n);
    for v in a_vals.iter().chain(b_vals.iter()) {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let a_addr = WORKLOAD_BASE;
    let b_addr = WORKLOAD_BASE + (8 * n * n) as u64;
    let c_addr = WORKLOAD_BASE + (16 * n * n) as u64;
    Workload {
        name: "matrix_multiply",
        mem_init: vec![(a_addr, bytes)],
        args: vec![a_addr, b_addr, c_addr, n as u64],
        expected_ret: expected as u64,
    }
}
