//! Phoenix `kmeans` (KM): Lloyd's algorithm over 2-D double-precision
//! points, k = 4 clusters, 3 iterations, the assignment phase partitioned
//! across four pthreads with per-thread partial sums. Seven functions
//! (Table 1): `main`, `km_worker`, `km_nearest`, `km_dist2`, `km_merge`,
//! `km_update`, `km_checksum`.

use crate::builders::*;
use crate::{Workload, WORKLOAD_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, Rm, ShiftOp, SseOp, XmmRm};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};

/// Worker threads.
pub const THREADS: u64 = 4;
/// Clusters.
pub const K: u64 = 4;
/// Lloyd iterations.
pub const ITERS: u64 = 3;

fn movsd_load(dst: Xmm, mem: MemRef) -> Inst {
    Inst::MovssLoad {
        prec: FpPrec::Double,
        dst,
        src: XmmRm::Mem(mem),
    }
}

fn movsd_store(mem: MemRef, src: Xmm) -> Inst {
    Inst::MovssStore {
        prec: FpPrec::Double,
        dst: mem,
        src,
    }
}

fn sse(op: SseOp, dst: Xmm, src: Xmm) -> Inst {
    Inst::SseScalar {
        op,
        prec: FpPrec::Double,
        dst,
        src: XmmRm::Reg(src),
    }
}

/// Builds the x86-64 binary.
pub fn binary() -> Binary {
    let mut b = BinaryBuilder::new();
    let malloc = b.declare_extern("malloc");
    let memset = b.declare_extern("memset");
    let pthread_create = b.declare_extern("pthread_create");
    let pthread_join = b.declare_extern("pthread_join");

    // ---- km_dist2(p, c) -> xmm0 = (px-cx)² + (py-cy)² ----
    let dist2_addr = {
        let mut a = Asm::new();
        a.push(movsd_load(Xmm(0), mem_b(Gpr::Rdi)));
        a.push(Inst::SseScalar {
            op: SseOp::Sub,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Mem(mem_b(Gpr::Rsi)),
        });
        a.push(sse(SseOp::Mul, Xmm(0), Xmm(0)));
        a.push(movsd_load(Xmm(1), mem_bd(Gpr::Rdi, 8)));
        a.push(Inst::SseScalar {
            op: SseOp::Sub,
            prec: FpPrec::Double,
            dst: Xmm(1),
            src: XmmRm::Mem(mem_bd(Gpr::Rsi, 8)),
        });
        a.push(sse(SseOp::Mul, Xmm(1), Xmm(1)));
        a.push(sse(SseOp::Add, Xmm(0), Xmm(1)));
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("km_dist2", a.finish(addr).unwrap());
        addr
    };

    // ---- km_nearest(p, cents, k) -> index of nearest centroid ----
    let nearest_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let skip = a.label();
        let done = a.label();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(alui(AluOp::Sub, Gpr::Rsp, 16));
        a.push(movrr(Gpr::Rbx, Gpr::Rdi)); // p
        a.push(movrr(Gpr::R12, Gpr::Rsi)); // cents
        a.push(movrr(Gpr::R13, Gpr::Rdx)); // k
        a.push(movri(Gpr::R14, 0)); // best idx
                                    // best = dist2(p, cents)
        a.push(call(dist2_addr));
        a.push(movsd_store(mem_b(Gpr::Rsp), Xmm(0)));
        a.push(movri(Gpr::R15, 1)); // j
        a.bind(top);
        a.push(cmprr(Gpr::R15, Gpr::R13));
        a.jcc(Cond::Ae, done);
        a.push(movrr(Gpr::Rdi, Gpr::Rbx));
        a.push(movrr(Gpr::Rsi, Gpr::R15));
        a.push(shifti(ShiftOp::Shl, Gpr::Rsi, 4));
        a.push(alurr(AluOp::Add, Gpr::Rsi, Gpr::R12));
        a.push(call(dist2_addr));
        // if best > d: best = d, idx = j
        a.push(movsd_load(Xmm(1), mem_b(Gpr::Rsp)));
        a.push(Inst::Ucomis {
            prec: FpPrec::Double,
            a: Xmm(1),
            b: XmmRm::Reg(Xmm(0)),
        });
        a.jcc(Cond::Be, skip);
        a.push(movsd_store(mem_b(Gpr::Rsp), Xmm(0)));
        a.push(movrr(Gpr::R14, Gpr::R15));
        a.bind(skip);
        a.push(alui(AluOp::Add, Gpr::R15, 1));
        a.jmp(top);
        a.bind(done);
        a.push(movrr(Gpr::Rax, Gpr::R14));
        a.push(alui(AluOp::Add, Gpr::Rsp, 16));
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("km_nearest", a.finish(addr).unwrap());
        addr
    };

    // ---- km_worker(args) ----
    // args: [0]=points [8]=start [16]=end [24]=cents [32]=assign
    //       [40]=out sums [48]=out counts
    let worker_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15, Gpr::Rbp] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::Rbx, Gpr::Rdi)); // args
                                           // sums = malloc(K*16), zeroed; counts = malloc(K*8), zeroed
        a.push(movri(Gpr::Rdi, (K * 16) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R14, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, (K * 16) as i64));
        a.push(call(memset));
        a.push(movri(Gpr::Rdi, (K * 8) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::R15));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, (K * 8) as i64));
        a.push(call(memset));
        a.push(loadq(Gpr::Rbp, mem_b(Gpr::Rbx))); // points
        a.push(loadq(Gpr::R12, mem_bd(Gpr::Rbx, 8))); // i = start
        a.bind(top);
        a.push(loadq(Gpr::Rax, mem_bd(Gpr::Rbx, 16))); // end
        a.push(cmprr(Gpr::R12, Gpr::Rax));
        a.jcc(Cond::E, done);
        // idx = km_nearest(points + i*16, cents, K)
        a.push(movrr(Gpr::Rdi, Gpr::R12));
        a.push(shifti(ShiftOp::Shl, Gpr::Rdi, 4));
        a.push(alurr(AluOp::Add, Gpr::Rdi, Gpr::Rbp));
        a.push(loadq(Gpr::Rsi, mem_bd(Gpr::Rbx, 24)));
        a.push(movri(Gpr::Rdx, K as i64));
        a.push(call(nearest_addr));
        // assign[i] = idx
        a.push(loadq(Gpr::Rcx, mem_bd(Gpr::Rbx, 32)));
        a.push(storeq(mem_bi(Gpr::Rcx, Gpr::R12, 8, 0), Gpr::Rax));
        // sums[idx] += point
        a.push(movrr(Gpr::Rdx, Gpr::Rax));
        a.push(shifti(ShiftOp::Shl, Gpr::Rdx, 4));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::R14));
        a.push(movrr(Gpr::Rcx, Gpr::R12));
        a.push(shifti(ShiftOp::Shl, Gpr::Rcx, 4));
        a.push(alurr(AluOp::Add, Gpr::Rcx, Gpr::Rbp));
        a.push(movsd_load(Xmm(0), mem_b(Gpr::Rdx)));
        a.push(Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Mem(mem_b(Gpr::Rcx)),
        });
        a.push(movsd_store(mem_b(Gpr::Rdx), Xmm(0)));
        a.push(movsd_load(Xmm(0), mem_bd(Gpr::Rdx, 8)));
        a.push(Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Mem(mem_bd(Gpr::Rcx, 8)),
        });
        a.push(movsd_store(mem_bd(Gpr::Rdx, 8), Xmm(0)));
        // counts[idx] += 1
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::R15, Gpr::Rax, 8, 0)),
            imm: 1,
        });
        a.push(alui(AluOp::Add, Gpr::R12, 1));
        a.jmp(top);
        a.bind(done);
        a.push(storeq(mem_bd(Gpr::Rbx, 40), Gpr::R14));
        a.push(storeq(mem_bd(Gpr::Rbx, 48), Gpr::R15));
        a.push(movri(Gpr::Rax, 0));
        for r in [Gpr::Rbp, Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("km_worker", a.finish(addr).unwrap());
        addr
    };

    // ---- km_merge(gsums, gcounts, slots) ----
    let merge_addr = {
        let mut a = Asm::new();
        let t_top = a.label();
        let t_done = a.label();
        let j_top = a.label();
        let j_done = a.label();
        // rdi=gsums rsi=gcounts rdx=slots
        a.push(movri(Gpr::R8, 0)); // t
        a.bind(t_top);
        a.push(cmpri(Gpr::R8, THREADS as i32));
        a.jcc(Cond::E, t_done);
        a.push(loadq(
            Gpr::R9,
            mem_bi(Gpr::Rdx, Gpr::R8, 8, (THREADS * 8) as i64),
        )); // args
        a.push(loadq(Gpr::R10, mem_bd(Gpr::R9, 40))); // sums_t
        a.push(loadq(Gpr::R9, mem_bd(Gpr::R9, 48))); // counts_t
        a.push(movri(Gpr::R11, 0)); // j
        a.bind(j_top);
        a.push(cmpri(Gpr::R11, K as i32));
        a.jcc(Cond::E, j_done);
        // gsums[2j] += sums_t[2j]; gsums[2j+1] += sums_t[2j+1]
        a.push(movrr(Gpr::Rcx, Gpr::R11));
        a.push(shifti(ShiftOp::Shl, Gpr::Rcx, 4));
        a.push(movrr(Gpr::Rax, Gpr::Rcx));
        a.push(alurr(AluOp::Add, Gpr::Rcx, Gpr::Rdi)); // &gsums[2j]
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::R10)); // &sums_t[2j]
        a.push(movsd_load(Xmm(0), mem_b(Gpr::Rcx)));
        a.push(Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Mem(mem_b(Gpr::Rax)),
        });
        a.push(movsd_store(mem_b(Gpr::Rcx), Xmm(0)));
        a.push(movsd_load(Xmm(0), mem_bd(Gpr::Rcx, 8)));
        a.push(Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Mem(mem_bd(Gpr::Rax, 8)),
        });
        a.push(movsd_store(mem_bd(Gpr::Rcx, 8), Xmm(0)));
        // gcounts[j] += counts_t[j]
        a.push(loadq(Gpr::Rax, mem_bi(Gpr::R9, Gpr::R11, 8, 0)));
        a.push(Inst::AluRmR {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::Rsi, Gpr::R11, 8, 0)),
            src: Gpr::Rax,
        });
        a.push(alui(AluOp::Add, Gpr::R11, 1));
        a.jmp(j_top);
        a.bind(j_done);
        a.push(alui(AluOp::Add, Gpr::R8, 1));
        a.jmp(t_top);
        a.bind(t_done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("km_merge", a.finish(addr).unwrap());
        addr
    };

    // ---- km_update(cents, gsums, gcounts) ----
    let update_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let skip = a.label();
        let done = a.label();
        // rdi=cents rsi=gsums rdx=gcounts; rcx=j
        a.push(movri(Gpr::Rcx, 0));
        a.bind(top);
        a.push(cmpri(Gpr::Rcx, K as i32));
        a.jcc(Cond::E, done);
        a.push(loadq(Gpr::Rax, mem_bi(Gpr::Rdx, Gpr::Rcx, 8, 0))); // count
        a.push(Inst::TestI {
            w: Width::W64,
            a: Rm::Reg(Gpr::Rax),
            imm: -1,
        });
        a.jcc(Cond::E, skip);
        a.push(Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(2),
            src: Rm::Reg(Gpr::Rax),
        });
        a.push(movrr(Gpr::R8, Gpr::Rcx));
        a.push(shifti(ShiftOp::Shl, Gpr::R8, 4));
        a.push(movrr(Gpr::R9, Gpr::R8));
        a.push(alurr(AluOp::Add, Gpr::R8, Gpr::Rsi)); // &gsums[2j]
        a.push(alurr(AluOp::Add, Gpr::R9, Gpr::Rdi)); // &cents[2j]
        a.push(movsd_load(Xmm(0), mem_b(Gpr::R8)));
        a.push(sse(SseOp::Div, Xmm(0), Xmm(2)));
        a.push(movsd_store(mem_b(Gpr::R9), Xmm(0)));
        a.push(movsd_load(Xmm(0), mem_bd(Gpr::R8, 8)));
        a.push(sse(SseOp::Div, Xmm(0), Xmm(2)));
        a.push(movsd_store(mem_bd(Gpr::R9, 8), Xmm(0)));
        a.bind(skip);
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(top);
        a.bind(done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("km_update", a.finish(addr).unwrap());
        addr
    };

    // ---- km_checksum(assign, n, cents) -> i64 ----
    let checksum_addr = {
        let mut a = Asm::new();
        let a_top = a.label();
        let a_done = a.label();
        let c_top = a.label();
        let c_done = a.label();
        // rdi=assign rsi=n rdx=cents
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(a_top);
        a.push(cmprr(Gpr::Rcx, Gpr::Rsi));
        a.jcc(Cond::E, a_done);
        // acc += assign[i] * ((i & 15) + 1)
        a.push(loadq(Gpr::R8, mem_bi(Gpr::Rdi, Gpr::Rcx, 8, 0)));
        a.push(movrr(Gpr::R9, Gpr::Rcx));
        a.push(alui(AluOp::And, Gpr::R9, 15));
        a.push(alui(AluOp::Add, Gpr::R9, 1));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R8,
            src: Rm::Reg(Gpr::R9),
        });
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::R8));
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(a_top);
        a.bind(a_done);
        // acc += Σ trunc(cent_coord * 100) over 2K doubles
        a.push(movri(Gpr::Rcx, 0));
        a.push(movri(Gpr::R9, 100.0f64.to_bits() as i64));
        a.push(Inst::MovGprToXmm {
            w: Width::W64,
            dst: Xmm(1),
            src: Gpr::R9,
        });
        a.bind(c_top);
        a.push(cmpri(Gpr::Rcx, (2 * K) as i32));
        a.jcc(Cond::E, c_done);
        a.push(movsd_load(Xmm(0), mem_bi(Gpr::Rdx, Gpr::Rcx, 8, 0)));
        a.push(sse(SseOp::Mul, Xmm(0), Xmm(1)));
        a.push(Inst::CvtF2Si {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Gpr::R8,
            src: XmmRm::Reg(Xmm(0)),
        });
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::R8));
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(c_top);
        a.bind(c_done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("km_checksum", a.finish(addr).unwrap());
        addr
    };

    // ---- main(points, n) ----
    {
        let mut a = Asm::new();
        let init_top = a.label();
        let init_done = a.label();
        let iter_top = a.label();
        let iter_done = a.label();
        let spawn_top = a.label();
        let spawn_done = a.label();
        let last = a.label();
        let join_top = a.label();
        let join_done = a.label();
        for r in [Gpr::Rbp, Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(alui(AluOp::Sub, Gpr::Rsp, 32));
        a.push(movrr(Gpr::R12, Gpr::Rdi)); // points
        a.push(movrr(Gpr::R13, Gpr::Rsi)); // n
                                           // cents = malloc(K*16); copy first K points
        a.push(movri(Gpr::Rdi, (K * 16) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R14, Gpr::Rax));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(init_top);
        a.push(cmpri(Gpr::Rcx, (2 * K) as i32));
        a.jcc(Cond::E, init_done);
        a.push(loadq(Gpr::Rdx, mem_bi(Gpr::R12, Gpr::Rcx, 8, 0)));
        a.push(storeq(mem_bi(Gpr::R14, Gpr::Rcx, 8, 0), Gpr::Rdx));
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(init_top);
        a.bind(init_done);
        // assign = malloc(n*8); slots = malloc(THREADS*16);
        // gsums = malloc(K*16) -> [rsp]; gcounts = malloc(K*8) -> [rsp+8]
        a.push(movrr(Gpr::Rdi, Gpr::R13));
        a.push(shifti(ShiftOp::Shl, Gpr::Rdi, 3));
        a.push(call(malloc));
        a.push(movrr(Gpr::Rbp, Gpr::Rax)); // assign
        a.push(movri(Gpr::Rdi, (THREADS * 16) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax)); // slots
        a.push(movri(Gpr::Rdi, (K * 16) as i64));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rsp), Gpr::Rax));
        a.push(movri(Gpr::Rdi, (K * 8) as i64));
        a.push(call(malloc));
        a.push(storeq(mem_bd(Gpr::Rsp, 8), Gpr::Rax));
        // iteration counter at [rsp+16]
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Mem(mem_bd(Gpr::Rsp, 16)),
            imm: 0,
        });
        a.bind(iter_top);
        a.push(loadq(Gpr::Rax, mem_bd(Gpr::Rsp, 16)));
        a.push(cmpri(Gpr::Rax, ITERS as i32));
        a.jcc(Cond::E, iter_done);
        // zero gsums / gcounts
        a.push(loadq(Gpr::Rdi, mem_b(Gpr::Rsp)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, (K * 16) as i64));
        a.push(call(memset));
        a.push(loadq(Gpr::Rdi, mem_bd(Gpr::Rsp, 8)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, (K * 8) as i64));
        a.push(call(memset));
        // spawn
        a.push(movri(Gpr::Rbx, 0));
        a.bind(spawn_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, spawn_done);
        a.push(movri(Gpr::Rdi, 56));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rax), Gpr::R12));
        a.push(movrr(Gpr::Rcx, Gpr::R13));
        a.push(shifti(ShiftOp::Shr, Gpr::Rcx, 2)); // chunk
        a.push(movrr(Gpr::Rdx, Gpr::Rbx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rcx),
        });
        a.push(storeq(mem_bd(Gpr::Rax, 8), Gpr::Rdx));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rcx));
        a.push(cmpri(Gpr::Rbx, THREADS as i32 - 1));
        a.jcc(Cond::Ne, last);
        a.push(movrr(Gpr::Rdx, Gpr::R13));
        a.bind(last);
        a.push(storeq(mem_bd(Gpr::Rax, 16), Gpr::Rdx));
        a.push(storeq(mem_bd(Gpr::Rax, 24), Gpr::R14)); // cents
        a.push(storeq(mem_bd(Gpr::Rax, 32), Gpr::Rbp)); // assign
        a.push(storeq(
            mem_bi(Gpr::R15, Gpr::Rbx, 8, (THREADS * 8) as i64),
            Gpr::Rax,
        ));
        a.push(movrr(Gpr::Rcx, Gpr::Rax));
        a.push(Inst::Lea {
            w: Width::W64,
            dst: Gpr::Rdi,
            addr: mem_bi(Gpr::R15, Gpr::Rbx, 8, 0),
        });
        a.push(movri(Gpr::Rsi, 0));
        a.push(lea_func(Gpr::Rdx, worker_addr));
        a.push(call(pthread_create));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(spawn_top);
        a.bind(spawn_done);
        // join
        a.push(movri(Gpr::Rbx, 0));
        a.bind(join_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, join_done);
        a.push(loadq(Gpr::Rdi, mem_bi(Gpr::R15, Gpr::Rbx, 8, 0)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(call(pthread_join));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(join_top);
        a.bind(join_done);
        // merge + update
        a.push(loadq(Gpr::Rdi, mem_b(Gpr::Rsp)));
        a.push(loadq(Gpr::Rsi, mem_bd(Gpr::Rsp, 8)));
        a.push(movrr(Gpr::Rdx, Gpr::R15));
        a.push(call(merge_addr));
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(loadq(Gpr::Rsi, mem_b(Gpr::Rsp)));
        a.push(loadq(Gpr::Rdx, mem_bd(Gpr::Rsp, 8)));
        a.push(call(update_addr));
        // ++iter
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bd(Gpr::Rsp, 16)),
            imm: 1,
        });
        a.jmp(iter_top);
        a.bind(iter_done);
        a.push(movrr(Gpr::Rdi, Gpr::Rbp));
        a.push(movrr(Gpr::Rsi, Gpr::R13));
        a.push(movrr(Gpr::Rdx, Gpr::R14));
        a.push(call(checksum_addr));
        a.push(alui(AluOp::Add, Gpr::Rsp, 32));
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx, Gpr::Rbp] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("main", a.finish(addr).unwrap());
    }

    b.finish()
}

/// Native LIR baseline.
pub fn native() -> lasagne_lir::Module {
    native_impl()
}

pub(crate) fn native_impl() -> lasagne_lir::Module {
    use crate::native::{runtime, Fb};
    use lasagne_lir::inst::{BinOp, Callee, CastOp, FPred, IPred, InstKind, Operand, Terminator};
    use lasagne_lir::types::{Pointee, Ty};

    let mut m = lasagne_lir::Module::new();
    let rt = runtime(&mut m);

    // worker(args): same record as the x86 one; inline nearest.
    let worker = {
        let mut fb = Fb::new("km_worker", vec![Ty::Ptr(Pointee::I8)], Ty::I64);
        let args = fb.cast_ptr(Pointee::I64, Operand::Param(0));
        let ld = |fb: &mut Fb, args: Operand, i: i64| {
            let p = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(i), 8);
            fb.load(Ty::I64, p)
        };
        let pts_i = ld(&mut fb, args, 0);
        let pts = fb.op(
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: pts_i,
            },
        );
        let start = ld(&mut fb, args, 1);
        let end = ld(&mut fb, args, 2);
        let cents_i = ld(&mut fb, args, 3);
        let cents = fb.op(
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: cents_i,
            },
        );
        let assign_i = ld(&mut fb, args, 4);
        let assign = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: assign_i,
            },
        );
        // sums/counts
        let sums = fb.call(
            Ty::Ptr(Pointee::I8),
            Callee::Extern(rt.malloc),
            vec![Operand::i64((K * 16) as i64)],
        );
        let sums_int = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: sums,
            },
        );
        fb.call(
            Ty::I64,
            Callee::Extern(rt.memset),
            vec![sums_int, Operand::i64(0), Operand::i64((K * 16) as i64)],
        );
        let sums_f = fb.cast_ptr(Pointee::F64, sums);
        let counts = fb.call(
            Ty::Ptr(Pointee::I8),
            Callee::Extern(rt.malloc),
            vec![Operand::i64((K * 8) as i64)],
        );
        let counts_int = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: counts,
            },
        );
        fb.call(
            Ty::I64,
            Callee::Extern(rt.memset),
            vec![counts_int, Operand::i64(0), Operand::i64((K * 8) as i64)],
        );
        let counts64 = fb.cast_ptr(Pointee::I64, counts);
        fb.counted_loop(start, end, &[], &[], |fb, i, _| {
            let pxi = fb.bin(BinOp::Shl, Ty::I64, i, Operand::i64(1));
            let pxp = fb.gep(Ty::Ptr(Pointee::F64), pts, pxi, 8);
            let px = fb.load(Ty::F64, pxp);
            let pyi = fb.add(pxi, Operand::i64(1));
            let pyp = fb.gep(Ty::Ptr(Pointee::F64), pts, pyi, 8);
            let py = fb.load(Ty::F64, pyp);
            // inline nearest over K centroids
            let init_best = Operand::f64(f64::INFINITY);
            let res = fb.counted_loop(
                Operand::i64(0),
                Operand::i64(K as i64),
                &[Ty::F64, Ty::I64],
                &[init_best, Operand::i64(0)],
                |fb, j, accs| {
                    let cxi = fb.bin(BinOp::Shl, Ty::I64, j, Operand::i64(1));
                    let cxp = fb.gep(Ty::Ptr(Pointee::F64), cents, cxi, 8);
                    let cx = fb.load(Ty::F64, cxp);
                    let cyi = fb.add(cxi, Operand::i64(1));
                    let cyp = fb.gep(Ty::Ptr(Pointee::F64), cents, cyi, 8);
                    let cy = fb.load(Ty::F64, cyp);
                    let dx = fb.bin(BinOp::FSub, Ty::F64, px, cx);
                    let dx2 = fb.bin(BinOp::FMul, Ty::F64, dx, dx);
                    let dy = fb.bin(BinOp::FSub, Ty::F64, py, cy);
                    let dy2 = fb.bin(BinOp::FMul, Ty::F64, dy, dy);
                    let d = fb.bin(BinOp::FAdd, Ty::F64, dx2, dy2);
                    let lt = fb.op(
                        Ty::I1,
                        InstKind::FCmp {
                            pred: FPred::Olt,
                            lhs: d,
                            rhs: accs[0],
                        },
                    );
                    let nbest = fb.op(
                        Ty::F64,
                        InstKind::Select {
                            cond: lt,
                            if_true: d,
                            if_false: accs[0],
                        },
                    );
                    let nidx = fb.op(
                        Ty::I64,
                        InstKind::Select {
                            cond: lt,
                            if_true: j,
                            if_false: accs[1],
                        },
                    );
                    vec![nbest, nidx]
                },
            );
            let idx = res[1];
            let ap = fb.gep(Ty::Ptr(Pointee::I64), assign, i, 8);
            fb.store(ap, idx);
            // sums[idx*2] += px; sums[idx*2+1] += py
            let sxi = fb.bin(BinOp::Shl, Ty::I64, idx, Operand::i64(1));
            let sxp = fb.gep(Ty::Ptr(Pointee::F64), sums_f, sxi, 8);
            let sx = fb.load(Ty::F64, sxp);
            let nsx = fb.bin(BinOp::FAdd, Ty::F64, sx, px);
            fb.store(sxp, nsx);
            let syi = fb.add(sxi, Operand::i64(1));
            let syp = fb.gep(Ty::Ptr(Pointee::F64), sums_f, syi, 8);
            let sy = fb.load(Ty::F64, syp);
            let nsy = fb.bin(BinOp::FAdd, Ty::F64, sy, py);
            fb.store(syp, nsy);
            let cp = fb.gep(Ty::Ptr(Pointee::I64), counts64, idx, 8);
            let c = fb.load(Ty::I64, cp);
            let nc = fb.add(c, Operand::i64(1));
            fb.store(cp, nc);
            vec![]
        });
        let p5 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(5), 8);
        fb.store(p5, sums_int);
        let p6 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(6), 8);
        fb.store(p6, counts_int);
        let f = fb.ret(Some(Operand::i64(0)));
        m.add_func(f)
    };

    // main(points, n): hand-rolled (the generic skeleton doesn't fit the
    // iterate-spawn-merge-update loop).
    {
        let mut fb = Fb::new("main", vec![Ty::I64, Ty::I64], Ty::I64);
        let pts = fb.op(
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Param(0),
            },
        );
        let n = Operand::Param(1);
        let alloc = |fb: &mut Fb, size: Operand| {
            fb.call(Ty::Ptr(Pointee::I8), Callee::Extern(rt.malloc), vec![size])
        };
        let cents8 = alloc(&mut fb, Operand::i64((K * 16) as i64));
        let cents = fb.cast_ptr(Pointee::F64, cents8);
        fb.counted_loop(
            Operand::i64(0),
            Operand::i64((2 * K) as i64),
            &[],
            &[],
            |fb, i, _| {
                let sp = fb.gep(Ty::Ptr(Pointee::F64), pts, i, 8);
                let v = fb.load(Ty::F64, sp);
                let dp = fb.gep(Ty::Ptr(Pointee::F64), cents, i, 8);
                fb.store(dp, v);
                vec![]
            },
        );
        let assign_bytes = fb.bin(BinOp::Shl, Ty::I64, n, Operand::i64(3));
        let assign8 = alloc(&mut fb, assign_bytes);
        let assign = fb.cast_ptr(Pointee::I64, assign8);
        let slots8 = alloc(&mut fb, Operand::i64((THREADS * 16) as i64));
        let slots = fb.cast_ptr(Pointee::I64, slots8);
        let gsums8 = alloc(&mut fb, Operand::i64((K * 16) as i64));
        let gsums = fb.cast_ptr(Pointee::F64, gsums8);
        let gsums_i = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: gsums8,
            },
        );
        let gcounts8 = alloc(&mut fb, Operand::i64((K * 8) as i64));
        let gcounts = fb.cast_ptr(Pointee::I64, gcounts8);
        let gcounts_i = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: gcounts8,
            },
        );
        let cents_i = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: cents8,
            },
        );
        let assign_i = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: assign8,
            },
        );
        let chunk = fb.bin(BinOp::LShr, Ty::I64, n, Operand::i64(2));

        fb.counted_loop(
            Operand::i64(0),
            Operand::i64(ITERS as i64),
            &[],
            &[],
            |fb, _iter, _| {
                fb.call(
                    Ty::I64,
                    Callee::Extern(rt.memset),
                    vec![gsums_i, Operand::i64(0), Operand::i64((K * 16) as i64)],
                );
                fb.call(
                    Ty::I64,
                    Callee::Extern(rt.memset),
                    vec![gcounts_i, Operand::i64(0), Operand::i64((K * 8) as i64)],
                );
                // spawn
                fb.counted_loop(
                    Operand::i64(0),
                    Operand::i64(THREADS as i64),
                    &[],
                    &[],
                    |fb, t, _| {
                        let args8 = fb.call(
                            Ty::Ptr(Pointee::I8),
                            Callee::Extern(rt.malloc),
                            vec![Operand::i64(56)],
                        );
                        let args = fb.cast_ptr(Pointee::I64, args8);
                        let st = |fb: &mut Fb, args: Operand, i: i64, v: Operand| {
                            let p = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(i), 8);
                            fb.store(p, v);
                        };
                        st(fb, args, 0, Operand::Param(0));
                        let start = fb.mul(t, chunk);
                        st(fb, args, 1, start);
                        let end0 = fb.add(start, chunk);
                        let is_last = fb.icmp(IPred::Eq, t, Operand::i64(THREADS as i64 - 1));
                        let end = fb.op(
                            Ty::I64,
                            InstKind::Select {
                                cond: is_last,
                                if_true: n,
                                if_false: end0,
                            },
                        );
                        st(fb, args, 2, end);
                        st(fb, args, 3, cents_i);
                        st(fb, args, 4, assign_i);
                        let args_i = fb.op(
                            Ty::I64,
                            InstKind::Cast {
                                op: CastOp::PtrToInt,
                                val: args8,
                            },
                        );
                        let aslot = {
                            let x = fb.add(t, Operand::i64(THREADS as i64));
                            fb.gep(Ty::Ptr(Pointee::I64), slots, x, 8)
                        };
                        fb.store(aslot, args_i);
                        let tid_p = fb.gep(Ty::Ptr(Pointee::I64), slots, t, 8);
                        let tid_i = fb.op(
                            Ty::I64,
                            InstKind::Cast {
                                op: CastOp::PtrToInt,
                                val: tid_p,
                            },
                        );
                        let wp = fb.op(
                            Ty::I64,
                            InstKind::Cast {
                                op: CastOp::PtrToInt,
                                val: Operand::Func(worker),
                            },
                        );
                        fb.call(
                            Ty::I32,
                            Callee::Extern(rt.create),
                            vec![tid_i, Operand::i64(0), wp, args_i],
                        );
                        vec![]
                    },
                );
                // join
                fb.counted_loop(
                    Operand::i64(0),
                    Operand::i64(THREADS as i64),
                    &[],
                    &[],
                    |fb, t, _| {
                        let tid_p = fb.gep(Ty::Ptr(Pointee::I64), slots, t, 8);
                        let tid = fb.load(Ty::I64, tid_p);
                        fb.call(Ty::I32, Callee::Extern(rt.join), vec![tid, Operand::i64(0)]);
                        vec![]
                    },
                );
                // merge
                fb.counted_loop(
                    Operand::i64(0),
                    Operand::i64(THREADS as i64),
                    &[],
                    &[],
                    |fb, t, _| {
                        let ap = {
                            let x = fb.add(t, Operand::i64(THREADS as i64));
                            fb.gep(Ty::Ptr(Pointee::I64), slots, x, 8)
                        };
                        let a_i = fb.load(Ty::I64, ap);
                        let a = fb.op(
                            Ty::Ptr(Pointee::I64),
                            InstKind::Cast {
                                op: CastOp::IntToPtr,
                                val: a_i,
                            },
                        );
                        let sp = fb.gep(Ty::Ptr(Pointee::I64), a, Operand::i64(5), 8);
                        let s_i = fb.load(Ty::I64, sp);
                        let s = fb.op(
                            Ty::Ptr(Pointee::F64),
                            InstKind::Cast {
                                op: CastOp::IntToPtr,
                                val: s_i,
                            },
                        );
                        let cp = fb.gep(Ty::Ptr(Pointee::I64), a, Operand::i64(6), 8);
                        let c_i = fb.load(Ty::I64, cp);
                        let c = fb.op(
                            Ty::Ptr(Pointee::I64),
                            InstKind::Cast {
                                op: CastOp::IntToPtr,
                                val: c_i,
                            },
                        );
                        fb.counted_loop(
                            Operand::i64(0),
                            Operand::i64((2 * K) as i64),
                            &[],
                            &[],
                            |fb, j, _| {
                                let srcp = fb.gep(Ty::Ptr(Pointee::F64), s, j, 8);
                                let v = fb.load(Ty::F64, srcp);
                                let dstp = fb.gep(Ty::Ptr(Pointee::F64), gsums, j, 8);
                                let old = fb.load(Ty::F64, dstp);
                                let nv = fb.bin(BinOp::FAdd, Ty::F64, old, v);
                                fb.store(dstp, nv);
                                vec![]
                            },
                        );
                        fb.counted_loop(
                            Operand::i64(0),
                            Operand::i64(K as i64),
                            &[],
                            &[],
                            |fb, j, _| {
                                let srcp = fb.gep(Ty::Ptr(Pointee::I64), c, j, 8);
                                let v = fb.load(Ty::I64, srcp);
                                let dstp = fb.gep(Ty::Ptr(Pointee::I64), gcounts, j, 8);
                                let old = fb.load(Ty::I64, dstp);
                                let nv = fb.add(old, v);
                                fb.store(dstp, nv);
                                vec![]
                            },
                        );
                        vec![]
                    },
                );
                // update centroids
                fb.counted_loop(
                    Operand::i64(0),
                    Operand::i64(K as i64),
                    &[],
                    &[],
                    |fb, j, _| {
                        let cp = fb.gep(Ty::Ptr(Pointee::I64), gcounts, j, 8);
                        let cnt = fb.load(Ty::I64, cp);
                        let nz = fb.icmp(IPred::Ne, cnt, Operand::i64(0));
                        // branchless: divisor = nz ? cnt : 1; blend = nz ? mean : old
                        let safe_cnt = fb.op(
                            Ty::I64,
                            InstKind::Select {
                                cond: nz,
                                if_true: cnt,
                                if_false: Operand::i64(1),
                            },
                        );
                        let fcnt = fb.op(
                            Ty::F64,
                            InstKind::Cast {
                                op: CastOp::SiToFp,
                                val: safe_cnt,
                            },
                        );
                        let xi = fb.bin(BinOp::Shl, Ty::I64, j, Operand::i64(1));
                        for d in 0..2 {
                            let idx = fb.add(xi, Operand::i64(d));
                            let sp = fb.gep(Ty::Ptr(Pointee::F64), gsums, idx, 8);
                            let sv = fb.load(Ty::F64, sp);
                            let mean = fb.bin(BinOp::FDiv, Ty::F64, sv, fcnt);
                            let dp = fb.gep(Ty::Ptr(Pointee::F64), cents, idx, 8);
                            let old = fb.load(Ty::F64, dp);
                            let nv = fb.op(
                                Ty::F64,
                                InstKind::Select {
                                    cond: nz,
                                    if_true: mean,
                                    if_false: old,
                                },
                            );
                            fb.store(dp, nv);
                        }
                        vec![]
                    },
                );
                vec![]
            },
        );
        // checksum
        let part1 = fb.counted_loop(
            Operand::i64(0),
            n,
            &[Ty::I64],
            &[Operand::i64(0)],
            |fb, i, accs| {
                let ap = fb.gep(Ty::Ptr(Pointee::I64), assign, i, 8);
                let v = fb.load(Ty::I64, ap);
                let w = fb.bin(BinOp::And, Ty::I64, i, Operand::i64(15));
                let w1 = fb.add(w, Operand::i64(1));
                let prod = fb.mul(v, w1);
                vec![fb.add(accs[0], prod)]
            },
        );
        let part2 = fb.counted_loop(
            Operand::i64(0),
            Operand::i64((2 * K) as i64),
            &[Ty::I64],
            &[part1[0]],
            |fb, i, accs| {
                let cp = fb.gep(Ty::Ptr(Pointee::F64), cents, i, 8);
                let v = fb.load(Ty::F64, cp);
                let scaled = fb.bin(BinOp::FMul, Ty::F64, v, Operand::f64(100.0));
                let t = fb.op(
                    Ty::I64,
                    InstKind::Cast {
                        op: CastOp::FpToSi,
                        val: scaled,
                    },
                );
                vec![fb.add(accs[0], t)]
            },
        );
        let f = {
            let mut fb = fb;
            let cur = fb.cur;
            fb.f.set_term(
                cur,
                Terminator::Ret {
                    val: Some(part2[0]),
                },
            );
            fb.f
        };
        m.add_func(f);
    }
    m
}

/// Rust reference mirroring the binary's exact FP evaluation order.
fn reference(points: &[(f64, f64)], n: usize) -> u64 {
    let k = K as usize;
    let threads = THREADS as usize;
    let mut cents: Vec<(f64, f64)> = points[..k].to_vec();
    let mut assign = vec![0i64; n];
    for _ in 0..ITERS {
        let mut partial_sums = vec![[(0.0f64, 0.0f64); 4]; threads]; // [t][j]
        let mut partial_counts = vec![[0i64; 4]; threads];
        let chunk = n >> 2;
        for t in 0..threads {
            let start = t * chunk;
            let end = if t == threads - 1 { n } else { start + chunk };
            for i in start..end {
                let (px, py) = points[i];
                let mut best = {
                    let (cx, cy) = cents[0];
                    (px - cx) * (px - cx) + (py - cy) * (py - cy)
                };
                let mut idx = 0usize;
                for (j, &(cx, cy)) in cents.iter().enumerate().skip(1) {
                    let d = (px - cx) * (px - cx) + (py - cy) * (py - cy);
                    if best > d {
                        best = d;
                        idx = j;
                    }
                }
                assign[i] = idx as i64;
                partial_sums[t][idx].0 += px;
                partial_sums[t][idx].1 += py;
                partial_counts[t][idx] += 1;
            }
        }
        let mut gsums = [(0.0f64, 0.0f64); 4];
        let mut gcounts = [0i64; 4];
        for t in 0..threads {
            for j in 0..k {
                gsums[j].0 += partial_sums[t][j].0;
                gsums[j].1 += partial_sums[t][j].1;
                gcounts[j] += partial_counts[t][j];
            }
        }
        for j in 0..k {
            if gcounts[j] != 0 {
                let c = gcounts[j] as f64;
                cents[j] = (gsums[j].0 / c, gsums[j].1 / c);
            }
        }
    }
    let mut acc = 0i64;
    for (i, a) in assign.iter().enumerate() {
        acc += a * ((i as i64 & 15) + 1);
    }
    for &(x, y) in &cents {
        acc += (x * 100.0) as i64;
        acc += (y * 100.0) as i64;
    }
    acc as u64
}

/// Deterministic workload: `n` clustered 2-D points.
pub fn workload(n: usize) -> Workload {
    let n = n.max(16);
    let raw = crate::lcg_u64(2 * n, 0x5EED);
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        // Four loose clusters around (0,0), (50,0), (0,50), (50,50).
        let cx = f64::from(((i % 4) % 2) as u32) * 50.0;
        let cy = f64::from(((i % 4) / 2) as u32) * 50.0;
        let jx = (raw[2 * i] % 2000) as f64 / 100.0 - 10.0;
        let jy = (raw[2 * i + 1] % 2000) as f64 / 100.0 - 10.0;
        points.push((cx + jx, cy + jy));
    }
    let expected = reference(&points, n);
    let mut bytes = Vec::with_capacity(16 * n);
    for &(x, y) in &points {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        bytes.extend_from_slice(&y.to_bits().to_le_bytes());
    }
    Workload {
        name: "kmeans",
        mem_init: vec![(WORKLOAD_BASE, bytes)],
        args: vec![WORKLOAD_BASE, n as u64],
        expected_ret: expected,
    }
}
