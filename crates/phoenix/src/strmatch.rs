//! Phoenix `string_match` (SM): scan a table of fixed-width (16-byte) keys
//! for occurrences of four target keys. Five functions (Table 1): `main`,
//! `sm_worker`, `sm_process` (slice scan), `sm_compare16`, `sm_compare8`.

use crate::builders::*;
use crate::{Workload, WORKLOAD_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, Inst, Rm, ShiftOp};
use lasagne_x86::reg::{Cond, Gpr, Width};

/// Worker threads.
pub const THREADS: u64 = 4;
/// Bytes per key.
pub const KEY_BYTES: u64 = 16;
/// Number of target keys.
pub const TARGETS: u64 = 4;

/// Builds the x86-64 binary.
pub fn binary() -> Binary {
    let mut b = BinaryBuilder::new();
    let malloc = b.declare_extern("malloc");
    let pthread_create = b.declare_extern("pthread_create");
    let pthread_join = b.declare_extern("pthread_join");

    // ---- sm_compare8(p, q) -> 1 if the 8-byte words match ----
    let cmp8_addr = {
        let mut a = Asm::new();
        let ne = a.label();
        a.push(loadq(Gpr::Rax, mem_b(Gpr::Rdi)));
        a.push(movri(Gpr::Rcx, 0));
        a.push(Inst::AluRRm {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(mem_b(Gpr::Rsi)),
        });
        a.jcc(Cond::Ne, ne);
        a.push(movri(Gpr::Rcx, 1));
        a.bind(ne);
        a.push(movrr(Gpr::Rax, Gpr::Rcx));
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("sm_compare8", a.finish(addr).unwrap());
        addr
    };

    // ---- sm_compare16(p, q) -> 1 if 16 bytes match ----
    let cmp16_addr = {
        let mut a = Asm::new();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::Rbx, Gpr::Rdi));
        a.push(movrr(Gpr::R12, Gpr::Rsi));
        a.push(call(cmp8_addr));
        a.push(movrr(Gpr::R13, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::Rbx));
        a.push(alui(AluOp::Add, Gpr::Rdi, 8));
        a.push(movrr(Gpr::Rsi, Gpr::R12));
        a.push(alui(AluOp::Add, Gpr::Rsi, 8));
        a.push(call(cmp8_addr));
        a.push(alurr(AluOp::And, Gpr::Rax, Gpr::R13));
        for r in [Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("sm_compare16", a.finish(addr).unwrap());
        addr
    };

    // ---- sm_process(data, start, end, targets) -> match count ----
    let process_addr = {
        let mut a = Asm::new();
        let i_top = a.label();
        let i_done = a.label();
        let t_top = a.label();
        let t_done = a.label();
        let no_match = a.label();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15, Gpr::Rbp] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::Rbx, Gpr::Rdi)); // data
        a.push(movrr(Gpr::R12, Gpr::Rsi)); // i = start
        a.push(movrr(Gpr::R13, Gpr::Rdx)); // end
        a.push(movrr(Gpr::R14, Gpr::Rcx)); // targets
        a.push(movri(Gpr::R15, 0)); // count
        a.bind(i_top);
        a.push(cmprr(Gpr::R12, Gpr::R13));
        a.jcc(Cond::E, i_done);
        a.push(movri(Gpr::Rbp, 0)); // t
        a.bind(t_top);
        a.push(cmpri(Gpr::Rbp, TARGETS as i32));
        a.jcc(Cond::E, t_done);
        // compare16(data + i*16, targets + t*16)
        a.push(movrr(Gpr::Rdi, Gpr::R12));
        a.push(shifti(ShiftOp::Shl, Gpr::Rdi, 4));
        a.push(alurr(AluOp::Add, Gpr::Rdi, Gpr::Rbx));
        a.push(movrr(Gpr::Rsi, Gpr::Rbp));
        a.push(shifti(ShiftOp::Shl, Gpr::Rsi, 4));
        a.push(alurr(AluOp::Add, Gpr::Rsi, Gpr::R14));
        a.push(call(cmp16_addr));
        a.push(Inst::TestI {
            w: Width::W64,
            a: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.jcc(Cond::E, no_match);
        a.push(alui(AluOp::Add, Gpr::R15, 1));
        a.bind(no_match);
        a.push(alui(AluOp::Add, Gpr::Rbp, 1));
        a.jmp(t_top);
        a.bind(t_done);
        a.push(alui(AluOp::Add, Gpr::R12, 1));
        a.jmp(i_top);
        a.bind(i_done);
        a.push(movrr(Gpr::Rax, Gpr::R15));
        for r in [Gpr::Rbp, Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("sm_process", a.finish(addr).unwrap());
        addr
    };

    // ---- sm_worker(args) ----
    // args: [0]=data [8]=start [16]=end [24]=targets [32]=out count
    let worker_addr = {
        let mut a = Asm::new();
        a.push(Inst::Push { src: Gpr::Rbx });
        a.push(movrr(Gpr::Rbx, Gpr::Rdi));
        a.push(loadq(Gpr::Rdi, mem_b(Gpr::Rbx)));
        a.push(loadq(Gpr::Rsi, mem_bd(Gpr::Rbx, 8)));
        a.push(loadq(Gpr::Rdx, mem_bd(Gpr::Rbx, 16)));
        a.push(loadq(Gpr::Rcx, mem_bd(Gpr::Rbx, 24)));
        a.push(call(process_addr));
        a.push(storeq(mem_bd(Gpr::Rbx, 32), Gpr::Rax));
        a.push(movri(Gpr::Rax, 0));
        a.push(Inst::Pop { dst: Gpr::Rbx });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("sm_worker", a.finish(addr).unwrap());
        addr
    };

    // ---- main(data, n, targets) -> total matches ----
    {
        let mut a = Asm::new();
        let spawn_top = a.label();
        let spawn_done = a.label();
        let last = a.label();
        let join_top = a.label();
        let join_done = a.label();
        let merge_top = a.label();
        let merge_done = a.label();
        for r in [Gpr::Rbp, Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::R12, Gpr::Rdi)); // data
        a.push(movrr(Gpr::R13, Gpr::Rsi)); // n
        a.push(movrr(Gpr::R14, Gpr::Rdx)); // targets
        a.push(movri(Gpr::Rdi, (THREADS * 16) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax));
        a.push(movrr(Gpr::Rbp, Gpr::R13));
        a.push(shifti(ShiftOp::Shr, Gpr::Rbp, 2));
        a.push(movri(Gpr::Rbx, 0));
        a.bind(spawn_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, spawn_done);
        a.push(movri(Gpr::Rdi, 40));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rax), Gpr::R12));
        a.push(movrr(Gpr::Rdx, Gpr::Rbx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rbp),
        });
        a.push(storeq(mem_bd(Gpr::Rax, 8), Gpr::Rdx));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rbp));
        a.push(cmpri(Gpr::Rbx, THREADS as i32 - 1));
        a.jcc(Cond::Ne, last);
        a.push(movrr(Gpr::Rdx, Gpr::R13));
        a.bind(last);
        a.push(storeq(mem_bd(Gpr::Rax, 16), Gpr::Rdx));
        a.push(storeq(mem_bd(Gpr::Rax, 24), Gpr::R14));
        a.push(storeq(
            mem_bi(Gpr::R15, Gpr::Rbx, 8, (THREADS * 8) as i64),
            Gpr::Rax,
        ));
        a.push(movrr(Gpr::Rcx, Gpr::Rax));
        a.push(Inst::Lea {
            w: Width::W64,
            dst: Gpr::Rdi,
            addr: mem_bi(Gpr::R15, Gpr::Rbx, 8, 0),
        });
        a.push(movri(Gpr::Rsi, 0));
        a.push(lea_func(Gpr::Rdx, worker_addr));
        a.push(call(pthread_create));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(spawn_top);
        a.bind(spawn_done);
        a.push(movri(Gpr::Rbx, 0));
        a.bind(join_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, join_done);
        a.push(loadq(Gpr::Rdi, mem_bi(Gpr::R15, Gpr::Rbx, 8, 0)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(call(pthread_join));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(join_top);
        a.bind(join_done);
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rbx, 0));
        a.bind(merge_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, merge_done);
        a.push(loadq(
            Gpr::Rdx,
            mem_bi(Gpr::R15, Gpr::Rbx, 8, (THREADS * 8) as i64),
        ));
        a.push(alurm(AluOp::Add, Gpr::Rax, mem_bd(Gpr::Rdx, 32)));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(merge_top);
        a.bind(merge_done);
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx, Gpr::Rbp] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("main", a.finish(addr).unwrap());
    }

    b.finish()
}

/// Native LIR baseline.
pub fn native() -> lasagne_lir::Module {
    native_impl()
}

pub(crate) fn native_impl() -> lasagne_lir::Module {
    use crate::native::{fork_join_main, runtime, Fb};
    use lasagne_lir::inst::{BinOp, CastOp, IPred, InstKind, Operand};
    use lasagne_lir::types::{Pointee, Ty};

    let mut m = lasagne_lir::Module::new();
    let rt = runtime(&mut m);

    let worker = {
        let mut fb = Fb::new("sm_worker", vec![Ty::Ptr(Pointee::I8)], Ty::I64);
        let args = fb.cast_ptr(Pointee::I64, Operand::Param(0));
        let data_i = fb.load(Ty::I64, args);
        let data = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: data_i,
            },
        );
        let p1 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(1), 8);
        let start = fb.load(Ty::I64, p1);
        let p2 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(2), 8);
        let end = fb.load(Ty::I64, p2);
        let p4 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(4), 8);
        let tg_i = fb.load(Ty::I64, p4);
        let tg = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: tg_i,
            },
        );
        let count = fb.counted_loop(start, end, &[Ty::I64], &[Operand::i64(0)], |fb, i, accs| {
            let base = fb.bin(BinOp::Shl, Ty::I64, i, Operand::i64(1));
            let k0p = fb.gep(Ty::Ptr(Pointee::I64), data, base, 8);
            let k0 = fb.load(Ty::I64, k0p);
            let base1 = fb.add(base, Operand::i64(1));
            let k1p = fb.gep(Ty::Ptr(Pointee::I64), data, base1, 8);
            let k1 = fb.load(Ty::I64, k1p);
            let inner = fb.counted_loop(
                Operand::i64(0),
                Operand::i64(TARGETS as i64),
                &[Ty::I64],
                &[Operand::i64(0)],
                |fb, t, taccs| {
                    let tb = fb.bin(BinOp::Shl, Ty::I64, t, Operand::i64(1));
                    let t0p = fb.gep(Ty::Ptr(Pointee::I64), tg, tb, 8);
                    let t0 = fb.load(Ty::I64, t0p);
                    let tb1 = fb.add(tb, Operand::i64(1));
                    let t1p = fb.gep(Ty::Ptr(Pointee::I64), tg, tb1, 8);
                    let t1 = fb.load(Ty::I64, t1p);
                    let e0 = fb.icmp(IPred::Eq, k0, t0);
                    let e1 = fb.icmp(IPred::Eq, k1, t1);
                    let both = fb.bin(BinOp::And, Ty::I1, e0, e1);
                    let inc = fb.op(
                        Ty::I64,
                        InstKind::Cast {
                            op: CastOp::ZExt,
                            val: both,
                        },
                    );
                    vec![fb.add(taccs[0], inc)]
                },
            );
            vec![fb.add(accs[0], inner[0])]
        });
        // Write the count through the out slot (args[5]).
        let p5 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(5), 8);
        fb.store(p5, count[0]);
        let f = fb.ret(Some(Operand::i64(0)));
        m.add_func(f)
    };

    let threads = THREADS;
    fork_join_main(
        &mut m,
        &rt,
        worker,
        "main",
        vec![Ty::I64, Ty::I64, Ty::I64],
        |_| Operand::Param(1),
        |_fb| (Operand::Param(0), Operand::Param(2)),
        move |fb, slots| {
            let total = fb.counted_loop(
                Operand::i64(0),
                Operand::i64(threads as i64),
                &[Ty::I64],
                &[Operand::i64(0)],
                |fb, t, accs| {
                    let ap = {
                        let x = fb.add(t, Operand::i64(threads as i64));
                        fb.gep(Ty::Ptr(Pointee::I64), slots, x, 8)
                    };
                    let a = fb.load(Ty::I64, ap);
                    let a64 = fb.op(
                        Ty::Ptr(Pointee::I64),
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: a,
                        },
                    );
                    let cp = fb.gep(Ty::Ptr(Pointee::I64), a64, Operand::i64(5), 8);
                    let c = fb.load(Ty::I64, cp);
                    vec![fb.add(accs[0], c)]
                },
            );
            total[0]
        },
        threads,
    );
    m
}

/// Deterministic workload: `n` 16-byte keys; the four targets are copies of
/// keys that occur in the table, so matches exist.
pub fn workload(n: usize) -> Workload {
    let n = n.max(8);
    let raw = crate::lcg_u64(2 * n, 0xABCD);
    let mut keys = Vec::with_capacity(2 * n);
    for i in 0..n {
        // Low-entropy keys so duplicates occur.
        keys.push(raw[2 * i] % 32);
        keys.push(raw[2 * i + 1] % 4);
    }
    // Targets: four existing keys.
    let targets: Vec<u64> = vec![
        keys[0],
        keys[1],
        keys[2 * (n / 3)],
        keys[2 * (n / 3) + 1],
        keys[2 * (n / 2)],
        keys[2 * (n / 2) + 1],
        keys[2 * (2 * n / 3)],
        keys[2 * (2 * n / 3) + 1],
    ];
    // Reference count.
    let mut expected = 0u64;
    for i in 0..n {
        for t in 0..TARGETS as usize {
            if keys[2 * i] == targets[2 * t] && keys[2 * i + 1] == targets[2 * t + 1] {
                expected += 1;
            }
        }
    }
    let mut bytes = Vec::with_capacity(16 * n + 64);
    for k in &keys {
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    let t_addr = WORKLOAD_BASE + (16 * n) as u64;
    let mut tbytes = Vec::new();
    for t in &targets {
        tbytes.extend_from_slice(&t.to_le_bytes());
    }
    Workload {
        name: "string_match",
        mem_init: vec![(WORKLOAD_BASE, bytes), (t_addr, tbytes)],
        args: vec![WORKLOAD_BASE, n as u64, t_addr],
        expected_ret: expected,
    }
}
