//! Phoenix `pca` (PCA): mean and covariance of a `DIM × n` matrix, the
//! columns split across four pthreads. To stay exact in integer
//! arithmetic the covariance is accumulated in the scale-free form
//! `cov(i,j) = n·Σ aᵢaⱼ − (Σ aᵢ)(Σ aⱼ)` (no division by `n`), with
//! wrapping u64 semantics shared by the Rust reference.
//!
//! Functions (4, matching Table 1): `main`, `pca_worker`, `pca_sum`
//! (row-slice sum — the mean phase), `pca_dot` (row-pair dot product —
//! the covariance phase).

use crate::builders::*;
use crate::{Workload, WORKLOAD_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, Inst, Rm, ShiftOp};
use lasagne_x86::reg::{Cond, Gpr, Width};

/// Worker threads.
pub const THREADS: u64 = 4;
/// Matrix rows (observed variables).
pub const DIM: u64 = 4;
/// Per-worker output: `DIM` row sums then `DIM×DIM` dot products.
pub const OUT_WORDS: u64 = DIM + DIM * DIM;

/// Builds the x86-64 binary.
pub fn binary() -> Binary {
    let mut b = BinaryBuilder::new();
    let malloc = b.declare_extern("malloc");
    let memset = b.declare_extern("memset");
    let pthread_create = b.declare_extern("pthread_create");
    let pthread_join = b.declare_extern("pthread_join");

    // ---- pca_sum(p, len) -> Σ p[k] ----
    let sum_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(top);
        a.push(cmprr(Gpr::Rcx, Gpr::Rsi));
        a.jcc(Cond::E, done);
        a.push(alurm(
            AluOp::Add,
            Gpr::Rax,
            mem_bi(Gpr::Rdi, Gpr::Rcx, 8, 0),
        ));
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(top);
        a.bind(done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("pca_sum", a.finish(addr).unwrap());
        addr
    };

    // ---- pca_dot(p, q, len) -> Σ p[k]*q[k] ----
    let dot_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(top);
        a.push(cmprr(Gpr::Rcx, Gpr::Rdx));
        a.jcc(Cond::E, done);
        a.push(loadq(Gpr::R8, mem_bi(Gpr::Rdi, Gpr::Rcx, 8, 0)));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R8,
            src: Rm::Mem(mem_bi(Gpr::Rsi, Gpr::Rcx, 8, 0)),
        });
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::R8));
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(top);
        a.bind(done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("pca_dot", a.finish(addr).unwrap());
        addr
    };

    // ---- pca_worker(args) ----
    // args: [0]=mat [8]=start col [16]=end col [24]=n cols [32]=out
    // out[i]            = Σ_k row_i[k]           (k over the chunk)
    // out[DIM + i*DIM+j] = Σ_k row_i[k]*row_j[k]
    let worker_addr = {
        let mut a = Asm::new();
        let s_top = a.label();
        let s_done = a.label();
        let i_top = a.label();
        let i_done = a.label();
        let j_top = a.label();
        let j_done = a.label();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::Rbx, Gpr::Rdi)); // args
        a.push(movri(Gpr::Rdi, (8 * OUT_WORDS) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R12, Gpr::Rax)); // out

        // Row-slice pointer for row r13/r14: mat + (row*n + start)*8.
        // (The sequence is re-emitted per use because each call clobbers
        // the caller-saved registers it lives in.)
        let row_ptr = |a: &mut Asm, row: Gpr, dst: Gpr| {
            a.push(movrr(dst, row));
            a.push(Inst::IMul2 {
                w: Width::W64,
                dst,
                src: Rm::Mem(mem_bd(Gpr::Rbx, 24)),
            });
            a.push(alurm(AluOp::Add, dst, mem_bd(Gpr::Rbx, 8)));
            a.push(shifti(ShiftOp::Shl, dst, 3));
            a.push(alurm(AluOp::Add, dst, mem_b(Gpr::Rbx)));
        };
        let chunk_len = |a: &mut Asm, dst: Gpr| {
            a.push(loadq(dst, mem_bd(Gpr::Rbx, 16)));
            a.push(alurm(AluOp::Sub, dst, mem_bd(Gpr::Rbx, 8)));
        };

        // Mean phase: out[i] = pca_sum(row_i + start, len)
        a.push(movri(Gpr::R13, 0));
        a.bind(s_top);
        a.push(cmpri(Gpr::R13, DIM as i32));
        a.jcc(Cond::E, s_done);
        row_ptr(&mut a, Gpr::R13, Gpr::Rdi);
        chunk_len(&mut a, Gpr::Rsi);
        a.push(call(sum_addr));
        a.push(storeq(mem_bi(Gpr::R12, Gpr::R13, 8, 0), Gpr::Rax));
        a.push(alui(AluOp::Add, Gpr::R13, 1));
        a.jmp(s_top);
        a.bind(s_done);

        // Covariance phase: out[DIM + i*DIM + j] = pca_dot(row_i, row_j, len)
        a.push(movri(Gpr::R13, 0));
        a.bind(i_top);
        a.push(cmpri(Gpr::R13, DIM as i32));
        a.jcc(Cond::E, i_done);
        a.push(movri(Gpr::R14, 0));
        a.bind(j_top);
        a.push(cmpri(Gpr::R14, DIM as i32));
        a.jcc(Cond::E, j_done);
        row_ptr(&mut a, Gpr::R13, Gpr::Rdi);
        row_ptr(&mut a, Gpr::R14, Gpr::Rsi);
        chunk_len(&mut a, Gpr::Rdx);
        a.push(call(dot_addr));
        a.push(movrr(Gpr::R15, Gpr::R13));
        a.push(shifti(ShiftOp::Shl, Gpr::R15, 2));
        a.push(alurr(AluOp::Add, Gpr::R15, Gpr::R14));
        a.push(storeq(
            mem_bi(Gpr::R12, Gpr::R15, 8, (8 * DIM) as i64),
            Gpr::Rax,
        ));
        a.push(alui(AluOp::Add, Gpr::R14, 1));
        a.jmp(j_top);
        a.bind(j_done);
        a.push(alui(AluOp::Add, Gpr::R13, 1));
        a.jmp(i_top);
        a.bind(i_done);

        a.push(storeq(mem_bd(Gpr::Rbx, 32), Gpr::R12));
        a.push(movri(Gpr::Rax, 0));
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("pca_worker", a.finish(addr).unwrap());
        addr
    };

    // ---- main(mat, n) -> checksum ----
    {
        let mut a = Asm::new();
        let spawn_top = a.label();
        let spawn_done = a.label();
        let last = a.label();
        let join_top = a.label();
        let join_done = a.label();
        let m_t_top = a.label();
        let m_t_done = a.label();
        let m_k_top = a.label();
        let m_k_done = a.label();
        let c_i_top = a.label();
        let c_i_done = a.label();
        let c_j_top = a.label();
        let c_j_done = a.label();
        for r in [Gpr::Rbp, Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::R12, Gpr::Rdi)); // mat
        a.push(movrr(Gpr::R13, Gpr::Rsi)); // n
                                           // global partial area (DIM sums + DIM² products), zeroed
        a.push(movri(Gpr::Rdi, (8 * OUT_WORDS) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R14, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, (8 * OUT_WORDS) as i64));
        a.push(call(memset));
        // slots = malloc(64)
        a.push(movri(Gpr::Rdi, 64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax));
        // chunk = n >> 2 (in columns)
        a.push(movrr(Gpr::Rbp, Gpr::R13));
        a.push(shifti(ShiftOp::Shr, Gpr::Rbp, 2));
        a.push(movri(Gpr::Rbx, 0));
        a.bind(spawn_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, spawn_done);
        a.push(movri(Gpr::Rdi, 48));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rax), Gpr::R12));
        a.push(movrr(Gpr::Rdx, Gpr::Rbx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rbp),
        });
        a.push(storeq(mem_bd(Gpr::Rax, 8), Gpr::Rdx));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rbp));
        a.push(cmpri(Gpr::Rbx, THREADS as i32 - 1));
        a.jcc(Cond::Ne, last);
        a.push(movrr(Gpr::Rdx, Gpr::R13));
        a.bind(last);
        a.push(storeq(mem_bd(Gpr::Rax, 16), Gpr::Rdx));
        a.push(storeq(mem_bd(Gpr::Rax, 24), Gpr::R13)); // n
        a.push(storeq(mem_bi(Gpr::R15, Gpr::Rbx, 8, 32), Gpr::Rax));
        a.push(movrr(Gpr::Rcx, Gpr::Rax));
        a.push(Inst::Lea {
            w: Width::W64,
            dst: Gpr::Rdi,
            addr: mem_bi(Gpr::R15, Gpr::Rbx, 8, 0),
        });
        a.push(movri(Gpr::Rsi, 0));
        a.push(lea_func(Gpr::Rdx, worker_addr));
        a.push(call(pthread_create));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(spawn_top);
        a.bind(spawn_done);
        a.push(movri(Gpr::Rbx, 0));
        a.bind(join_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, join_done);
        a.push(loadq(Gpr::Rdi, mem_bi(Gpr::R15, Gpr::Rbx, 8, 0)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(call(pthread_join));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(join_top);
        a.bind(join_done);
        // merge the per-thread partials
        a.push(movri(Gpr::Rbx, 0));
        a.bind(m_t_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, m_t_done);
        a.push(loadq(Gpr::Rdx, mem_bi(Gpr::R15, Gpr::Rbx, 8, 32)));
        a.push(loadq(Gpr::Rdx, mem_bd(Gpr::Rdx, 32)));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(m_k_top);
        a.push(cmpri(Gpr::Rcx, OUT_WORDS as i32));
        a.jcc(Cond::E, m_k_done);
        a.push(loadq(Gpr::Rax, mem_bi(Gpr::Rdx, Gpr::Rcx, 8, 0)));
        a.push(Inst::AluRmR {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::R14, Gpr::Rcx, 8, 0)),
            src: Gpr::Rax,
        });
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(m_k_top);
        a.bind(m_k_done);
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(m_t_top);
        a.bind(m_t_done);
        // checksum = Σ_{i,j} (i*DIM+j+1) * (n*P_ij − S_i*S_j)
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rcx, 0)); // i
        a.bind(c_i_top);
        a.push(cmpri(Gpr::Rcx, DIM as i32));
        a.jcc(Cond::E, c_i_done);
        a.push(movri(Gpr::Rdx, 0)); // j
        a.bind(c_j_top);
        a.push(cmpri(Gpr::Rdx, DIM as i32));
        a.jcc(Cond::E, c_j_done);
        a.push(movrr(Gpr::R8, Gpr::Rcx));
        a.push(shifti(ShiftOp::Shl, Gpr::R8, 2));
        a.push(alurr(AluOp::Add, Gpr::R8, Gpr::Rdx)); // i*DIM+j
        a.push(loadq(
            Gpr::R9,
            mem_bi(Gpr::R14, Gpr::R8, 8, (8 * DIM) as i64),
        ));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R9,
            src: Rm::Reg(Gpr::R13),
        }); // n*P_ij
        a.push(loadq(Gpr::R10, mem_bi(Gpr::R14, Gpr::Rcx, 8, 0)));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R10,
            src: Rm::Mem(mem_bi(Gpr::R14, Gpr::Rdx, 8, 0)),
        }); // S_i*S_j
        a.push(alurr(AluOp::Sub, Gpr::R9, Gpr::R10));
        a.push(movrr(Gpr::R11, Gpr::R8));
        a.push(alui(AluOp::Add, Gpr::R11, 1));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::R9,
            src: Rm::Reg(Gpr::R11),
        });
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::R9));
        a.push(alui(AluOp::Add, Gpr::Rdx, 1));
        a.jmp(c_j_top);
        a.bind(c_j_done);
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(c_i_top);
        a.bind(c_i_done);
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx, Gpr::Rbp] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("main", a.finish(addr).unwrap());
    }

    b.finish()
}

/// Native LIR baseline.
pub fn native() -> lasagne_lir::Module {
    native_impl()
}

pub(crate) fn native_impl() -> lasagne_lir::Module {
    use crate::native::{fork_join_main, runtime, Fb};
    use lasagne_lir::inst::{BinOp, Callee, CastOp, InstKind, Operand};
    use lasagne_lir::types::{Pointee, Ty};

    let mut m = lasagne_lir::Module::new();
    let rt = runtime(&mut m);

    let worker = {
        let mut fb = Fb::new("pca_worker", vec![Ty::Ptr(Pointee::I8)], Ty::I64);
        let args = fb.cast_ptr(Pointee::I64, Operand::Param(0));
        let mat_i = fb.load(Ty::I64, args);
        let mat = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: mat_i,
            },
        );
        let p1 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(1), 8);
        let start = fb.load(Ty::I64, p1);
        let p2 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(2), 8);
        let end = fb.load(Ty::I64, p2);
        let p4 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(4), 8);
        let n = fb.load(Ty::I64, p4);
        let out = fb.call(
            Ty::Ptr(Pointee::I8),
            Callee::Extern(rt.malloc),
            vec![Operand::i64((8 * OUT_WORDS) as i64)],
        );
        let out64 = fb.cast_ptr(Pointee::I64, out);
        // Mean phase.
        fb.counted_loop(
            Operand::i64(0),
            Operand::i64(DIM as i64),
            &[],
            &[],
            |fb, i, _| {
                let base = fb.mul(i, n);
                let sums =
                    fb.counted_loop(start, end, &[Ty::I64], &[Operand::i64(0)], |fb, k, accs| {
                        let idx = fb.add(base, k);
                        let p = fb.gep(Ty::Ptr(Pointee::I64), mat, idx, 8);
                        let v = fb.load(Ty::I64, p);
                        vec![fb.add(accs[0], v)]
                    });
                let slot = fb.gep(Ty::Ptr(Pointee::I64), out64, i, 8);
                fb.store(slot, sums[0]);
                vec![]
            },
        );
        // Covariance phase.
        fb.counted_loop(
            Operand::i64(0),
            Operand::i64(DIM as i64),
            &[],
            &[],
            |fb, i, _| {
                let base_i = fb.mul(i, n);
                fb.counted_loop(
                    Operand::i64(0),
                    Operand::i64(DIM as i64),
                    &[],
                    &[],
                    |fb, j, _| {
                        let base_j = fb.mul(j, n);
                        let dots = fb.counted_loop(
                            start,
                            end,
                            &[Ty::I64],
                            &[Operand::i64(0)],
                            |fb, k, accs| {
                                let ii = fb.add(base_i, k);
                                let pi = fb.gep(Ty::Ptr(Pointee::I64), mat, ii, 8);
                                let vi = fb.load(Ty::I64, pi);
                                let jj = fb.add(base_j, k);
                                let pj = fb.gep(Ty::Ptr(Pointee::I64), mat, jj, 8);
                                let vj = fb.load(Ty::I64, pj);
                                let prod = fb.mul(vi, vj);
                                vec![fb.add(accs[0], prod)]
                            },
                        );
                        let lin = fb.mul(i, Operand::i64(DIM as i64));
                        let lin2 = fb.add(lin, j);
                        let sidx = fb.add(lin2, Operand::i64(DIM as i64));
                        let slot = fb.gep(Ty::Ptr(Pointee::I64), out64, sidx, 8);
                        fb.store(slot, dots[0]);
                        vec![]
                    },
                );
                vec![]
            },
        );
        let out_int = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: out,
            },
        );
        let p5 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(5), 8);
        fb.store(p5, out_int);
        let f = fb.ret(Some(Operand::i64(0)));
        m.add_func(f)
    };

    let threads = THREADS;
    let rt_ref = &rt;
    fork_join_main(
        &mut m,
        rt_ref,
        worker,
        "main",
        vec![Ty::I64, Ty::I64],
        |_| Operand::Param(1),
        |_fb| (Operand::Param(0), Operand::Param(1)),
        move |fb, slots| {
            // global partials, zeroed
            let g = fb.call(
                Ty::Ptr(Pointee::I8),
                Callee::Extern(rt_ref.malloc),
                vec![Operand::i64((8 * OUT_WORDS) as i64)],
            );
            let g_int = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: g,
                },
            );
            fb.call(
                Ty::I64,
                Callee::Extern(rt_ref.memset),
                vec![g_int, Operand::i64(0), Operand::i64((8 * OUT_WORDS) as i64)],
            );
            let g64 = fb.cast_ptr(Pointee::I64, g);
            fb.counted_loop(
                Operand::i64(0),
                Operand::i64(threads as i64),
                &[],
                &[],
                |fb, t, _| {
                    let ap = {
                        let x = fb.add(t, Operand::i64(threads as i64));
                        fb.gep(Ty::Ptr(Pointee::I64), slots, x, 8)
                    };
                    let a = fb.load(Ty::I64, ap);
                    let a64 = fb.op(
                        Ty::Ptr(Pointee::I64),
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: a,
                        },
                    );
                    let op = fb.gep(Ty::Ptr(Pointee::I64), a64, Operand::i64(5), 8);
                    let o = fb.load(Ty::I64, op);
                    let out = fb.op(
                        Ty::Ptr(Pointee::I64),
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: o,
                        },
                    );
                    fb.counted_loop(
                        Operand::i64(0),
                        Operand::i64(OUT_WORDS as i64),
                        &[],
                        &[],
                        |fb, k, _| {
                            let src = fb.gep(Ty::Ptr(Pointee::I64), out, k, 8);
                            let v = fb.load(Ty::I64, src);
                            let dst = fb.gep(Ty::Ptr(Pointee::I64), g64, k, 8);
                            let old = fb.load(Ty::I64, dst);
                            let s = fb.add(old, v);
                            fb.store(dst, s);
                            vec![]
                        },
                    );
                    vec![]
                },
            );
            // checksum over the covariance entries
            let n = Operand::Param(1);
            let sums = fb.counted_loop(
                Operand::i64(0),
                Operand::i64((DIM * DIM) as i64),
                &[Ty::I64],
                &[Operand::i64(0)],
                |fb, lin, accs| {
                    let i = fb.bin(BinOp::LShr, Ty::I64, lin, Operand::i64(2));
                    let j = fb.bin(BinOp::And, Ty::I64, lin, Operand::i64(DIM as i64 - 1));
                    let pidx = fb.add(lin, Operand::i64(DIM as i64));
                    let pp = fb.gep(Ty::Ptr(Pointee::I64), g64, pidx, 8);
                    let p = fb.load(Ty::I64, pp);
                    let np = fb.mul(n, p);
                    let sip = fb.gep(Ty::Ptr(Pointee::I64), g64, i, 8);
                    let si = fb.load(Ty::I64, sip);
                    let sjp = fb.gep(Ty::Ptr(Pointee::I64), g64, j, 8);
                    let sj = fb.load(Ty::I64, sjp);
                    let ss = fb.mul(si, sj);
                    let cov = fb.bin(BinOp::Sub, Ty::I64, np, ss);
                    let k = fb.add(lin, Operand::i64(1));
                    let term = fb.mul(cov, k);
                    vec![fb.add(accs[0], term)]
                },
            );
            sums[0]
        },
        threads,
    );
    m
}

/// Deterministic workload: a `DIM × n` row-major matrix of small values.
pub fn workload(n: usize) -> Workload {
    let n = n.max(8);
    let raw = crate::lcg_u64(DIM as usize * n, 0x9CA1_u64);
    let vals: Vec<u64> = raw.into_iter().map(|v| v % 1000).collect();
    let mut sums = [0u64; DIM as usize];
    let mut dots = [[0u64; DIM as usize]; DIM as usize];
    for i in 0..DIM as usize {
        for k in 0..n {
            sums[i] = sums[i].wrapping_add(vals[i * n + k]);
        }
        for j in 0..DIM as usize {
            for k in 0..n {
                dots[i][j] = dots[i][j].wrapping_add(vals[i * n + k].wrapping_mul(vals[j * n + k]));
            }
        }
    }
    let mut expected = 0u64;
    for i in 0..DIM as usize {
        for j in 0..DIM as usize {
            let cov = (n as u64)
                .wrapping_mul(dots[i][j])
                .wrapping_sub(sums[i].wrapping_mul(sums[j]));
            let k = (i as u64 * DIM + j as u64) + 1;
            expected = expected.wrapping_add(cov.wrapping_mul(k));
        }
    }
    let mut bytes = Vec::with_capacity(8 * vals.len());
    for v in &vals {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    Workload {
        name: "pca",
        mem_init: vec![(WORKLOAD_BASE, bytes)],
        args: vec![WORKLOAD_BASE, n as u64],
        expected_ret: expected,
    }
}
