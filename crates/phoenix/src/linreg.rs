//! Phoenix `linear_regression` (LR): per-thread partial sums of
//! `Σx, Σy, Σx², Σxy` over an array of `(x, y)` point pairs, combined by
//! main into a least-squares slope (the FP tail exercises the lifter's
//! SSE path). Two functions, matching Table 1.

use crate::builders::*;
use crate::{Workload, WORKLOAD_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, FpPrec, Inst, Rm, ShiftOp, SseOp, XmmRm};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};

/// Worker threads.
pub const THREADS: u64 = 4;

/// Builds the x86-64 binary.
pub fn binary() -> Binary {
    let mut b = BinaryBuilder::new();
    let malloc = b.declare_extern("malloc");
    let pthread_create = b.declare_extern("pthread_create");
    let pthread_join = b.declare_extern("pthread_join");

    // ---- lr_worker(args) ----
    // args: [0]=data [8]=start [16]=end [24]=SX [32]=SY [40]=SXX [48]=SXY
    let worker_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14] {
            a.push(Inst::Push { src: r });
        }
        a.push(loadq(Gpr::R8, mem_b(Gpr::Rdi)));
        a.push(loadq(Gpr::R9, mem_bd(Gpr::Rdi, 8)));
        a.push(loadq(Gpr::R10, mem_bd(Gpr::Rdi, 16)));
        a.push(movri(Gpr::R11, 0)); // SX
        a.push(movri(Gpr::R12, 0)); // SY
        a.push(movri(Gpr::R13, 0)); // SXX
        a.push(movri(Gpr::R14, 0)); // SXY
        a.bind(top);
        a.push(cmprr(Gpr::R9, Gpr::R10));
        a.jcc(Cond::E, done);
        // rcx = x, rdx = y (16-byte pairs)
        a.push(movrr(Gpr::Rcx, Gpr::R9));
        a.push(shifti(ShiftOp::Shl, Gpr::Rcx, 4));
        a.push(alurr(AluOp::Add, Gpr::Rcx, Gpr::R8));
        a.push(loadq(Gpr::Rdx, mem_bd(Gpr::Rcx, 8)));
        a.push(loadq(Gpr::Rcx, mem_b(Gpr::Rcx)));
        a.push(alurr(AluOp::Add, Gpr::R11, Gpr::Rcx)); // SX += x
        a.push(alurr(AluOp::Add, Gpr::R12, Gpr::Rdx)); // SY += y
        a.push(movrr(Gpr::Rax, Gpr::Rcx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rcx),
        });
        a.push(alurr(AluOp::Add, Gpr::R13, Gpr::Rax)); // SXX += x*x
        a.push(movrr(Gpr::Rax, Gpr::Rcx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdx),
        });
        a.push(alurr(AluOp::Add, Gpr::R14, Gpr::Rax)); // SXY += x*y
        a.push(alui(AluOp::Add, Gpr::R9, 1));
        a.jmp(top);
        a.bind(done);
        a.push(storeq(mem_bd(Gpr::Rdi, 24), Gpr::R11));
        a.push(storeq(mem_bd(Gpr::Rdi, 32), Gpr::R12));
        a.push(storeq(mem_bd(Gpr::Rdi, 40), Gpr::R13));
        a.push(storeq(mem_bd(Gpr::Rdi, 48), Gpr::R14));
        a.push(movri(Gpr::Rax, 0));
        for r in [Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("lr_worker", a.finish(addr).unwrap());
        addr
    };

    // ---- main(data, n) ----
    {
        let mut a = Asm::new();
        let spawn_top = a.label();
        let spawn_done = a.label();
        let last = a.label();
        let join_top = a.label();
        let join_done = a.label();
        let merge_top = a.label();
        let merge_done = a.label();
        for r in [Gpr::Rbp, Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::R12, Gpr::Rdi)); // data
        a.push(movrr(Gpr::R13, Gpr::Rsi)); // n
        a.push(movri(Gpr::Rdi, (THREADS * 16) as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax)); // slots
        a.push(movrr(Gpr::Rbp, Gpr::R13));
        a.push(shifti(ShiftOp::Shr, Gpr::Rbp, 2)); // chunk
        a.push(movri(Gpr::Rbx, 0));
        a.bind(spawn_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, spawn_done);
        a.push(movri(Gpr::Rdi, 56));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rax), Gpr::R12));
        a.push(movrr(Gpr::Rdx, Gpr::Rbx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rbp),
        });
        a.push(storeq(mem_bd(Gpr::Rax, 8), Gpr::Rdx));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rbp));
        a.push(cmpri(Gpr::Rbx, THREADS as i32 - 1));
        a.jcc(Cond::Ne, last);
        a.push(movrr(Gpr::Rdx, Gpr::R13));
        a.bind(last);
        a.push(storeq(mem_bd(Gpr::Rax, 16), Gpr::Rdx));
        a.push(storeq(
            mem_bi(Gpr::R15, Gpr::Rbx, 8, (THREADS * 8) as i64),
            Gpr::Rax,
        ));
        a.push(movrr(Gpr::Rcx, Gpr::Rax));
        a.push(Inst::Lea {
            w: Width::W64,
            dst: Gpr::Rdi,
            addr: mem_bi(Gpr::R15, Gpr::Rbx, 8, 0),
        });
        a.push(movri(Gpr::Rsi, 0));
        a.push(lea_func(Gpr::Rdx, worker_addr));
        a.push(call(pthread_create));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(spawn_top);
        a.bind(spawn_done);
        a.push(movri(Gpr::Rbx, 0));
        a.bind(join_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, join_done);
        a.push(loadq(Gpr::Rdi, mem_bi(Gpr::R15, Gpr::Rbx, 8, 0)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(call(pthread_join));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(join_top);
        a.bind(join_done);
        // Merge: SX=r8 SY=r9 SXX=r10 SXY=r11 (no calls from here on).
        a.push(movri(Gpr::R8, 0));
        a.push(movri(Gpr::R9, 0));
        a.push(movri(Gpr::R10, 0));
        a.push(movri(Gpr::R11, 0));
        a.push(movri(Gpr::Rbx, 0));
        a.bind(merge_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, merge_done);
        a.push(loadq(
            Gpr::Rdx,
            mem_bi(Gpr::R15, Gpr::Rbx, 8, (THREADS * 8) as i64),
        ));
        a.push(alurm(AluOp::Add, Gpr::R8, mem_bd(Gpr::Rdx, 24)));
        a.push(alurm(AluOp::Add, Gpr::R9, mem_bd(Gpr::Rdx, 32)));
        a.push(alurm(AluOp::Add, Gpr::R10, mem_bd(Gpr::Rdx, 40)));
        a.push(alurm(AluOp::Add, Gpr::R11, mem_bd(Gpr::Rdx, 48)));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(merge_top);
        a.bind(merge_done);
        // slope = (n*SXY - SX*SY) / (n*SXX - SX*SX), scaled ×1000 and
        // truncated; checksum = trunc + SX + SY.
        a.push(movrr(Gpr::Rax, Gpr::R11));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::R13),
        });
        a.push(movrr(Gpr::Rcx, Gpr::R8));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rcx,
            src: Rm::Reg(Gpr::R9),
        });
        a.push(alurr(AluOp::Sub, Gpr::Rax, Gpr::Rcx)); // numer
        a.push(movrr(Gpr::Rdx, Gpr::R10));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::R13),
        });
        a.push(movrr(Gpr::Rcx, Gpr::R8));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rcx,
            src: Rm::Reg(Gpr::R8),
        });
        a.push(alurr(AluOp::Sub, Gpr::Rdx, Gpr::Rcx)); // denom
        a.push(Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(0),
            src: Rm::Reg(Gpr::Rax),
        });
        a.push(Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(1),
            src: Rm::Reg(Gpr::Rdx),
        });
        a.push(Inst::SseScalar {
            op: SseOp::Div,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(1)),
        });
        a.push(movri(Gpr::Rcx, 1000.0f64.to_bits() as i64));
        a.push(Inst::MovGprToXmm {
            w: Width::W64,
            dst: Xmm(1),
            src: Gpr::Rcx,
        });
        a.push(Inst::SseScalar {
            op: SseOp::Mul,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(1)),
        });
        a.push(Inst::CvtF2Si {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Gpr::Rax,
            src: XmmRm::Reg(Xmm(0)),
        });
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::R8));
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::R9));
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx, Gpr::Rbp] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("main", a.finish(addr).unwrap());
    }

    b.finish()
}

/// Native LIR baseline.
pub fn native() -> lasagne_lir::Module {
    native_impl()
}

pub(crate) fn native_impl() -> lasagne_lir::Module {
    use crate::native::{fork_join_main, runtime, Fb};
    use lasagne_lir::inst::{BinOp, Callee, CastOp, InstKind, Operand};
    use lasagne_lir::types::{Pointee, Ty};

    let mut m = lasagne_lir::Module::new();
    let rt = runtime(&mut m);

    // worker(args i8*): accumulates SX/SY/SXX/SXY over its slice into the
    // shared per-thread sums buffer (ctx1 = args[4]), at the row selected
    // by its thread index (args[3]).
    let worker = {
        let mut fb = Fb::new("lr_worker", vec![Ty::Ptr(Pointee::I8)], Ty::I64);
        let args = fb.cast_ptr(Pointee::I64, Operand::Param(0));
        let data_i = fb.load(Ty::I64, args);
        let data = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: data_i,
            },
        );
        let p1 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(1), 8);
        let start = fb.load(Ty::I64, p1);
        let p2 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(2), 8);
        let end = fb.load(Ty::I64, p2);
        let p4 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(4), 8);
        let sums_i = fb.load(Ty::I64, p4);
        let sums = fb.op(
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: sums_i,
            },
        );
        let zero = Operand::i64(0);
        let finals = fb.counted_loop(
            start,
            end,
            &[Ty::I64, Ty::I64, Ty::I64, Ty::I64],
            &[zero, zero, zero, zero],
            |fb, i, accs| {
                let xi = fb.bin(BinOp::Shl, Ty::I64, i, Operand::i64(1));
                let xp = fb.gep(Ty::Ptr(Pointee::I64), data, xi, 8);
                let x = fb.load(Ty::I64, xp);
                let yi = fb.add(xi, Operand::i64(1));
                let yp = fb.gep(Ty::Ptr(Pointee::I64), data, yi, 8);
                let y = fb.load(Ty::I64, yp);
                let sx = fb.add(accs[0], x);
                let sy = fb.add(accs[1], y);
                let xx = fb.mul(x, x);
                let sxx = fb.add(accs[2], xx);
                let xy = fb.mul(x, y);
                let sxy = fb.add(accs[3], xy);
                vec![sx, sy, sxx, sxy]
            },
        );
        // Worker-private sums region: 4 threads × 4 u64, disjoint by thread
        // index stored at args[3].
        let p3 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(3), 8);
        let tix = fb.load(Ty::I64, p3);
        let base = fb.mul(tix, Operand::i64(4));
        for (k, v) in finals.iter().enumerate() {
            let idx = fb.add(base, Operand::i64(k as i64));
            let p = fb.gep(Ty::Ptr(Pointee::I64), sums, idx, 8);
            fb.store(p, *v);
        }
        let f = fb.ret(Some(Operand::i64(0)));
        m.add_func(f)
    };

    // main(data, n): fork-join; thread index goes in args[3], the shared
    // sums buffer in args[4] (ctx1).
    let threads = THREADS;
    fork_join_main(
        &mut m,
        &rt,
        worker,
        "main",
        vec![Ty::I64, Ty::I64],
        |_| Operand::Param(1),
        |fb| {
            let sums = fb.call(
                Ty::Ptr(Pointee::I8),
                Callee::Extern(rt.malloc),
                vec![Operand::i64((threads * 4 * 8) as i64)],
            );
            let sums_i = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: sums,
                },
            );
            fb.call(
                Ty::I64,
                Callee::Extern(rt.memset),
                vec![
                    sums_i,
                    Operand::i64(0),
                    Operand::i64((threads * 4 * 8) as i64),
                ],
            );
            (Operand::Param(0), sums_i)
        },
        move |fb, slots| {
            // Thread indices were not written by the generic skeleton into
            // args[3]; write them here is too late (workers already ran), so
            // the skeleton's `start` at args[1] is used instead: recompute
            // tix = start / chunk. Simpler: merge all four sums regions
            // directly from the shared buffer.
            let a0p = fb.gep(
                Ty::Ptr(Pointee::I64),
                slots,
                Operand::i64(threads as i64),
                8,
            );
            let a0 = fb.load(Ty::I64, a0p);
            let a064 = fb.op(
                Ty::Ptr(Pointee::I64),
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: a0,
                },
            );
            let sums_ip = fb.gep(Ty::Ptr(Pointee::I64), a064, Operand::i64(4), 8);
            let sums_i = fb.load(Ty::I64, sums_ip);
            let sums = fb.op(
                Ty::Ptr(Pointee::I64),
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: sums_i,
                },
            );
            let z = Operand::i64(0);
            let totals = fb.counted_loop(
                Operand::i64(0),
                Operand::i64(threads as i64),
                &[Ty::I64, Ty::I64, Ty::I64, Ty::I64],
                &[z, z, z, z],
                |fb, t, accs| {
                    let base = fb.mul(t, Operand::i64(4));
                    let mut next = Vec::new();
                    for k in 0..4 {
                        let idx = fb.add(base, Operand::i64(k));
                        let p = fb.gep(Ty::Ptr(Pointee::I64), sums, idx, 8);
                        let v = fb.load(Ty::I64, p);
                        next.push(fb.add(accs[k as usize], v));
                    }
                    next
                },
            );
            let (sx, sy, sxx, sxy) = (totals[0], totals[1], totals[2], totals[3]);
            let n = Operand::Param(1);
            let nsxy = fb.mul(n, sxy);
            let sxsy = fb.mul(sx, sy);
            let numer = fb.bin(BinOp::Sub, Ty::I64, nsxy, sxsy);
            let nsxx = fb.mul(n, sxx);
            let sxsx = fb.mul(sx, sx);
            let denom = fb.bin(BinOp::Sub, Ty::I64, nsxx, sxsx);
            let fnum = fb.op(
                Ty::F64,
                InstKind::Cast {
                    op: CastOp::SiToFp,
                    val: numer,
                },
            );
            let fden = fb.op(
                Ty::F64,
                InstKind::Cast {
                    op: CastOp::SiToFp,
                    val: denom,
                },
            );
            let slope = fb.bin(BinOp::FDiv, Ty::F64, fnum, fden);
            let scaled = fb.bin(BinOp::FMul, Ty::F64, slope, Operand::f64(1000.0));
            let trunc = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::FpToSi,
                    val: scaled,
                },
            );
            let s1 = fb.add(trunc, sx);
            fb.add(s1, sy)
        },
        threads,
    );

    m
}

/// Deterministic workload of `n` `(x, y)` pairs with a linear-ish relation.
pub fn workload(n: usize) -> Workload {
    let xs = crate::lcg_u64(n, 7);
    let mut bytes = Vec::with_capacity(n * 16);
    let mut sx = 0i64;
    let mut sy = 0i64;
    let mut sxx = 0i64;
    let mut sxy = 0i64;
    for (i, r) in xs.iter().enumerate() {
        let x = (r % 1000) as i64;
        let y = 3 * x + 17 + (i as i64 % 7);
        bytes.extend_from_slice(&x.to_le_bytes());
        bytes.extend_from_slice(&y.to_le_bytes());
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let n_i = n as i64;
    let numer = (n_i * sxy - sx * sy) as f64;
    let denom = (n_i * sxx - sx * sx) as f64;
    let slope = numer / denom;
    let expected = (slope * 1000.0) as i64 + sx + sy;
    Workload {
        name: "linear_regression",
        mem_init: vec![(WORKLOAD_BASE, bytes)],
        args: vec![WORKLOAD_BASE, n as u64],
        expected_ret: expected as u64,
    }
}
