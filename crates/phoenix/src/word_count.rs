//! Phoenix `word_count` (WC): count word occurrences in a text, split
//! across four pthreads with per-thread local hash tables merged by main.
//!
//! Functions (5, matching Table 1): `main`, `wc_worker`, `wc_scan`
//! (byte-wise rolling-hash tokeniser), `wc_insert` (hash-table bump),
//! `wc_merge`.
//!
//! The input text is `n` words of exactly 7 lowercase letters followed by
//! one space, so every word is space-terminated and thread chunks (in
//! units of words) never split a token. The scanner still discovers the
//! boundaries byte by byte, as the original does: it folds `h = h*31 + c`
//! over letters and flushes `h` into the table on each `' '`.

use crate::builders::*;
use crate::{Workload, WORKLOAD_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, Inst, Rm, ShiftOp};
use lasagne_x86::reg::{Cond, Gpr, Width};

/// Worker threads.
pub const THREADS: u64 = 4;
/// Hash-table buckets (power of two; the hash is reduced with `& 511`).
pub const BUCKETS: u64 = 512;
/// Bytes per word in the input encoding (7 letters + 1 space).
pub const WORD_BYTES: u64 = 8;
/// Table bytes: `BUCKETS` counts then `BUCKETS` hash-sums, u64 each.
pub const TABLE_BYTES: u64 = 2 * 8 * BUCKETS;

/// Builds the x86-64 binary.
pub fn binary() -> Binary {
    let mut b = BinaryBuilder::new();
    let malloc = b.declare_extern("malloc");
    let memset = b.declare_extern("memset");
    let pthread_create = b.declare_extern("pthread_create");
    let pthread_join = b.declare_extern("pthread_join");

    // ---- wc_insert(table, hash) ----
    // bucket = hash & 511; table[bucket] += 1; table[512 + bucket] += hash.
    let insert_addr = {
        let mut a = Asm::new();
        a.push(movrr(Gpr::Rax, Gpr::Rsi));
        a.push(alui(AluOp::And, Gpr::Rax, (BUCKETS - 1) as i32));
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::Rdi, Gpr::Rax, 8, 0)),
            imm: 1,
        });
        a.push(Inst::AluRmR {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::Rdi, Gpr::Rax, 8, (8 * BUCKETS) as i64)),
            src: Gpr::Rsi,
        });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("wc_insert", a.finish(addr).unwrap());
        addr
    };

    // ---- wc_scan(data, byte_start, byte_end, table) ----
    // Rolling hash over bytes; flush into the table on ' ' (0x20).
    let scan_addr = {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        let letter = a.label();
        let next = a.label();
        for r in [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::Rbx, Gpr::Rdi)); // data
        a.push(movrr(Gpr::R12, Gpr::Rsi)); // p
        a.push(movrr(Gpr::R13, Gpr::Rdx)); // end
        a.push(movrr(Gpr::R14, Gpr::Rcx)); // table
        a.push(movri(Gpr::R15, 0)); // h
        a.bind(top);
        a.push(cmprr(Gpr::R12, Gpr::R13));
        a.jcc(Cond::E, done);
        a.push(Inst::MovZx {
            dw: Width::W64,
            sw: Width::W8,
            dst: Gpr::Rax,
            src: Rm::Mem(mem_bi(Gpr::Rbx, Gpr::R12, 1, 0)),
        });
        a.push(cmpri(Gpr::Rax, b' ' as i32));
        a.jcc(Cond::Ne, letter);
        // flush: wc_insert(table, h); h = 0
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(movrr(Gpr::Rsi, Gpr::R15));
        a.push(call(insert_addr));
        a.push(movri(Gpr::R15, 0));
        a.jmp(next);
        a.bind(letter);
        // h = h*31 + c  (as (h<<5) - h + c)
        a.push(movrr(Gpr::Rdx, Gpr::R15));
        a.push(shifti(ShiftOp::Shl, Gpr::Rdx, 5));
        a.push(alurr(AluOp::Sub, Gpr::Rdx, Gpr::R15));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rax));
        a.push(movrr(Gpr::R15, Gpr::Rdx));
        a.bind(next);
        a.push(alui(AluOp::Add, Gpr::R12, 1));
        a.jmp(top);
        a.bind(done);
        a.push(movri(Gpr::Rax, 0));
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("wc_scan", a.finish(addr).unwrap());
        addr
    };

    // ---- wc_worker(args) ----
    // args: [0]=data [8]=start word [16]=end word [24]=out table
    let worker_addr = {
        let mut a = Asm::new();
        a.push(Inst::Push { src: Gpr::Rbx });
        a.push(Inst::Push { src: Gpr::R12 });
        a.push(movrr(Gpr::Rbx, Gpr::Rdi));
        a.push(movri(Gpr::Rdi, TABLE_BYTES as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R12, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::R12));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, TABLE_BYTES as i64));
        a.push(call(memset));
        a.push(loadq(Gpr::Rdi, mem_b(Gpr::Rbx)));
        a.push(loadq(Gpr::Rsi, mem_bd(Gpr::Rbx, 8)));
        a.push(shifti(ShiftOp::Shl, Gpr::Rsi, 3));
        a.push(loadq(Gpr::Rdx, mem_bd(Gpr::Rbx, 16)));
        a.push(shifti(ShiftOp::Shl, Gpr::Rdx, 3));
        a.push(movrr(Gpr::Rcx, Gpr::R12));
        a.push(call(scan_addr));
        a.push(storeq(mem_bd(Gpr::Rbx, 24), Gpr::R12));
        a.push(movri(Gpr::Rax, 0));
        a.push(Inst::Pop { dst: Gpr::R12 });
        a.push(Inst::Pop { dst: Gpr::Rbx });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("wc_worker", a.finish(addr).unwrap());
        addr
    };

    // ---- wc_merge(table, slots) : sum the 4 workers' local tables ----
    let merge_addr = {
        let mut a = Asm::new();
        let t_top = a.label();
        let t_done = a.label();
        let i_top = a.label();
        let i_done = a.label();
        // rdi = global table, rsi = slots (args ptrs at [rsi + t*8 + 32])
        a.push(movri(Gpr::Rbx, 0));
        a.bind(t_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, t_done);
        a.push(loadq(Gpr::Rdx, mem_bi(Gpr::Rsi, Gpr::Rbx, 8, 32)));
        a.push(loadq(Gpr::Rdx, mem_bd(Gpr::Rdx, 24)));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(i_top);
        a.push(cmpri(Gpr::Rcx, (2 * BUCKETS) as i32));
        a.jcc(Cond::E, i_done);
        a.push(loadq(Gpr::Rax, mem_bi(Gpr::Rdx, Gpr::Rcx, 8, 0)));
        a.push(Inst::AluRmR {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Mem(mem_bi(Gpr::Rdi, Gpr::Rcx, 8, 0)),
            src: Gpr::Rax,
        });
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(i_top);
        a.bind(i_done);
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(t_top);
        a.bind(t_done);
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("wc_merge", a.finish(addr).unwrap());
        addr
    };

    // ---- main(data, n_words) -> checksum ----
    {
        let mut a = Asm::new();
        let spawn_top = a.label();
        let spawn_done = a.label();
        let last = a.label();
        let join_top = a.label();
        let join_done = a.label();
        let sum_top = a.label();
        let sum_done = a.label();
        for r in [Gpr::Rbp, Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
            a.push(Inst::Push { src: r });
        }
        a.push(movrr(Gpr::R12, Gpr::Rdi)); // data
        a.push(movrr(Gpr::R13, Gpr::Rsi)); // n words
                                           // global table
        a.push(movri(Gpr::Rdi, TABLE_BYTES as i64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R14, Gpr::Rax));
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(movri(Gpr::Rsi, 0));
        a.push(movri(Gpr::Rdx, TABLE_BYTES as i64));
        a.push(call(memset));
        // slots = malloc(64): [t*8] = tid, [t*8+32] = args ptr
        a.push(movri(Gpr::Rdi, 64));
        a.push(call(malloc));
        a.push(movrr(Gpr::R15, Gpr::Rax));
        // chunk = n >> 2 (in words)
        a.push(movrr(Gpr::Rbp, Gpr::R13));
        a.push(shifti(ShiftOp::Shr, Gpr::Rbp, 2));
        a.push(movri(Gpr::Rbx, 0));
        a.bind(spawn_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, spawn_done);
        a.push(movri(Gpr::Rdi, 32));
        a.push(call(malloc));
        a.push(storeq(mem_b(Gpr::Rax), Gpr::R12));
        a.push(movrr(Gpr::Rdx, Gpr::Rbx));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::Rbp),
        });
        a.push(storeq(mem_bd(Gpr::Rax, 8), Gpr::Rdx));
        a.push(alurr(AluOp::Add, Gpr::Rdx, Gpr::Rbp));
        a.push(cmpri(Gpr::Rbx, THREADS as i32 - 1));
        a.jcc(Cond::Ne, last);
        a.push(movrr(Gpr::Rdx, Gpr::R13)); // last thread takes the tail
        a.bind(last);
        a.push(storeq(mem_bd(Gpr::Rax, 16), Gpr::Rdx));
        a.push(storeq(mem_bi(Gpr::R15, Gpr::Rbx, 8, 32), Gpr::Rax));
        a.push(movrr(Gpr::Rcx, Gpr::Rax));
        a.push(Inst::Lea {
            w: Width::W64,
            dst: Gpr::Rdi,
            addr: mem_bi(Gpr::R15, Gpr::Rbx, 8, 0),
        });
        a.push(movri(Gpr::Rsi, 0));
        a.push(lea_func(Gpr::Rdx, worker_addr));
        a.push(call(pthread_create));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(spawn_top);
        a.bind(spawn_done);
        a.push(movri(Gpr::Rbx, 0));
        a.bind(join_top);
        a.push(cmpri(Gpr::Rbx, THREADS as i32));
        a.jcc(Cond::E, join_done);
        a.push(loadq(Gpr::Rdi, mem_bi(Gpr::R15, Gpr::Rbx, 8, 0)));
        a.push(movri(Gpr::Rsi, 0));
        a.push(call(pthread_join));
        a.push(alui(AluOp::Add, Gpr::Rbx, 1));
        a.jmp(join_top);
        a.bind(join_done);
        a.push(movrr(Gpr::Rdi, Gpr::R14));
        a.push(movrr(Gpr::Rsi, Gpr::R15));
        a.push(call(merge_addr));
        // checksum = Σ_b (b+1)*counts[b] + hashsum[b]
        a.push(movri(Gpr::Rax, 0));
        a.push(movri(Gpr::Rcx, 0));
        a.bind(sum_top);
        a.push(cmpri(Gpr::Rcx, BUCKETS as i32));
        a.jcc(Cond::E, sum_done);
        a.push(loadq(Gpr::Rdx, mem_bi(Gpr::R14, Gpr::Rcx, 8, 0)));
        a.push(movrr(Gpr::R8, Gpr::Rcx));
        a.push(alui(AluOp::Add, Gpr::R8, 1));
        a.push(Inst::IMul2 {
            w: Width::W64,
            dst: Gpr::Rdx,
            src: Rm::Reg(Gpr::R8),
        });
        a.push(alurr(AluOp::Add, Gpr::Rax, Gpr::Rdx));
        a.push(alurm(
            AluOp::Add,
            Gpr::Rax,
            mem_bi(Gpr::R14, Gpr::Rcx, 8, (8 * BUCKETS) as i64),
        ));
        a.push(alui(AluOp::Add, Gpr::Rcx, 1));
        a.jmp(sum_top);
        a.bind(sum_done);
        for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::Rbx, Gpr::Rbp] {
            a.push(Inst::Pop { dst: r });
        }
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("main", a.finish(addr).unwrap());
    }

    b.finish()
}

/// Native LIR baseline.
pub fn native() -> lasagne_lir::Module {
    native_impl()
}

pub(crate) fn native_impl() -> lasagne_lir::Module {
    use crate::native::{fork_join_main, runtime, Fb};
    use lasagne_lir::inst::{BinOp, Callee, CastOp, IPred, InstKind, Operand};
    use lasagne_lir::types::{Pointee, Ty};

    let mut m = lasagne_lir::Module::new();
    let rt = runtime(&mut m);

    // Branchless tokeniser, as if-converted native code would look: every
    // byte updates a bucket (with a +0 when mid-word) and the rolling hash
    // is reset through a select.
    let worker = {
        let mut fb = Fb::new("wc_worker", vec![Ty::Ptr(Pointee::I8)], Ty::I64);
        let args = fb.cast_ptr(Pointee::I64, Operand::Param(0));
        let data_i = fb.load(Ty::I64, args);
        let data = fb.op(
            Ty::Ptr(Pointee::I8),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: data_i,
            },
        );
        let p1 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(1), 8);
        let start = fb.load(Ty::I64, p1);
        let p2 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(2), 8);
        let end = fb.load(Ty::I64, p2);
        let start8 = fb.bin(BinOp::Shl, Ty::I64, start, Operand::i64(3));
        let end8 = fb.bin(BinOp::Shl, Ty::I64, end, Operand::i64(3));
        let local = fb.call(
            Ty::Ptr(Pointee::I8),
            Callee::Extern(rt.malloc),
            vec![Operand::i64(TABLE_BYTES as i64)],
        );
        let local_int = fb.op(
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: local,
            },
        );
        fb.call(
            Ty::I64,
            Callee::Extern(rt.memset),
            vec![local_int, Operand::i64(0), Operand::i64(TABLE_BYTES as i64)],
        );
        let local64 = fb.cast_ptr(Pointee::I64, local);
        fb.counted_loop(
            start8,
            end8,
            &[Ty::I64],
            &[Operand::i64(0)],
            |fb, p, accs| {
                let h = accs[0];
                let bp = fb.gep(Ty::Ptr(Pointee::I8), data, p, 1);
                let byte = fb.load(Ty::I8, bp);
                let c = fb.op(
                    Ty::I64,
                    InstKind::Cast {
                        op: CastOp::ZExt,
                        val: byte,
                    },
                );
                let is_space = fb.icmp(IPred::Eq, c, Operand::i64(b' ' as i64));
                let bucket = fb.bin(BinOp::And, Ty::I64, h, Operand::i64((BUCKETS - 1) as i64));
                let delta = fb.op(
                    Ty::I64,
                    InstKind::Cast {
                        op: CastOp::ZExt,
                        val: is_space,
                    },
                );
                let cnt_p = fb.gep(Ty::Ptr(Pointee::I64), local64, bucket, 8);
                let cnt = fb.load(Ty::I64, cnt_p);
                let cnt2 = fb.add(cnt, delta);
                fb.store(cnt_p, cnt2);
                let hadd = fb.op(
                    Ty::I64,
                    InstKind::Select {
                        cond: is_space,
                        if_true: h,
                        if_false: Operand::i64(0),
                    },
                );
                let sidx = fb.add(bucket, Operand::i64(BUCKETS as i64));
                let sum_p = fb.gep(Ty::Ptr(Pointee::I64), local64, sidx, 8);
                let sum = fb.load(Ty::I64, sum_p);
                let sum2 = fb.add(sum, hadd);
                fb.store(sum_p, sum2);
                let h31 = fb.mul(h, Operand::i64(31));
                let hc = fb.add(h31, c);
                let h_next = fb.op(
                    Ty::I64,
                    InstKind::Select {
                        cond: is_space,
                        if_true: Operand::i64(0),
                        if_false: hc,
                    },
                );
                vec![h_next]
            },
        );
        let p5 = fb.gep(Ty::Ptr(Pointee::I64), args, Operand::i64(5), 8);
        fb.store(p5, local_int);
        let f = fb.ret(Some(Operand::i64(0)));
        m.add_func(f)
    };

    let threads = THREADS;
    let rt_ref = &rt;
    fork_join_main(
        &mut m,
        rt_ref,
        worker,
        "main",
        vec![Ty::I64, Ty::I64],
        |_| Operand::Param(1),
        |_fb| (Operand::Param(0), Operand::i64(0)),
        move |fb, slots| {
            // global table
            let table = fb.call(
                Ty::Ptr(Pointee::I8),
                Callee::Extern(rt_ref.malloc),
                vec![Operand::i64(TABLE_BYTES as i64)],
            );
            let table_int = fb.op(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: table,
                },
            );
            fb.call(
                Ty::I64,
                Callee::Extern(rt_ref.memset),
                vec![table_int, Operand::i64(0), Operand::i64(TABLE_BYTES as i64)],
            );
            let table64 = fb.cast_ptr(Pointee::I64, table);
            // merge
            fb.counted_loop(
                Operand::i64(0),
                Operand::i64(threads as i64),
                &[],
                &[],
                |fb, t, _| {
                    let ap = {
                        let x = fb.add(t, Operand::i64(threads as i64));
                        fb.gep(Ty::Ptr(Pointee::I64), slots, x, 8)
                    };
                    let a = fb.load(Ty::I64, ap);
                    let a64 = fb.op(
                        Ty::Ptr(Pointee::I64),
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: a,
                        },
                    );
                    let lp = fb.gep(Ty::Ptr(Pointee::I64), a64, Operand::i64(5), 8);
                    let l = fb.load(Ty::I64, lp);
                    let local = fb.op(
                        Ty::Ptr(Pointee::I64),
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: l,
                        },
                    );
                    fb.counted_loop(
                        Operand::i64(0),
                        Operand::i64(2 * BUCKETS as i64),
                        &[],
                        &[],
                        |fb, i, _| {
                            let src = fb.gep(Ty::Ptr(Pointee::I64), local, i, 8);
                            let v = fb.load(Ty::I64, src);
                            let dst = fb.gep(Ty::Ptr(Pointee::I64), table64, i, 8);
                            let old = fb.load(Ty::I64, dst);
                            let s = fb.add(old, v);
                            fb.store(dst, s);
                            vec![]
                        },
                    );
                    vec![]
                },
            );
            // checksum = Σ_b (b+1)*counts[b] + hashsum[b]
            let sums = fb.counted_loop(
                Operand::i64(0),
                Operand::i64(BUCKETS as i64),
                &[Ty::I64],
                &[Operand::i64(0)],
                |fb, bkt, accs| {
                    let cp = fb.gep(Ty::Ptr(Pointee::I64), table64, bkt, 8);
                    let c = fb.load(Ty::I64, cp);
                    let k = fb.add(bkt, Operand::i64(1));
                    let prod = fb.mul(c, k);
                    let hidx = fb.add(bkt, Operand::i64(BUCKETS as i64));
                    let hp = fb.gep(Ty::Ptr(Pointee::I64), table64, hidx, 8);
                    let hs = fb.load(Ty::I64, hp);
                    let s1 = fb.add(accs[0], prod);
                    vec![fb.add(s1, hs)]
                },
            );
            sums[0]
        },
        threads,
    );
    m
}

/// Deterministic workload: `n` words of 7 low-entropy lowercase letters
/// plus a trailing space, so duplicates occur and every token terminates.
pub fn workload(n: usize) -> Workload {
    let n = n.max(8);
    let raw = crate::lcg_bytes(7 * n, 0x57C0_u64);
    let mut text = Vec::with_capacity(8 * n);
    let mut counts = vec![0u64; BUCKETS as usize];
    let mut sums = vec![0u64; BUCKETS as usize];
    for w in 0..n {
        let mut h = 0u64;
        for k in 0..7 {
            // 16 distinct letters keeps the vocabulary small.
            let c = b'a' + raw[7 * w + k] % 16;
            text.push(c);
            h = h.wrapping_mul(31).wrapping_add(u64::from(c));
        }
        text.push(b' ');
        let bucket = (h & (BUCKETS - 1)) as usize;
        counts[bucket] += 1;
        sums[bucket] = sums[bucket].wrapping_add(h);
    }
    let mut expected = 0u64;
    for b in 0..BUCKETS as usize {
        expected = expected
            .wrapping_add((b as u64 + 1).wrapping_mul(counts[b]))
            .wrapping_add(sums[b]);
    }
    Workload {
        name: "word_count",
        mem_init: vec![(WORKLOAD_BASE, text)],
        args: vec![WORKLOAD_BASE, n as u64],
        expected_ret: expected,
    }
}
