//! Shorthand constructors for hand-assembling the Phoenix benchmark
//! binaries (compact wrappers over `lasagne_x86::inst::Inst`).

use lasagne_x86::inst::{AluOp, Inst, MemRef, Rm, ShiftOp, Target};
use lasagne_x86::reg::{Gpr, Width};

/// `mov r64, imm` (chooses `mov r/m, imm32` or `movabs`).
pub fn movri(r: Gpr, v: i64) -> Inst {
    if i32::try_from(v).is_ok() {
        Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(r),
            imm: v as i32,
        }
    } else {
        Inst::MovAbs {
            dst: r,
            imm: v as u64,
        }
    }
}

/// `mov dst, src` (64-bit reg-reg).
pub fn movrr(dst: Gpr, src: Gpr) -> Inst {
    Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Reg(dst),
        src,
    }
}

/// `mov dst, [mem]` (64-bit load).
pub fn loadq(dst: Gpr, mem: MemRef) -> Inst {
    Inst::MovRRm {
        w: Width::W64,
        dst,
        src: Rm::Mem(mem),
    }
}

/// `mov [mem], src` (64-bit store).
pub fn storeq(mem: MemRef, src: Gpr) -> Inst {
    Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Mem(mem),
        src,
    }
}

/// `op r64, imm`.
pub fn alui(op: AluOp, r: Gpr, imm: i32) -> Inst {
    Inst::AluRmI {
        op,
        w: Width::W64,
        dst: Rm::Reg(r),
        imm,
    }
}

/// `op dst, src` (64-bit reg-reg ALU).
pub fn alurr(op: AluOp, dst: Gpr, src: Gpr) -> Inst {
    Inst::AluRRm {
        op,
        w: Width::W64,
        dst,
        src: Rm::Reg(src),
    }
}

/// `op dst, [mem]`.
pub fn alurm(op: AluOp, dst: Gpr, mem: MemRef) -> Inst {
    Inst::AluRRm {
        op,
        w: Width::W64,
        dst,
        src: Rm::Mem(mem),
    }
}

/// `shl/shr/sar r, imm`.
pub fn shifti(op: ShiftOp, r: Gpr, imm: u8) -> Inst {
    Inst::ShiftI {
        op,
        w: Width::W64,
        dst: Rm::Reg(r),
        imm,
    }
}

/// `cmp a, b` (64-bit).
pub fn cmprr(a: Gpr, b: Gpr) -> Inst {
    Inst::AluRRm {
        op: AluOp::Cmp,
        w: Width::W64,
        dst: a,
        src: Rm::Reg(b),
    }
}

/// `cmp r, imm`.
pub fn cmpri(r: Gpr, imm: i32) -> Inst {
    Inst::AluRmI {
        op: AluOp::Cmp,
        w: Width::W64,
        dst: Rm::Reg(r),
        imm,
    }
}

/// `call abs`.
pub fn call(addr: u64) -> Inst {
    Inst::Call {
        target: Target::Abs(addr),
    }
}

/// `[base + idx*scale + disp]`.
pub fn mem_bi(base: Gpr, idx: Gpr, scale: u8, disp: i64) -> MemRef {
    MemRef::base_index(base, idx, scale, disp)
}

/// `[base + disp]`.
pub fn mem_bd(base: Gpr, disp: i64) -> MemRef {
    MemRef::base_disp(base, disp)
}

/// `[base]`.
pub fn mem_b(base: Gpr) -> MemRef {
    MemRef::base(base)
}

/// `lea r, [rip + func]` — materialise a function address the way
/// compilers do (RIP-relative), so the lifter resolves the symbol.
pub fn lea_func(r: Gpr, func_addr: u64) -> Inst {
    Inst::Lea {
        w: Width::W64,
        dst: r,
        addr: MemRef::rip(func_addr),
    }
}
