//! The Phoenix multi-threaded benchmark suite (Table 1 of the paper),
//! synthesised as genuine x86-64 binaries for the lifter to consume, plus
//! native-LIR Arm baselines and deterministic workload generators.
//!
//! The seven programs — `histogram`, `kmeans`, `linear_regression`,
//! `matrix_multiply`, `pca`, `string_match`, `word_count` — follow the
//! originals' structure:
//! a `main` that splits the input across four pthreads, per-thread workers
//! with private accumulators, and a merge phase. Each benchmark provides:
//!
//! * [`Benchmark::binary`] — the x86-64 machine-code image (the evaluation
//!   input);
//! * [`Benchmark::native`] — clean LIR as a native Arm compile would emit
//!   (the Figure 12/16 baseline);
//! * [`Benchmark::workload`] — a deterministic input plus the expected
//!   checksum computed by a Rust reference implementation.
//!
//! # Example
//!
//! ```
//! use lasagne_phoenix::all_benchmarks;
//!
//! let benches = all_benchmarks(256);
//! assert_eq!(benches.len(), 7);
//! for b in &benches {
//!     assert!(!b.binary.functions.is_empty());
//! }
//! ```

#![warn(missing_docs)]

pub mod builders;
pub mod histogram;
pub mod kmeans;
pub mod linreg;
pub mod matmul;
pub mod native;
pub mod pca;
pub mod strmatch;
pub mod word_count;

use lasagne_x86::binary::Binary;

/// Base address where workload input data is pre-placed (distinct from the
/// interpreter heap so `malloc` cannot collide with it).
pub const WORKLOAD_BASE: u64 = 0x4000_0000;

/// A deterministic benchmark input.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name.
    pub name: &'static str,
    /// `(address, bytes)` pairs to write before running.
    pub mem_init: Vec<(u64, Vec<u8>)>,
    /// Integer arguments passed to `main`.
    pub args: Vec<u64>,
    /// Expected `main` return value (a checksum).
    pub expected_ret: u64,
}

/// One benchmark: the binary, its native baseline, and a workload.
pub struct Benchmark {
    /// Display name.
    pub name: &'static str,
    /// Table 1 abbreviation.
    pub abbrev: &'static str,
    /// The x86-64 image.
    pub binary: Binary,
    /// The native-LIR baseline module.
    pub native: lasagne_lir::Module,
    /// Deterministic input.
    pub workload: Workload,
}

/// Deterministic pseudo-random bytes (64-bit LCG).
pub fn lcg_bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut s = (seed << 1) | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u8
        })
        .collect()
}

/// Deterministic pseudo-random u64 stream.
pub fn lcg_u64(n: usize, seed: u64) -> Vec<u64> {
    let mut s = (seed << 1) | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 16
        })
        .collect()
}

/// Builds all seven benchmarks at the given scale (≈ input element count).
pub fn all_benchmarks(scale: usize) -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "histogram",
            abbrev: "HT",
            binary: histogram::binary(),
            native: histogram::native(),
            workload: histogram::workload(scale * 4),
        },
        Benchmark {
            name: "kmeans",
            abbrev: "KM",
            binary: kmeans::binary(),
            native: kmeans::native(),
            workload: kmeans::workload(scale.max(16)),
        },
        Benchmark {
            name: "linear_regression",
            abbrev: "LR",
            binary: linreg::binary(),
            native: linreg::native(),
            workload: linreg::workload(scale),
        },
        Benchmark {
            name: "matrix_multiply",
            abbrev: "MM",
            binary: matmul::binary(),
            native: matmul::native(),
            workload: matmul::workload(((scale as f64).sqrt() as usize).clamp(8, 64)),
        },
        Benchmark {
            name: "pca",
            abbrev: "PCA",
            binary: pca::binary(),
            native: pca::native(),
            workload: pca::workload(scale),
        },
        Benchmark {
            name: "string_match",
            abbrev: "SM",
            binary: strmatch::binary(),
            native: strmatch::native(),
            workload: strmatch::workload(scale),
        },
        Benchmark {
            name: "word_count",
            abbrev: "WC",
            binary: word_count::binary(),
            native: word_count::native(),
            workload: word_count::workload(scale * 2),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        assert_eq!(lcg_bytes(16, 42), lcg_bytes(16, 42));
        assert_ne!(lcg_bytes(16, 42), lcg_bytes(16, 43));
        assert_eq!(lcg_u64(8, 1), lcg_u64(8, 1));
    }

    #[test]
    fn table1_function_counts() {
        // Table 1: HT 4, KM 7, LR 2, MM 3, PCA 4, SM 5, WC 5 functions.
        let expect = [
            ("HT", 4),
            ("KM", 7),
            ("LR", 2),
            ("MM", 3),
            ("PCA", 4),
            ("SM", 5),
            ("WC", 5),
        ];
        for b in all_benchmarks(64) {
            let want = expect.iter().find(|(a, _)| *a == b.abbrev).unwrap().1;
            assert_eq!(
                b.binary.functions.len(),
                want,
                "{}: expected {want} functions, got {:?}",
                b.name,
                b.binary
                    .functions
                    .iter()
                    .map(|f| &f.name)
                    .collect::<Vec<_>>()
            );
        }
    }
}
