//! End-to-end correctness: every Phoenix binary, lifted and interpreted,
//! must produce its reference checksum — and keep producing it through
//! every stage of the Lasagne pipeline (refinement, fence placement,
//! optimization, Arm lowering).

use lasagne_armgen::lower::lower_module;
use lasagne_armgen::machine::ArmMachine;
use lasagne_lir::interp::{Machine, Val};
use lasagne_lir::Module;
use lasagne_phoenix::{all_benchmarks, Benchmark, Workload};

fn run_lir(m: &Module, w: &Workload) -> u64 {
    let id = m.func_by_name("main").expect("main");
    let mut machine = Machine::new(m);
    for (addr, bytes) in &w.mem_init {
        machine.mem.write(*addr, bytes);
    }
    let args: Vec<Val> = w.args.iter().map(|a| Val::B64(*a)).collect();
    let r = machine
        .run(id, &args)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    r.ret.expect("return value").bits()
}

fn run_arm(m: &Module, w: &Workload) -> u64 {
    let amod = lower_module(m);
    let idx = amod.func_by_name("main").expect("main");
    let mut arm = ArmMachine::new(&amod);
    for (addr, bytes) in &w.mem_init {
        arm.mem.write(*addr, bytes);
    }
    let r = arm
        .run(idx, &w.args, &[])
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    r.ret
}

fn lifted(b: &Benchmark) -> Module {
    lasagne_lifter::lift_binary(&b.binary).unwrap_or_else(|e| panic!("{}: {e}", b.name))
}

#[test]
fn lifted_binaries_compute_reference_checksums() {
    for b in all_benchmarks(96) {
        let m = lifted(&b);
        let got = run_lir(&m, &b.workload);
        assert_eq!(got, b.workload.expected_ret, "{} lifted checksum", b.name);
    }
}

#[test]
fn native_baselines_compute_reference_checksums() {
    for b in all_benchmarks(96) {
        lasagne_lir::verify::verify_module(&b.native)
            .unwrap_or_else(|e| panic!("{}: {e:?}", b.name));
        let got = run_lir(&b.native, &b.workload);
        assert_eq!(got, b.workload.expected_ret, "{} native checksum", b.name);
    }
}

#[test]
fn full_pipeline_preserves_checksums() {
    for b in all_benchmarks(64) {
        let mut m = lifted(&b);
        lasagne_refine::refine_module(&mut m);
        lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::StackAware);
        lasagne_fences::merge_fences_module(&mut m);
        lasagne_opt::standard_pipeline(&mut m, 3);
        lasagne_lir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e:?}", b.name));
        let got = run_lir(&m, &b.workload);
        assert_eq!(
            got, b.workload.expected_ret,
            "{} optimized checksum",
            b.name
        );
    }
}

#[test]
fn arm_translations_compute_reference_checksums() {
    for b in all_benchmarks(48) {
        let mut m = lifted(&b);
        lasagne_refine::refine_module(&mut m);
        lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::StackAware);
        lasagne_fences::merge_fences_module(&mut m);
        lasagne_opt::standard_pipeline(&mut m, 3);
        let got = run_arm(&m, &b.workload);
        assert_eq!(got, b.workload.expected_ret, "{} Arm checksum", b.name);
        // Native baseline on Arm too.
        let native_got = run_arm(&b.native, &b.workload);
        assert_eq!(
            native_got, b.workload.expected_ret,
            "{} native Arm checksum",
            b.name
        );
    }
}

/// Chunking edge cases: inputs that are tiny (n < threads), not divisible
/// by the thread count, and larger — every size must still verify.
#[test]
fn workload_scales_and_remainders() {
    // histogram and linear_regression take arbitrary n directly.
    for scale in [16usize, 33, 101] {
        let w = lasagne_phoenix::histogram::workload(scale);
        let m = lasagne_lifter::lift_binary(&lasagne_phoenix::histogram::binary()).unwrap();
        assert_eq!(run_lir(&m, &w), w.expected_ret, "histogram n={scale}");

        let w = lasagne_phoenix::linreg::workload(scale);
        let m = lasagne_lifter::lift_binary(&lasagne_phoenix::linreg::binary()).unwrap();
        assert_eq!(run_lir(&m, &w), w.expected_ret, "linreg n={scale}");
    }
    // A remainder-heavy kmeans (n % 4 != 0).
    let w = lasagne_phoenix::kmeans::workload(29);
    let m = lasagne_lifter::lift_binary(&lasagne_phoenix::kmeans::binary()).unwrap();
    assert_eq!(run_lir(&m, &w), w.expected_ret, "kmeans n=29");
    // string_match with remainder.
    let w = lasagne_phoenix::strmatch::workload(27);
    let m = lasagne_lifter::lift_binary(&lasagne_phoenix::strmatch::binary()).unwrap();
    assert_eq!(run_lir(&m, &w), w.expected_ret, "strmatch n=27");
    // matrix_multiply with an odd dimension.
    let w = lasagne_phoenix::matmul::workload(9);
    let m = lasagne_lifter::lift_binary(&lasagne_phoenix::matmul::binary()).unwrap();
    assert_eq!(run_lir(&m, &w), w.expected_ret, "matmul n=9");
}
