//! Property test: every encodable instruction decodes back to itself and
//! prints identically before and after the round trip. Cases derive from
//! the qc runner's fixed workspace seed, so the sweep is reproducible.

use lasagne_qc::collection;
use lasagne_qc::prelude::*;
use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, MulDivOp, Rm, ShiftOp, SseOp, Target, XmmRm};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};
use lasagne_x86::{decode_one, encode};

fn any_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(Gpr::from_encoding)
}

fn any_xmm() -> impl Strategy<Value = Xmm> {
    (0u8..16).prop_map(Xmm)
}

fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(Cond::from_encoding)
}

fn any_mem() -> impl Strategy<Value = MemRef> {
    prop_oneof![
        (any_gpr(), -512i64..512).prop_map(|(b, d)| MemRef::base_disp(b, d)),
        (
            any_gpr(),
            any_gpr().prop_filter("index != rsp", |r| *r != Gpr::Rsp),
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
            -100_000i64..100_000
        )
            .prop_map(|(b, i, s, d)| MemRef::base_index(b, i, s, d)),
        (0x40_0000u64..0x80_0000).prop_map(MemRef::rip),
        (0x1000u64..0x7fff_0000).prop_map(MemRef::abs),
    ]
}

fn any_rm() -> impl Strategy<Value = Rm> {
    prop_oneof![any_gpr().prop_map(Rm::Reg), any_mem().prop_map(Rm::Mem)]
}

fn any_xmmrm() -> impl Strategy<Value = XmmRm> {
    prop_oneof![
        any_xmm().prop_map(XmmRm::Reg),
        any_mem().prop_map(XmmRm::Mem)
    ]
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Or),
        Just(AluOp::Adc),
        Just(AluOp::Sbb),
        Just(AluOp::And),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Cmp),
    ]
}

fn any_prec() -> impl Strategy<Value = FpPrec> {
    prop_oneof![Just(FpPrec::Single), Just(FpPrec::Double)]
}

fn any_sse_op() -> impl Strategy<Value = SseOp> {
    prop_oneof![
        Just(SseOp::Add),
        Just(SseOp::Sub),
        Just(SseOp::Mul),
        Just(SseOp::Div),
        Just(SseOp::Min),
        Just(SseOp::Max),
        Just(SseOp::Sqrt),
    ]
}

fn any_iw() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W32), Just(Width::W64)]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_width(), any_gpr(), any_rm()).prop_map(|(w, dst, src)| Inst::MovRRm { w, dst, src }),
        (any_width(), any_rm(), any_gpr()).prop_map(|(w, dst, src)| Inst::MovRmR { w, dst, src }),
        (any_iw(), any_rm(), any::<i32>()).prop_map(|(w, dst, imm)| Inst::MovRmI { w, dst, imm }),
        (any_gpr(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovAbs { dst, imm }),
        (any_alu_op(), any_width(), any_gpr(), any_rm())
            .prop_map(|(op, w, dst, src)| Inst::AluRRm { op, w, dst, src }),
        (any_alu_op(), any_width(), any_rm(), any_gpr())
            .prop_map(|(op, w, dst, src)| Inst::AluRmR { op, w, dst, src }),
        (any_alu_op(), any_iw(), any_rm(), any::<i32>())
            .prop_map(|(op, w, dst, imm)| Inst::AluRmI { op, w, dst, imm }),
        (any_width(), any_rm(), any_gpr()).prop_map(|(w, a, b)| Inst::Test { w, a, b }),
        (
            prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)],
            any_iw(),
            any_rm(),
            0u8..64
        )
            .prop_map(|(op, w, dst, imm)| Inst::ShiftI { op, w, dst, imm }),
        (any_iw(), any_gpr(), any_rm()).prop_map(|(w, dst, src)| Inst::IMul2 { w, dst, src }),
        (
            prop_oneof![
                Just(MulDivOp::Mul),
                Just(MulDivOp::IMul),
                Just(MulDivOp::Div),
                Just(MulDivOp::IDiv)
            ],
            any_iw(),
            any_rm()
        )
            .prop_map(|(op, w, src)| Inst::MulDiv { op, w, src }),
        (any_gpr()).prop_map(|src| Inst::Push { src }),
        (any_gpr()).prop_map(|dst| Inst::Pop { dst }),
        (0x40_0000u64..0x50_0000).prop_map(|t| Inst::Jmp {
            target: Target::Abs(t)
        }),
        (any_cond(), 0x40_0000u64..0x50_0000).prop_map(|(cc, t)| Inst::Jcc {
            cc,
            target: Target::Abs(t)
        }),
        (0x40_0000u64..0x50_0000).prop_map(|t| Inst::Call {
            target: Target::Abs(t)
        }),
        (any_cond(), any_rm()).prop_map(|(cc, dst)| Inst::Setcc { cc, dst }),
        (any_cond(), any_iw(), any_gpr(), any_rm()).prop_map(|(cc, w, dst, src)| Inst::Cmovcc {
            cc,
            w,
            dst,
            src
        }),
        (any_prec(), any_xmm(), any_xmmrm()).prop_map(|(prec, dst, src)| Inst::MovssLoad {
            prec,
            dst,
            src
        }),
        (any_prec(), any_mem(), any_xmm()).prop_map(|(prec, dst, src)| Inst::MovssStore {
            prec,
            dst,
            src
        }),
        (any_sse_op(), any_prec(), any_xmm(), any_xmmrm())
            .prop_map(|(op, prec, dst, src)| Inst::SseScalar { op, prec, dst, src }),
        (any_sse_op(), any_prec(), any_xmm(), any_xmmrm())
            .prop_map(|(op, prec, dst, src)| Inst::SsePacked { op, prec, dst, src }),
        (any_prec(), any_xmm(), any_xmmrm()).prop_map(|(prec, a, b)| Inst::Ucomis { prec, a, b }),
        (any_prec(), any_iw(), any_xmm(), any_rm())
            .prop_map(|(prec, iw, dst, src)| Inst::CvtSi2F { prec, iw, dst, src }),
        (any_prec(), any_iw(), any_gpr(), any_xmmrm())
            .prop_map(|(prec, iw, dst, src)| Inst::CvtF2Si { prec, iw, dst, src }),
        Just(Inst::Mfence),
        (any_iw(), any_mem(), any_gpr()).prop_map(|(w, mem, src)| Inst::LockCmpxchg {
            w,
            mem,
            src
        }),
        (any_iw(), any_mem(), any_gpr()).prop_map(|(w, mem, src)| Inst::LockXadd { w, mem, src }),
        (any_iw(), any_mem(), any::<i32>()).prop_map(|(w, mem, imm)| Inst::LockAddI {
            w,
            mem,
            imm
        }),
        (any_iw(), any_mem(), any_gpr()).prop_map(|(w, mem, src)| Inst::Xchg { w, mem, src }),
    ]
}

properties! {
    config = Config::with_cases(2048);

    fn encode_decode_roundtrip(inst in any_inst(), addr in 0x40_0000u64..0x4f_0000) {
        let mut bytes = Vec::new();
        let len = encode(&inst, addr, &mut bytes).unwrap();
        prop_assert!(len <= 15, "x86 instructions are at most 15 bytes");
        let d = decode_one(&bytes, addr).map_err(|e| {
            TestCaseError::fail(format!("decode failed for {inst}: {e} bytes={bytes:02x?}"))
        })?;
        prop_assert_eq!(&d.inst, &inst, "bytes: {:02x?}", bytes);
        prop_assert_eq!(d.len, len);
        // The printed form must survive the round trip too: `Display` may
        // only depend on the instruction value, never on how it was built
        // or which encoding produced it.
        prop_assert_eq!(d.inst.to_string(), inst.to_string());
        prop_assert!(!inst.to_string().is_empty());
    }
}

/// Pins the exact `Display` output for a representative instruction from
/// each group, so any drift in the printed syntax (which regression-seed
/// comments, `explain` traces, and counterexample reports all quote) fails
/// loudly instead of silently rewriting every persisted artifact.
#[test]
fn printed_forms_are_stable() {
    let cases: &[(Inst, &str)] = &[
        (
            Inst::MovRRm {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rdi),
            },
            "mov32 eax, rdi",
        ),
        (
            Inst::MovAbs {
                dst: Gpr::Rdi,
                imm: 0xdead_beef,
            },
            "movabs rdi, 0xdeadbeef",
        ),
        (
            Inst::AluRmI {
                op: AluOp::Add,
                w: Width::W64,
                dst: Rm::Mem(MemRef::base_disp(Gpr::Rbx, 8)),
                imm: 5,
            },
            "add64 [rbx + 0x8], 5",
        ),
        (
            Inst::ShiftCl {
                op: ShiftOp::Shl,
                w: Width::W32,
                dst: Rm::Reg(Gpr::Rcx),
            },
            "shl32 rcx, cl",
        ),
        (
            Inst::MulDiv {
                op: MulDivOp::IDiv,
                w: Width::W64,
                src: Rm::Reg(Gpr::Rsi),
            },
            "idiv64 rsi",
        ),
        (
            Inst::Jcc {
                cc: Cond::Ne,
                target: Target::Abs(0x40_1000),
            },
            "jne 0x401000",
        ),
        (
            Inst::SseScalar {
                op: SseOp::Add,
                prec: FpPrec::Double,
                dst: Xmm(0),
                src: XmmRm::Reg(Xmm(1)),
            },
            "addsd xmm0, xmm1",
        ),
        (
            Inst::CvtF2Si {
                prec: FpPrec::Double,
                iw: Width::W64,
                dst: Gpr::Rax,
                src: XmmRm::Reg(Xmm(0)),
            },
            "cvttsd2si rax, xmm0",
        ),
        (
            Inst::LockXadd {
                w: Width::W64,
                mem: MemRef::base(Gpr::Rdi),
                src: Gpr::Rax,
            },
            "lock xadd64 [rdi], rax",
        ),
        (Inst::Mfence, "mfence"),
    ];
    for (inst, want) in cases {
        assert_eq!(&inst.to_string(), want, "printed form drifted: {inst:?}");
        let mut bytes = Vec::new();
        let len = lasagne_x86::encode(inst, 0x40_0000, &mut bytes).unwrap();
        let d = decode_one(&bytes, 0x40_0000).unwrap();
        assert_eq!(&d.inst, inst);
        assert_eq!(d.len, len);
        assert_eq!(&d.inst.to_string(), want, "round trip changed printing");
    }
}

properties! {
    config = Config::with_cases(512);

    /// Decoding random byte soup must never panic — it either produces
    /// instructions or a typed error.
    fn decoder_total_on_garbage(bytes in collection::vec(any::<u8>(), 1..16)) {
        let _ = decode_one(&bytes, 0x1000); // must not panic
    }
}
