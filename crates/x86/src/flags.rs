//! Processor status flag metadata.
//!
//! The lifter models the x86 flags register (§4.2 of the paper: "instructions
//! that implicitly set processor status flags will result in more than one
//! LLVM instruction"). This module records which flags each instruction
//! defines and which a condition code uses, so the lifter can materialise
//! exactly the flag computations a later `jcc`/`setcc`/`cmovcc` consumes.

use crate::inst::{AluOp, Inst};
use crate::reg::Cond;

/// The subset of RFLAGS the lifter models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flag {
    /// Carry flag.
    Cf,
    /// Parity flag (of the low result byte).
    Pf,
    /// Zero flag.
    Zf,
    /// Sign flag.
    Sf,
    /// Overflow flag.
    Of,
}

impl Flag {
    /// All modelled flags.
    pub const ALL: [Flag; 5] = [Flag::Cf, Flag::Pf, Flag::Zf, Flag::Sf, Flag::Of];
}

/// A set of flags, as a small bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlagSet(u8);

impl FlagSet {
    /// The empty set.
    pub const EMPTY: FlagSet = FlagSet(0);
    /// All five modelled flags.
    pub const ALL: FlagSet = FlagSet(0b11111);
    /// The arithmetic set: CF, PF, ZF, SF, OF.
    pub const ARITH: FlagSet = FlagSet(0b11111);
    /// The logic set (CF and OF are cleared, still *defined*): CF, PF, ZF, SF, OF.
    pub const LOGIC: FlagSet = FlagSet(0b11111);

    fn bit(f: Flag) -> u8 {
        match f {
            Flag::Cf => 1,
            Flag::Pf => 2,
            Flag::Zf => 4,
            Flag::Sf => 8,
            Flag::Of => 16,
        }
    }

    /// Set containing exactly the given flags.
    pub fn of(flags: &[Flag]) -> FlagSet {
        FlagSet(flags.iter().fold(0, |m, f| m | Self::bit(*f)))
    }

    /// Whether `f` is in the set.
    pub fn contains(self, f: Flag) -> bool {
        self.0 & Self::bit(f) != 0
    }

    /// Union.
    pub fn union(self, other: FlagSet) -> FlagSet {
        FlagSet(self.0 | other.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// The flags that `cc` reads.
pub fn cond_uses(cc: Cond) -> FlagSet {
    match cc {
        Cond::O | Cond::No => FlagSet::of(&[Flag::Of]),
        Cond::B | Cond::Ae => FlagSet::of(&[Flag::Cf]),
        Cond::E | Cond::Ne => FlagSet::of(&[Flag::Zf]),
        Cond::Be | Cond::A => FlagSet::of(&[Flag::Cf, Flag::Zf]),
        Cond::S | Cond::Ns => FlagSet::of(&[Flag::Sf]),
        Cond::P | Cond::Np => FlagSet::of(&[Flag::Pf]),
        Cond::L | Cond::Ge => FlagSet::of(&[Flag::Sf, Flag::Of]),
        Cond::Le | Cond::G => FlagSet::of(&[Flag::Zf, Flag::Sf, Flag::Of]),
    }
}

/// The flags that `inst` defines (writes).
pub fn inst_defines(inst: &Inst) -> FlagSet {
    match inst {
        Inst::AluRRm { op, .. } | Inst::AluRmR { op, .. } | Inst::AluRmI { op, .. } => match op {
            AluOp::And | AluOp::Or | AluOp::Xor => FlagSet::LOGIC,
            _ => FlagSet::ARITH,
        },
        Inst::Test { .. } | Inst::TestI { .. } => FlagSet::LOGIC,
        Inst::ShiftI { .. } | Inst::ShiftCl { .. } => FlagSet::ARITH,
        Inst::IMul2 { .. } | Inst::IMul3 { .. } | Inst::MulDiv { .. } => {
            FlagSet::of(&[Flag::Cf, Flag::Of])
        }
        Inst::Neg { .. } => FlagSet::ARITH,
        Inst::Ucomis { .. } => FlagSet::of(&[Flag::Zf, Flag::Pf, Flag::Cf]),
        Inst::LockCmpxchg { .. } => FlagSet::ARITH,
        Inst::LockXadd { .. } | Inst::LockAddI { .. } => FlagSet::ARITH,
        _ => FlagSet::EMPTY,
    }
}

/// The flags that `inst` uses (reads).
pub fn inst_uses(inst: &Inst) -> FlagSet {
    match inst {
        Inst::Jcc { cc, .. } | Inst::Setcc { cc, .. } | Inst::Cmovcc { cc, .. } => cond_uses(*cc),
        Inst::AluRRm {
            op: AluOp::Adc | AluOp::Sbb,
            ..
        }
        | Inst::AluRmR {
            op: AluOp::Adc | AluOp::Sbb,
            ..
        }
        | Inst::AluRmI {
            op: AluOp::Adc | AluOp::Sbb,
            ..
        } => FlagSet::of(&[Flag::Cf]),
        _ => FlagSet::EMPTY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{MemRef, Rm};
    use crate::reg::{Gpr, Width};

    #[test]
    fn cmp_defines_what_jl_uses() {
        let cmp = Inst::AluRRm {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rbx),
        };
        let defined = inst_defines(&cmp);
        for f in [Flag::Sf, Flag::Of, Flag::Zf] {
            assert!(defined.contains(f));
        }
        let uses = cond_uses(Cond::L);
        assert!(uses.contains(Flag::Sf) && uses.contains(Flag::Of) && !uses.contains(Flag::Zf));
    }

    #[test]
    fn mov_defines_nothing() {
        let mov = Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::base(Gpr::Rdi)),
        };
        assert!(inst_defines(&mov).is_empty());
        assert!(inst_uses(&mov).is_empty());
    }

    #[test]
    fn parity_condition_uses_pf() {
        assert!(cond_uses(Cond::P).contains(Flag::Pf));
        assert!(cond_uses(Cond::Np).contains(Flag::Pf));
    }

    #[test]
    fn flagset_ops() {
        let a = FlagSet::of(&[Flag::Cf]);
        let b = FlagSet::of(&[Flag::Zf]);
        let u = a.union(b);
        assert!(u.contains(Flag::Cf) && u.contains(Flag::Zf) && !u.contains(Flag::Of));
        assert!(FlagSet::EMPTY.is_empty());
        assert!(!FlagSet::ALL.is_empty());
    }
}
