//! x86-64 machine-code decoder (disassembler).
//!
//! The inverse of [`crate::encode`](mod@crate::encode): consumes raw bytes and produces
//! [`Inst`] values with resolved (absolute) branch targets and RIP-relative
//! addresses. Together with the encoder this substitutes for the LLVM MC
//! disassembler the paper's lifter is built on.

use crate::inst::{AluOp, FpPrec, Inst, MemRef, MulDivOp, Rm, ShiftOp, SseOp, Target, XmmRm};
use crate::reg::{Cond, Gpr, Width, Xmm};

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-instruction.
    Truncated {
        /// Address of the instruction being decoded.
        at: u64,
    },
    /// An opcode (or opcode/prefix combination) outside the supported subset.
    UnsupportedOpcode {
        /// Address of the instruction.
        at: u64,
        /// The offending opcode byte.
        opcode: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { at } => write!(f, "truncated instruction at {at:#x}"),
            DecodeError::UnsupportedOpcode { at, opcode } => {
                write!(f, "unsupported opcode {opcode:#04x} at {at:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// One decoded instruction together with its location and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The instruction.
    pub inst: Inst,
    /// Address of the first byte.
    pub addr: u64,
    /// Encoded length in bytes.
    pub len: usize,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    start_addr: u64,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated {
            at: self.start_addr,
        })?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut b = [0u8; 4];
        for v in &mut b {
            *v = self.u8()?;
        }
        Ok(i32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut b = [0u8; 8];
        for v in &mut b {
            *v = self.u8()?;
        }
        Ok(u64::from_le_bytes(b))
    }
}

#[derive(Default, Clone, Copy)]
struct Prefixes {
    lock: bool,
    p66: bool,
    f2: bool,
    f3: bool,
    rex: u8,
}

impl Prefixes {
    fn rex_w(&self) -> bool {
        self.rex & 0x08 != 0
    }
    fn rex_r(&self) -> u8 {
        (self.rex & 0x04) << 1
    }
    fn rex_x(&self) -> u8 {
        (self.rex & 0x02) << 2
    }
    fn rex_b(&self) -> u8 {
        (self.rex & 0x01) << 3
    }

    fn width(&self) -> Width {
        if self.rex_w() {
            Width::W64
        } else if self.p66 {
            Width::W16
        } else {
            Width::W32
        }
    }
}

/// Result of ModRM decoding.
struct ModRm {
    /// `reg` field (REX.R extended).
    reg: u8,
    /// The r/m operand.
    rm: Rm,
}

/// A memory operand placeholder for RIP-relative fixup: the displacement
/// read from the stream is relative to the *end* of the instruction, so we
/// patch it once the full length is known.
struct PendingRip {
    disp32: i32,
}

fn decode_modrm(
    c: &mut Cursor<'_>,
    p: &Prefixes,
    rip: &mut Option<PendingRip>,
) -> Result<ModRm, DecodeError> {
    let modrm = c.u8()?;
    let md = modrm >> 6;
    let reg = ((modrm >> 3) & 7) | p.rex_r();
    let rm_bits = modrm & 7;
    if md == 0b11 {
        return Ok(ModRm {
            reg,
            rm: Rm::Reg(Gpr::from_encoding(rm_bits | p.rex_b())),
        });
    }
    // Memory forms.
    let (base, index, scale): (Option<Gpr>, Option<Gpr>, u8) = if rm_bits == 0b100 {
        // SIB byte follows.
        let sib = c.u8()?;
        let scale = 1u8 << (sib >> 6);
        let idx_bits = ((sib >> 3) & 7) | p.rex_x();
        let index = if idx_bits == 0b100 {
            None
        } else {
            Some(Gpr::from_encoding(idx_bits))
        };
        let base_bits = (sib & 7) | p.rex_b();
        let base = if (sib & 7) == 0b101 && md == 0b00 {
            None // disp32 with no base
        } else {
            Some(Gpr::from_encoding(base_bits))
        };
        (base, index, scale)
    } else if rm_bits == 0b101 && md == 0b00 {
        // RIP-relative.
        let disp32 = c.i32()?;
        *rip = Some(PendingRip { disp32 });
        return Ok(ModRm {
            reg,
            rm: Rm::Mem(MemRef {
                base: None,
                index: None,
                scale: 1,
                disp: 0,
                rip_relative: true,
            }),
        });
    } else {
        (Some(Gpr::from_encoding(rm_bits | p.rex_b())), None, 1)
    };
    let disp: i64 = match md {
        0b00 => {
            if base.is_none() {
                i64::from(c.i32()?)
            } else {
                0
            }
        }
        0b01 => i64::from(c.i8()?),
        0b10 => i64::from(c.i32()?),
        _ => unreachable!(),
    };
    Ok(ModRm {
        reg,
        rm: Rm::Mem(MemRef {
            base,
            index,
            scale,
            disp,
            rip_relative: false,
        }),
    })
}

fn to_xmmrm(rm: Rm) -> XmmRm {
    match rm {
        Rm::Reg(r) => XmmRm::Reg(Xmm(r.encoding())),
        Rm::Mem(m) => XmmRm::Mem(m),
    }
}

fn expect_mem(rm: Rm, at: u64, opcode: u8) -> Result<MemRef, DecodeError> {
    match rm {
        Rm::Mem(m) => Ok(m),
        Rm::Reg(_) => Err(DecodeError::UnsupportedOpcode { at, opcode }),
    }
}

/// Decodes a single instruction starting at `bytes[0]`, which lives at
/// address `addr`.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if the byte slice ends mid-instruction
/// and [`DecodeError::UnsupportedOpcode`] for encodings outside the
/// supported subset.
pub fn decode_one(bytes: &[u8], addr: u64) -> Result<Decoded, DecodeError> {
    let mut c = Cursor {
        bytes,
        pos: 0,
        start_addr: addr,
    };
    let mut p = Prefixes::default();

    // Legacy prefixes + REX (REX must be last).
    loop {
        match c.peek() {
            Some(0xF0) => {
                p.lock = true;
                c.pos += 1;
            }
            Some(0x66) => {
                p.p66 = true;
                c.pos += 1;
            }
            Some(0xF2) => {
                p.f2 = true;
                c.pos += 1;
            }
            Some(0xF3) => {
                p.f3 = true;
                c.pos += 1;
            }
            Some(b) if (0x40..=0x4F).contains(&b) => {
                p.rex = b;
                c.pos += 1;
                break;
            }
            _ => break,
        }
    }

    let mut rip: Option<PendingRip> = None;
    let opcode = c.u8()?;
    let w = p.width();
    let w8 = Width::W8;

    let unsup = |opcode| Err(DecodeError::UnsupportedOpcode { at: addr, opcode });

    let inst: Inst = match opcode {
        // ALU group: 00..3D excluding 0F
        0x00..=0x3D if opcode & 7 <= 3 && opcode != 0x0F => {
            let op = AluOp::from_ext(opcode >> 3);
            let form = opcode & 7;
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            match form {
                0 => Inst::AluRmR {
                    op,
                    w: w8,
                    dst: m.rm,
                    src: Gpr::from_encoding(m.reg),
                },
                1 => Inst::AluRmR {
                    op,
                    w,
                    dst: m.rm,
                    src: Gpr::from_encoding(m.reg),
                },
                2 => Inst::AluRRm {
                    op,
                    w: w8,
                    dst: Gpr::from_encoding(m.reg),
                    src: m.rm,
                },
                3 => Inst::AluRRm {
                    op,
                    w,
                    dst: Gpr::from_encoding(m.reg),
                    src: m.rm,
                },
                _ => unreachable!(),
            }
        }
        0x50..=0x57 => Inst::Push {
            src: Gpr::from_encoding((opcode - 0x50) | p.rex_b()),
        },
        0x58..=0x5F => Inst::Pop {
            dst: Gpr::from_encoding((opcode - 0x58) | p.rex_b()),
        },
        0x63 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            Inst::MovSx {
                dw: w,
                sw: Width::W32,
                dst: Gpr::from_encoding(m.reg),
                src: m.rm,
            }
        }
        0x69 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let imm = c.i32()?;
            Inst::IMul3 {
                w,
                dst: Gpr::from_encoding(m.reg),
                src: m.rm,
                imm,
            }
        }
        0x6B => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let imm = i32::from(c.i8()?);
            Inst::IMul3 {
                w,
                dst: Gpr::from_encoding(m.reg),
                src: m.rm,
                imm,
            }
        }
        0x80 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let imm = i32::from(c.i8()?);
            let op = AluOp::from_ext(m.reg & 7);
            if p.lock {
                Inst::LockAddI {
                    w: w8,
                    mem: expect_mem(m.rm, addr, opcode)?,
                    imm,
                }
            } else {
                Inst::AluRmI {
                    op,
                    w: w8,
                    dst: m.rm,
                    imm,
                }
            }
        }
        0x81 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let imm = if w == Width::W16 {
                i32::from(c.u16()? as i16)
            } else {
                c.i32()?
            };
            let op = AluOp::from_ext(m.reg & 7);
            if p.lock && op == AluOp::Add {
                Inst::LockAddI {
                    w,
                    mem: expect_mem(m.rm, addr, opcode)?,
                    imm,
                }
            } else {
                Inst::AluRmI {
                    op,
                    w,
                    dst: m.rm,
                    imm,
                }
            }
        }
        0x83 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let imm = i32::from(c.i8()?);
            let op = AluOp::from_ext(m.reg & 7);
            if p.lock && op == AluOp::Add {
                Inst::LockAddI {
                    w,
                    mem: expect_mem(m.rm, addr, opcode)?,
                    imm,
                }
            } else {
                Inst::AluRmI {
                    op,
                    w,
                    dst: m.rm,
                    imm,
                }
            }
        }
        0x84 | 0x85 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let tw = if opcode == 0x84 { w8 } else { w };
            Inst::Test {
                w: tw,
                a: m.rm,
                b: Gpr::from_encoding(m.reg),
            }
        }
        0x86 | 0x87 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let xw = if opcode == 0x86 { w8 } else { w };
            Inst::Xchg {
                w: xw,
                mem: expect_mem(m.rm, addr, opcode)?,
                src: Gpr::from_encoding(m.reg),
            }
        }
        0x88 | 0x89 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let mw = if opcode == 0x88 { w8 } else { w };
            Inst::MovRmR {
                w: mw,
                dst: m.rm,
                src: Gpr::from_encoding(m.reg),
            }
        }
        0x8A | 0x8B => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let mw = if opcode == 0x8A { w8 } else { w };
            Inst::MovRRm {
                w: mw,
                dst: Gpr::from_encoding(m.reg),
                src: m.rm,
            }
        }
        0x8D => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            Inst::Lea {
                w,
                dst: Gpr::from_encoding(m.reg),
                addr: expect_mem(m.rm, addr, opcode)?,
            }
        }
        0x90 => Inst::Nop,
        0x99 => Inst::Cqo { w },
        0xB8..=0xBF if p.rex_w() => {
            let dst = Gpr::from_encoding((opcode - 0xB8) | p.rex_b());
            let imm = c.u64()?;
            Inst::MovAbs { dst, imm }
        }
        0xC0 | 0xC1 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let sw = if opcode == 0xC0 { w8 } else { w };
            let op = match m.reg & 7 {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                _ => return unsup(opcode),
            };
            let imm = c.u8()?;
            Inst::ShiftI {
                op,
                w: sw,
                dst: m.rm,
                imm,
            }
        }
        0xC3 => Inst::Ret,
        0xC6 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let imm = i32::from(c.i8()?);
            Inst::MovRmI {
                w: w8,
                dst: m.rm,
                imm,
            }
        }
        0xC7 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let imm = if w == Width::W16 {
                i32::from(c.u16()? as i16)
            } else {
                c.i32()?
            };
            Inst::MovRmI { w, dst: m.rm, imm }
        }
        0xD2 | 0xD3 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let sw = if opcode == 0xD2 { w8 } else { w };
            let op = match m.reg & 7 {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                _ => return unsup(opcode),
            };
            Inst::ShiftCl {
                op,
                w: sw,
                dst: m.rm,
            }
        }
        0xE8 => {
            let rel = c.i32()?;
            let end = addr + c.pos as u64;
            Inst::Call {
                target: Target::Abs(end.wrapping_add(rel as i64 as u64)),
            }
        }
        0xE9 => {
            let rel = c.i32()?;
            let end = addr + c.pos as u64;
            Inst::Jmp {
                target: Target::Abs(end.wrapping_add(rel as i64 as u64)),
            }
        }
        0xF6 | 0xF7 => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            let fw = if opcode == 0xF6 { w8 } else { w };
            match m.reg & 7 {
                0 => {
                    let imm = if fw == Width::W8 {
                        i32::from(c.i8()?)
                    } else if fw == Width::W16 {
                        i32::from(c.u16()? as i16)
                    } else {
                        c.i32()?
                    };
                    Inst::TestI {
                        w: fw,
                        a: m.rm,
                        imm,
                    }
                }
                2 => Inst::Not { w: fw, dst: m.rm },
                3 => Inst::Neg { w: fw, dst: m.rm },
                4 => Inst::MulDiv {
                    op: MulDivOp::Mul,
                    w: fw,
                    src: m.rm,
                },
                5 => Inst::MulDiv {
                    op: MulDivOp::IMul,
                    w: fw,
                    src: m.rm,
                },
                6 => Inst::MulDiv {
                    op: MulDivOp::Div,
                    w: fw,
                    src: m.rm,
                },
                7 => Inst::MulDiv {
                    op: MulDivOp::IDiv,
                    w: fw,
                    src: m.rm,
                },
                _ => return unsup(opcode),
            }
        }
        0xFF => {
            let m = decode_modrm(&mut c, &p, &mut rip)?;
            match (m.reg & 7, m.rm) {
                (2, Rm::Reg(r)) => Inst::Call {
                    target: Target::Indirect(r),
                },
                (4, Rm::Reg(r)) => Inst::Jmp {
                    target: Target::Indirect(r),
                },
                _ => return unsup(opcode),
            }
        }
        0x0F => {
            let op2 = c.u8()?;
            match op2 {
                0x0B => Inst::Ud2,
                0x10 | 0x11 => {
                    // movss/movsd/movups depending on prefixes.
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let load = op2 == 0x10;
                    if p.f3 || p.f2 {
                        let prec = if p.f3 { FpPrec::Single } else { FpPrec::Double };
                        if load {
                            Inst::MovssLoad {
                                prec,
                                dst: Xmm(m.reg),
                                src: to_xmmrm(m.rm),
                            }
                        } else {
                            Inst::MovssStore {
                                prec,
                                dst: expect_mem(m.rm, addr, op2)?,
                                src: Xmm(m.reg),
                            }
                        }
                    } else if load {
                        Inst::MovapsLoad {
                            aligned: false,
                            dst: Xmm(m.reg),
                            src: to_xmmrm(m.rm),
                        }
                    } else {
                        Inst::MovapsStore {
                            aligned: false,
                            dst: expect_mem(m.rm, addr, op2)?,
                            src: Xmm(m.reg),
                        }
                    }
                }
                0x28 | 0x29 => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    if op2 == 0x28 {
                        Inst::MovapsLoad {
                            aligned: true,
                            dst: Xmm(m.reg),
                            src: to_xmmrm(m.rm),
                        }
                    } else {
                        Inst::MovapsStore {
                            aligned: true,
                            dst: expect_mem(m.rm, addr, op2)?,
                            src: Xmm(m.reg),
                        }
                    }
                }
                0x2A => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let prec = if p.f3 { FpPrec::Single } else { FpPrec::Double };
                    let iw = if p.rex_w() { Width::W64 } else { Width::W32 };
                    Inst::CvtSi2F {
                        prec,
                        iw,
                        dst: Xmm(m.reg),
                        src: m.rm,
                    }
                }
                0x2C => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let prec = if p.f3 { FpPrec::Single } else { FpPrec::Double };
                    let iw = if p.rex_w() { Width::W64 } else { Width::W32 };
                    Inst::CvtF2Si {
                        prec,
                        iw,
                        dst: Gpr::from_encoding(m.reg),
                        src: to_xmmrm(m.rm),
                    }
                }
                0x2E => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let prec = if p.p66 {
                        FpPrec::Double
                    } else {
                        FpPrec::Single
                    };
                    Inst::Ucomis {
                        prec,
                        a: Xmm(m.reg),
                        b: to_xmmrm(m.rm),
                    }
                }
                0x40..=0x4F => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    Inst::Cmovcc {
                        cc: Cond::from_encoding(op2 - 0x40),
                        w,
                        dst: Gpr::from_encoding(m.reg),
                        src: m.rm,
                    }
                }
                0x51 | 0x58 | 0x59 | 0x5C | 0x5D | 0x5E | 0x5F => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let op = match op2 {
                        0x51 => SseOp::Sqrt,
                        0x58 => SseOp::Add,
                        0x59 => SseOp::Mul,
                        0x5C => SseOp::Sub,
                        0x5D => SseOp::Min,
                        0x5E => SseOp::Div,
                        0x5F => SseOp::Max,
                        _ => unreachable!(),
                    };
                    if p.f3 || p.f2 {
                        let prec = if p.f3 { FpPrec::Single } else { FpPrec::Double };
                        Inst::SseScalar {
                            op,
                            prec,
                            dst: Xmm(m.reg),
                            src: to_xmmrm(m.rm),
                        }
                    } else {
                        let prec = if p.p66 {
                            FpPrec::Double
                        } else {
                            FpPrec::Single
                        };
                        Inst::SsePacked {
                            op,
                            prec,
                            dst: Xmm(m.reg),
                            src: to_xmmrm(m.rm),
                        }
                    }
                }
                0x5A => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let to = if p.f3 { FpPrec::Double } else { FpPrec::Single };
                    Inst::CvtF2F {
                        to,
                        dst: Xmm(m.reg),
                        src: to_xmmrm(m.rm),
                    }
                }
                0x57 => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    Inst::Xorps {
                        dst: Xmm(m.reg),
                        src: to_xmmrm(m.rm),
                    }
                }
                0x6E => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let iw = if p.rex_w() { Width::W64 } else { Width::W32 };
                    match m.rm {
                        Rm::Reg(r) => Inst::MovGprToXmm {
                            w: iw,
                            dst: Xmm(m.reg),
                            src: r,
                        },
                        Rm::Mem(_) => return unsup(op2),
                    }
                }
                0x7E => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let iw = if p.rex_w() { Width::W64 } else { Width::W32 };
                    match m.rm {
                        Rm::Reg(r) => Inst::MovXmmToGpr {
                            w: iw,
                            dst: r,
                            src: Xmm(m.reg),
                        },
                        Rm::Mem(_) => return unsup(op2),
                    }
                }
                0x80..=0x8F => {
                    let rel = c.i32()?;
                    let end = addr + c.pos as u64;
                    Inst::Jcc {
                        cc: Cond::from_encoding(op2 - 0x80),
                        target: Target::Abs(end.wrapping_add(rel as i64 as u64)),
                    }
                }
                0x90..=0x9F => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    Inst::Setcc {
                        cc: Cond::from_encoding(op2 - 0x90),
                        dst: m.rm,
                    }
                }
                0xAE => {
                    let next = c.u8()?;
                    if next == 0xF0 {
                        Inst::Mfence
                    } else {
                        return unsup(next);
                    }
                }
                0xAF => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    Inst::IMul2 {
                        w,
                        dst: Gpr::from_encoding(m.reg),
                        src: m.rm,
                    }
                }
                0xB0 | 0xB1 => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let cw = if op2 == 0xB0 { w8 } else { w };
                    Inst::LockCmpxchg {
                        w: cw,
                        mem: expect_mem(m.rm, addr, op2)?,
                        src: Gpr::from_encoding(m.reg),
                    }
                }
                0xB6 | 0xB7 => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let sw = if op2 == 0xB6 { Width::W8 } else { Width::W16 };
                    Inst::MovZx {
                        dw: w,
                        sw,
                        dst: Gpr::from_encoding(m.reg),
                        src: m.rm,
                    }
                }
                0xBE | 0xBF => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let sw = if op2 == 0xBE { Width::W8 } else { Width::W16 };
                    Inst::MovSx {
                        dw: w,
                        sw,
                        dst: Gpr::from_encoding(m.reg),
                        src: m.rm,
                    }
                }
                0xC0 | 0xC1 => {
                    let m = decode_modrm(&mut c, &p, &mut rip)?;
                    let xw = if op2 == 0xC0 { w8 } else { w };
                    Inst::LockXadd {
                        w: xw,
                        mem: expect_mem(m.rm, addr, op2)?,
                        src: Gpr::from_encoding(m.reg),
                    }
                }
                _ => return unsup(op2),
            }
        }
        _ => return unsup(opcode),
    };

    let len = c.pos;

    // Patch RIP-relative memory operands now that the length is known.
    let inst = if let Some(PendingRip { disp32 }) = rip {
        let end = addr + len as u64;
        let abs = end.wrapping_add(disp32 as i64 as u64);
        patch_rip(inst, abs)
    } else {
        inst
    };

    Ok(Decoded { inst, addr, len })
}

/// Replaces the (single) RIP-relative memory operand's displacement with the
/// resolved absolute address.
fn patch_rip(inst: Inst, abs: u64) -> Inst {
    fn fix_mem(m: MemRef, abs: u64) -> MemRef {
        if m.rip_relative {
            MemRef {
                disp: abs as i64,
                ..m
            }
        } else {
            m
        }
    }
    fn fix_rm(rm: Rm, abs: u64) -> Rm {
        match rm {
            Rm::Mem(m) => Rm::Mem(fix_mem(m, abs)),
            r => r,
        }
    }
    fn fix_xrm(rm: XmmRm, abs: u64) -> XmmRm {
        match rm {
            XmmRm::Mem(m) => XmmRm::Mem(fix_mem(m, abs)),
            r => r,
        }
    }
    match inst {
        Inst::MovRRm { w, dst, src } => Inst::MovRRm {
            w,
            dst,
            src: fix_rm(src, abs),
        },
        Inst::MovRmR { w, dst, src } => Inst::MovRmR {
            w,
            dst: fix_rm(dst, abs),
            src,
        },
        Inst::MovRmI { w, dst, imm } => Inst::MovRmI {
            w,
            dst: fix_rm(dst, abs),
            imm,
        },
        Inst::MovZx { dw, sw, dst, src } => Inst::MovZx {
            dw,
            sw,
            dst,
            src: fix_rm(src, abs),
        },
        Inst::MovSx { dw, sw, dst, src } => Inst::MovSx {
            dw,
            sw,
            dst,
            src: fix_rm(src, abs),
        },
        Inst::Lea { w, dst, addr: m } => Inst::Lea {
            w,
            dst,
            addr: fix_mem(m, abs),
        },
        Inst::AluRRm { op, w, dst, src } => Inst::AluRRm {
            op,
            w,
            dst,
            src: fix_rm(src, abs),
        },
        Inst::AluRmR { op, w, dst, src } => Inst::AluRmR {
            op,
            w,
            dst: fix_rm(dst, abs),
            src,
        },
        Inst::AluRmI { op, w, dst, imm } => Inst::AluRmI {
            op,
            w,
            dst: fix_rm(dst, abs),
            imm,
        },
        Inst::Test { w, a, b } => Inst::Test {
            w,
            a: fix_rm(a, abs),
            b,
        },
        Inst::TestI { w, a, imm } => Inst::TestI {
            w,
            a: fix_rm(a, abs),
            imm,
        },
        Inst::ShiftI { op, w, dst, imm } => Inst::ShiftI {
            op,
            w,
            dst: fix_rm(dst, abs),
            imm,
        },
        Inst::ShiftCl { op, w, dst } => Inst::ShiftCl {
            op,
            w,
            dst: fix_rm(dst, abs),
        },
        Inst::IMul2 { w, dst, src } => Inst::IMul2 {
            w,
            dst,
            src: fix_rm(src, abs),
        },
        Inst::IMul3 { w, dst, src, imm } => Inst::IMul3 {
            w,
            dst,
            src: fix_rm(src, abs),
            imm,
        },
        Inst::MulDiv { op, w, src } => Inst::MulDiv {
            op,
            w,
            src: fix_rm(src, abs),
        },
        Inst::Neg { w, dst } => Inst::Neg {
            w,
            dst: fix_rm(dst, abs),
        },
        Inst::Not { w, dst } => Inst::Not {
            w,
            dst: fix_rm(dst, abs),
        },
        Inst::Setcc { cc, dst } => Inst::Setcc {
            cc,
            dst: fix_rm(dst, abs),
        },
        Inst::Cmovcc { cc, w, dst, src } => Inst::Cmovcc {
            cc,
            w,
            dst,
            src: fix_rm(src, abs),
        },
        Inst::MovssLoad { prec, dst, src } => Inst::MovssLoad {
            prec,
            dst,
            src: fix_xrm(src, abs),
        },
        Inst::MovssStore { prec, dst, src } => Inst::MovssStore {
            prec,
            dst: fix_mem(dst, abs),
            src,
        },
        Inst::MovapsLoad { aligned, dst, src } => Inst::MovapsLoad {
            aligned,
            dst,
            src: fix_xrm(src, abs),
        },
        Inst::MovapsStore { aligned, dst, src } => Inst::MovapsStore {
            aligned,
            dst: fix_mem(dst, abs),
            src,
        },
        Inst::SseScalar { op, prec, dst, src } => Inst::SseScalar {
            op,
            prec,
            dst,
            src: fix_xrm(src, abs),
        },
        Inst::SsePacked { op, prec, dst, src } => Inst::SsePacked {
            op,
            prec,
            dst,
            src: fix_xrm(src, abs),
        },
        Inst::Xorps { dst, src } => Inst::Xorps {
            dst,
            src: fix_xrm(src, abs),
        },
        Inst::Ucomis { prec, a, b } => Inst::Ucomis {
            prec,
            a,
            b: fix_xrm(b, abs),
        },
        Inst::CvtSi2F { prec, iw, dst, src } => Inst::CvtSi2F {
            prec,
            iw,
            dst,
            src: fix_rm(src, abs),
        },
        Inst::CvtF2Si { prec, iw, dst, src } => Inst::CvtF2Si {
            prec,
            iw,
            dst,
            src: fix_xrm(src, abs),
        },
        Inst::CvtF2F { to, dst, src } => Inst::CvtF2F {
            to,
            dst,
            src: fix_xrm(src, abs),
        },
        Inst::LockCmpxchg { w, mem, src } => Inst::LockCmpxchg {
            w,
            mem: fix_mem(mem, abs),
            src,
        },
        Inst::LockXadd { w, mem, src } => Inst::LockXadd {
            w,
            mem: fix_mem(mem, abs),
            src,
        },
        Inst::LockAddI { w, mem, imm } => Inst::LockAddI {
            w,
            mem: fix_mem(mem, abs),
            imm,
        },
        Inst::Xchg { w, mem, src } => Inst::Xchg {
            w,
            mem: fix_mem(mem, abs),
            src,
        },
        other => other,
    }
}

/// Decodes a contiguous byte range into instructions, stopping at the first
/// error or at the end of the slice.
///
/// # Errors
///
/// Propagates the first [`DecodeError`] encountered.
pub fn decode_all(bytes: &[u8], base_addr: u64) -> Result<Vec<Decoded>, DecodeError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let d = decode_one(&bytes[off..], base_addr + off as u64)?;
        off += d.len;
        out.push(d);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::inst::MemRef;

    fn roundtrip(inst: Inst, addr: u64) {
        let mut v = Vec::new();
        let len = encode(&inst, addr, &mut v).unwrap();
        let d = decode_one(&v, addr).unwrap_or_else(|e| panic!("decode {inst}: {e} ({v:02x?})"));
        assert_eq!(d.inst, inst, "bytes {v:02x?}");
        assert_eq!(d.len, len);
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(Inst::Nop, 0);
        roundtrip(Inst::Ret, 0);
        roundtrip(Inst::Mfence, 0);
        roundtrip(Inst::Ud2, 0);
        roundtrip(Inst::Cqo { w: Width::W64 }, 0);
    }

    #[test]
    fn roundtrip_mov_forms() {
        for w in [Width::W8, Width::W16, Width::W32, Width::W64] {
            roundtrip(
                Inst::MovRRm {
                    w,
                    dst: Gpr::Rax,
                    src: Rm::Reg(Gpr::R9),
                },
                0x1000,
            );
            roundtrip(
                Inst::MovRRm {
                    w,
                    dst: Gpr::R13,
                    src: Rm::Mem(MemRef::base_disp(Gpr::Rbp, -24)),
                },
                0x1000,
            );
            roundtrip(
                Inst::MovRmR {
                    w,
                    dst: Rm::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rcx, 4, 1024)),
                    src: Gpr::Rdx,
                },
                0x1000,
            );
        }
        roundtrip(
            Inst::MovAbs {
                dst: Gpr::R11,
                imm: 0xDEAD_BEEF_CAFE_0001,
            },
            0,
        );
        roundtrip(
            Inst::MovRmI {
                w: Width::W32,
                dst: Rm::Mem(MemRef::base(Gpr::Rsp)),
                imm: -7,
            },
            0,
        );
    }

    #[test]
    fn roundtrip_rip_relative() {
        let inst = Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::rip(0x40_2000)),
        };
        roundtrip(inst, 0x40_1000);
        // And with a trailing immediate, which shifts the displacement base.
        let inst = Inst::MovRmI {
            w: Width::W32,
            dst: Rm::Mem(MemRef::rip(0x40_2000)),
            imm: 42,
        };
        roundtrip(inst, 0x40_1000);
    }

    #[test]
    fn roundtrip_alu() {
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Cmp,
        ] {
            roundtrip(
                Inst::AluRRm {
                    op,
                    w: Width::W64,
                    dst: Gpr::Rbx,
                    src: Rm::Reg(Gpr::R8),
                },
                0,
            );
            roundtrip(
                Inst::AluRmI {
                    op,
                    w: Width::W32,
                    dst: Rm::Reg(Gpr::Rcx),
                    imm: 1000,
                },
                0,
            );
            roundtrip(
                Inst::AluRmI {
                    op,
                    w: Width::W64,
                    dst: Rm::Reg(Gpr::Rsp),
                    imm: -8,
                },
                0,
            );
        }
    }

    #[test]
    fn roundtrip_branches() {
        roundtrip(
            Inst::Jmp {
                target: Target::Abs(0x1234),
            },
            0x1000,
        );
        roundtrip(
            Inst::Call {
                target: Target::Abs(0x100),
            },
            0x2000,
        );
        roundtrip(
            Inst::Call {
                target: Target::Indirect(Gpr::Rax),
            },
            0,
        );
        roundtrip(
            Inst::Jmp {
                target: Target::Indirect(Gpr::R10),
            },
            0,
        );
        for cc in Cond::ALL {
            roundtrip(
                Inst::Jcc {
                    cc,
                    target: Target::Abs(0x4000),
                },
                0x1000,
            );
            roundtrip(
                Inst::Setcc {
                    cc,
                    dst: Rm::Reg(Gpr::Rax),
                },
                0,
            );
            roundtrip(
                Inst::Cmovcc {
                    cc,
                    w: Width::W64,
                    dst: Gpr::Rdx,
                    src: Rm::Reg(Gpr::R14),
                },
                0,
            );
        }
    }

    #[test]
    fn roundtrip_sse() {
        for prec in [FpPrec::Single, FpPrec::Double] {
            roundtrip(
                Inst::MovssLoad {
                    prec,
                    dst: Xmm(3),
                    src: XmmRm::Mem(MemRef::base(Gpr::Rsi)),
                },
                0,
            );
            roundtrip(
                Inst::MovssStore {
                    prec,
                    dst: MemRef::base_disp(Gpr::Rdi, 16),
                    src: Xmm(1),
                },
                0,
            );
            for op in [
                SseOp::Add,
                SseOp::Sub,
                SseOp::Mul,
                SseOp::Div,
                SseOp::Min,
                SseOp::Max,
            ] {
                roundtrip(
                    Inst::SseScalar {
                        op,
                        prec,
                        dst: Xmm(0),
                        src: XmmRm::Reg(Xmm(2)),
                    },
                    0,
                );
                roundtrip(
                    Inst::SsePacked {
                        op,
                        prec,
                        dst: Xmm(5),
                        src: XmmRm::Reg(Xmm(7)),
                    },
                    0,
                );
            }
            roundtrip(
                Inst::Ucomis {
                    prec,
                    a: Xmm(0),
                    b: XmmRm::Reg(Xmm(1)),
                },
                0,
            );
            roundtrip(
                Inst::CvtSi2F {
                    prec,
                    iw: Width::W64,
                    dst: Xmm(2),
                    src: Rm::Reg(Gpr::Rax),
                },
                0,
            );
            roundtrip(
                Inst::CvtF2Si {
                    prec,
                    iw: Width::W32,
                    dst: Gpr::Rcx,
                    src: XmmRm::Reg(Xmm(3)),
                },
                0,
            );
        }
        roundtrip(
            Inst::Xorps {
                dst: Xmm(0),
                src: XmmRm::Reg(Xmm(0)),
            },
            0,
        );
        roundtrip(
            Inst::CvtF2F {
                to: FpPrec::Double,
                dst: Xmm(1),
                src: XmmRm::Reg(Xmm(2)),
            },
            0,
        );
        roundtrip(
            Inst::CvtF2F {
                to: FpPrec::Single,
                dst: Xmm(1),
                src: XmmRm::Reg(Xmm(2)),
            },
            0,
        );
        roundtrip(
            Inst::MovXmmToGpr {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Xmm(9),
            },
            0,
        );
        roundtrip(
            Inst::MovGprToXmm {
                w: Width::W32,
                dst: Xmm(9),
                src: Gpr::Rax,
            },
            0,
        );
    }

    #[test]
    fn roundtrip_atomics() {
        for w in [Width::W32, Width::W64] {
            roundtrip(
                Inst::LockCmpxchg {
                    w,
                    mem: MemRef::base(Gpr::Rdi),
                    src: Gpr::Rbx,
                },
                0,
            );
            roundtrip(
                Inst::LockXadd {
                    w,
                    mem: MemRef::base_disp(Gpr::Rsi, 4),
                    src: Gpr::Rcx,
                },
                0,
            );
            roundtrip(
                Inst::LockAddI {
                    w,
                    mem: MemRef::base(Gpr::Rdx),
                    imm: 1,
                },
                0,
            );
            roundtrip(
                Inst::LockAddI {
                    w,
                    mem: MemRef::base(Gpr::Rdx),
                    imm: 4096,
                },
                0,
            );
            roundtrip(
                Inst::Xchg {
                    w,
                    mem: MemRef::base(Gpr::R9),
                    src: Gpr::Rax,
                },
                0,
            );
        }
    }

    #[test]
    fn roundtrip_misc_int() {
        roundtrip(
            Inst::MovZx {
                dw: Width::W32,
                sw: Width::W8,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rcx),
            },
            0,
        );
        roundtrip(
            Inst::MovSx {
                dw: Width::W64,
                sw: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rdi),
            },
            0,
        );
        roundtrip(
            Inst::MovSx {
                dw: Width::W64,
                sw: Width::W8,
                dst: Gpr::R8,
                src: Rm::Reg(Gpr::Rbx),
            },
            0,
        );
        roundtrip(
            Inst::Lea {
                w: Width::W64,
                dst: Gpr::Rax,
                addr: MemRef::base_index(Gpr::Rdi, Gpr::Rsi, 8, -64),
            },
            0,
        );
        roundtrip(
            Inst::IMul2 {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rbx),
            },
            0,
        );
        roundtrip(
            Inst::IMul3 {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rbx),
                imm: 100,
            },
            0,
        );
        roundtrip(
            Inst::IMul3 {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rbx),
                imm: 100_000,
            },
            0,
        );
        roundtrip(
            Inst::MulDiv {
                op: MulDivOp::IDiv,
                w: Width::W64,
                src: Rm::Reg(Gpr::Rcx),
            },
            0,
        );
        roundtrip(
            Inst::ShiftI {
                op: ShiftOp::Shl,
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rax),
                imm: 3,
            },
            0,
        );
        roundtrip(
            Inst::ShiftCl {
                op: ShiftOp::Sar,
                w: Width::W32,
                dst: Rm::Reg(Gpr::Rdx),
            },
            0,
        );
        roundtrip(
            Inst::Neg {
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rax),
            },
            0,
        );
        roundtrip(
            Inst::Not {
                w: Width::W32,
                dst: Rm::Reg(Gpr::R15),
            },
            0,
        );
        roundtrip(
            Inst::Test {
                w: Width::W64,
                a: Rm::Reg(Gpr::Rax),
                b: Gpr::Rax,
            },
            0,
        );
        roundtrip(
            Inst::TestI {
                w: Width::W32,
                a: Rm::Reg(Gpr::Rdi),
                imm: 1,
            },
            0,
        );
    }

    #[test]
    fn decode_stream() {
        // push rbp; mov rbp, rsp; pop rbp; ret
        let prog = [
            Inst::Push { src: Gpr::Rbp },
            Inst::MovRmR {
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rbp),
                src: Gpr::Rsp,
            },
            Inst::Pop { dst: Gpr::Rbp },
            Inst::Ret,
        ];
        let mut bytes = Vec::new();
        let mut addr = 0x1000u64;
        for i in &prog {
            addr += encode(i, addr, &mut bytes).unwrap() as u64;
        }
        let decoded = decode_all(&bytes, 0x1000).unwrap();
        let insts: Vec<Inst> = decoded.iter().map(|d| d.inst).collect();
        assert_eq!(insts, prog);
    }

    #[test]
    fn unsupported_opcode_reports_address() {
        let err = decode_one(&[0xCC], 0x55).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnsupportedOpcode {
                at: 0x55,
                opcode: 0xCC
            }
        );
    }

    #[test]
    fn truncated_reports_address() {
        let err = decode_one(&[0x48], 0x7).unwrap_err();
        assert_eq!(err, DecodeError::Truncated { at: 0x7 });
    }
}
