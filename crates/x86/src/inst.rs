//! x86-64 instruction representation.
//!
//! [`Inst`] is the semantic analogue of LLVM's `MCInst`: one decoded machine
//! instruction with resolved operands. The [`crate::encode`](mod@crate::encode) module turns an
//! `Inst` into real machine-code bytes and [`crate::decode`] turns bytes back
//! into an `Inst`, so the pair round-trips through genuine x86-64 encodings.

use crate::reg::{Cond, Gpr, Width, Xmm};
use std::fmt;

/// A memory operand: `[base + index*scale + disp]`.
///
/// RIP-relative addressing is modelled with `base == None` and
/// `rip_relative == true`; the displacement then holds the *absolute* target
/// address after decoding (the decoder resolves `RIP + disp32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Gpr>,
    /// Index register (never `RSP`), if any.
    pub index: Option<Gpr>,
    /// Scale applied to the index: 1, 2, 4 or 8.
    pub scale: u8,
    /// Displacement (absolute address when `rip_relative`).
    pub disp: i64,
    /// Whether this operand was RIP-relative in the machine code.
    pub rip_relative: bool,
}

impl MemRef {
    /// `[base]`
    pub fn base(base: Gpr) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp: 0,
            rip_relative: false,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Gpr, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
            rip_relative: false,
        }
    }

    /// `[base + index*scale + disp]`
    pub fn base_index(base: Gpr, index: Gpr, scale: u8, disp: i64) -> MemRef {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        assert!(index != Gpr::Rsp, "rsp cannot be an index register");
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            rip_relative: false,
        }
    }

    /// RIP-relative reference to an absolute address (e.g. a global).
    pub fn rip(abs: u64) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp: abs as i64,
            rip_relative: true,
        }
    }

    /// Absolute address with no base (encoded via SIB with no base).
    pub fn abs(addr: u64) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp: addr as i64,
            rip_relative: false,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if self.rip_relative {
            write!(f, "rip-abs:{:#x}", self.disp)?;
            first = false;
        }
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 && !self.rip_relative {
            if first {
                write!(f, "{:#x}", self.disp)?;
            } else if self.disp > 0 {
                write!(f, " + {:#x}", self.disp)?;
            } else {
                write!(f, " - {:#x}", -self.disp)?;
            }
        } else if first && !self.rip_relative {
            write!(f, "0x0")?;
        }
        write!(f, "]")
    }
}

/// A register-or-memory operand (the x86 `r/m` slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rm {
    /// A general-purpose register.
    Reg(Gpr),
    /// A memory reference.
    Mem(MemRef),
}

impl fmt::Display for Rm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rm::Reg(r) => write!(f, "{r}"),
            Rm::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// An XMM-or-memory operand for SSE instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XmmRm {
    /// An XMM register.
    Reg(Xmm),
    /// A memory reference.
    Mem(MemRef),
}

impl fmt::Display for XmmRm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmmRm::Reg(r) => write!(f, "{r}"),
            XmmRm::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Two-operand integer ALU operations (`op dst, src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard x86 mnemonics
pub enum AluOp {
    Add,
    Or,
    Adc,
    Sbb,
    And,
    Sub,
    Xor,
    /// `cmp` computes `dst - src` for flags only; no write-back.
    Cmp,
}

impl AluOp {
    /// `/r` extension used in the `80/81/83` immediate forms.
    pub fn ext(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Or => 1,
            AluOp::Adc => 2,
            AluOp::Sbb => 3,
            AluOp::And => 4,
            AluOp::Sub => 5,
            AluOp::Xor => 6,
            AluOp::Cmp => 7,
        }
    }

    /// Operation from its `/r` extension.
    ///
    /// # Panics
    ///
    /// Panics if `ext > 7`.
    pub fn from_ext(ext: u8) -> AluOp {
        [
            AluOp::Add,
            AluOp::Or,
            AluOp::Adc,
            AluOp::Sbb,
            AluOp::And,
            AluOp::Sub,
            AluOp::Xor,
            AluOp::Cmp,
        ][usize::from(ext)]
    }

    /// Whether the destination is written (everything except `cmp`).
    pub fn writes_dst(self) -> bool {
        self != AluOp::Cmp
    }

    /// Mnemonic text.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::Adc => "adc",
            AluOp::Sbb => "sbb",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }
}

/// Shift/rotate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl ShiftOp {
    /// `/r` extension in the `C1/D3` encodings.
    pub fn ext(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Mnemonic text.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// One-operand multiply/divide group (`F7 /4../7`), operating on RDX:RAX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Unsigned multiply: `RDX:RAX = RAX * src`.
    Mul,
    /// Signed multiply: `RDX:RAX = RAX * src`.
    IMul,
    /// Unsigned divide of `RDX:RAX`; quotient → RAX, remainder → RDX.
    Div,
    /// Signed divide of `RDX:RAX`.
    IDiv,
}

impl MulDivOp {
    /// `/r` extension in the `F7` encoding.
    pub fn ext(self) -> u8 {
        match self {
            MulDivOp::Mul => 4,
            MulDivOp::IMul => 5,
            MulDivOp::Div => 6,
            MulDivOp::IDiv => 7,
        }
    }

    /// Mnemonic text.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mul => "mul",
            MulDivOp::IMul => "imul",
            MulDivOp::Div => "div",
            MulDivOp::IDiv => "idiv",
        }
    }
}

/// Scalar/packed SSE floating-point precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpPrec {
    /// Single precision (`ss`/`ps`).
    Single,
    /// Double precision (`sd`/`pd`).
    Double,
}

impl FpPrec {
    /// Size of one scalar element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            FpPrec::Single => 4,
            FpPrec::Double => 8,
        }
    }
}

/// SSE arithmetic operations (scalar and packed forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard x86 mnemonics
pub enum SseOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Sqrt,
}

impl SseOp {
    /// Second opcode byte after the `0F` escape.
    pub fn opcode(self) -> u8 {
        match self {
            SseOp::Add => 0x58,
            SseOp::Mul => 0x59,
            SseOp::Sub => 0x5C,
            SseOp::Min => 0x5D,
            SseOp::Div => 0x5E,
            SseOp::Max => 0x5F,
            SseOp::Sqrt => 0x51,
        }
    }

    /// Mnemonic stem (`add`, `mul`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            SseOp::Add => "add",
            SseOp::Sub => "sub",
            SseOp::Mul => "mul",
            SseOp::Div => "div",
            SseOp::Min => "min",
            SseOp::Max => "max",
            SseOp::Sqrt => "sqrt",
        }
    }
}

/// Branch/call target. The decoder resolves relative displacements to
/// absolute addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Absolute address of the target instruction.
    Abs(u64),
    /// Indirect through a register (`jmp rax`, `call rax`).
    Indirect(Gpr),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Abs(a) => write!(f, "{a:#x}"),
            Target::Indirect(r) => write!(f, "*{r}"),
        }
    }
}

/// One decoded x86-64 instruction.
///
/// The variants are grouped per the paper's lifter (§4): data movement, ALU,
/// control flow, SSE scalar floating point, and concurrency primitives
/// (`mfence`, `lock`-prefixed read-modify-writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields (dst, src, imm, w) are self-describing
pub enum Inst {
    /// `mov r, r/m` (load or register move).
    MovRRm { w: Width, dst: Gpr, src: Rm },
    /// `mov r/m, r` (store or register move).
    MovRmR { w: Width, dst: Rm, src: Gpr },
    /// `mov r/m, imm32` (sign-extended for W64).
    MovRmI { w: Width, dst: Rm, imm: i32 },
    /// `movabs r64, imm64`.
    MovAbs { dst: Gpr, imm: u64 },
    /// `movzx r, r/m8|16`.
    MovZx {
        dw: Width,
        sw: Width,
        dst: Gpr,
        src: Rm,
    },
    /// `movsx r, r/m8|16` and `movsxd r64, r/m32`.
    MovSx {
        dw: Width,
        sw: Width,
        dst: Gpr,
        src: Rm,
    },
    /// `lea r, [mem]`.
    Lea { w: Width, dst: Gpr, addr: MemRef },

    /// Two-operand ALU, register destination: `op r, r/m`.
    AluRRm {
        op: AluOp,
        w: Width,
        dst: Gpr,
        src: Rm,
    },
    /// Two-operand ALU, memory/register destination: `op r/m, r`.
    AluRmR {
        op: AluOp,
        w: Width,
        dst: Rm,
        src: Gpr,
    },
    /// Two-operand ALU with immediate: `op r/m, imm`.
    AluRmI {
        op: AluOp,
        w: Width,
        dst: Rm,
        imm: i32,
    },
    /// `test r/m, r`.
    Test { w: Width, a: Rm, b: Gpr },
    /// `test r/m, imm32`.
    TestI { w: Width, a: Rm, imm: i32 },
    /// Shift by immediate: `shl/shr/sar r/m, imm8`.
    ShiftI {
        op: ShiftOp,
        w: Width,
        dst: Rm,
        imm: u8,
    },
    /// Shift by CL: `shl/shr/sar r/m, cl`.
    ShiftCl { op: ShiftOp, w: Width, dst: Rm },
    /// Two-operand signed multiply: `imul r, r/m`.
    IMul2 { w: Width, dst: Gpr, src: Rm },
    /// Three-operand signed multiply: `imul r, r/m, imm32`.
    IMul3 {
        w: Width,
        dst: Gpr,
        src: Rm,
        imm: i32,
    },
    /// One-operand mul/div group on RDX:RAX.
    MulDiv { op: MulDivOp, w: Width, src: Rm },
    /// `cqo`/`cdq`: sign-extend RAX/EAX into RDX/EDX.
    Cqo { w: Width },
    /// `neg r/m`.
    Neg { w: Width, dst: Rm },
    /// `not r/m`.
    Not { w: Width, dst: Rm },

    /// `push r64`.
    Push { src: Gpr },
    /// `pop r64`.
    Pop { dst: Gpr },

    /// Unconditional jump.
    Jmp { target: Target },
    /// Conditional jump.
    Jcc { cc: Cond, target: Target },
    /// Call.
    Call { target: Target },
    /// Return.
    Ret,
    /// `setcc r/m8`.
    Setcc { cc: Cond, dst: Rm },
    /// `cmovcc r, r/m`.
    Cmovcc {
        cc: Cond,
        w: Width,
        dst: Gpr,
        src: Rm,
    },
    /// `nop` (single byte).
    Nop,
    /// `ud2`.
    Ud2,

    /// Scalar SSE move, load form: `movss/movsd xmm, xmm/m`.
    MovssLoad { prec: FpPrec, dst: Xmm, src: XmmRm },
    /// Scalar SSE move, store form: `movss/movsd m, xmm`.
    MovssStore { prec: FpPrec, dst: MemRef, src: Xmm },
    /// Packed 128-bit move, load form: `movaps/movups xmm, xmm/m`.
    MovapsLoad { aligned: bool, dst: Xmm, src: XmmRm },
    /// Packed 128-bit move, store form: `movaps/movups m, xmm`.
    MovapsStore {
        aligned: bool,
        dst: MemRef,
        src: Xmm,
    },
    /// `movq r64, xmm` / `movd r32, xmm`.
    MovXmmToGpr { w: Width, dst: Gpr, src: Xmm },
    /// `movq xmm, r64` / `movd xmm, r32`.
    MovGprToXmm { w: Width, dst: Xmm, src: Gpr },
    /// Scalar SSE arithmetic: `addss/subsd/... xmm, xmm/m`.
    SseScalar {
        op: SseOp,
        prec: FpPrec,
        dst: Xmm,
        src: XmmRm,
    },
    /// Packed SSE arithmetic: `addps/mulpd/... xmm, xmm/m`.
    SsePacked {
        op: SseOp,
        prec: FpPrec,
        dst: Xmm,
        src: XmmRm,
    },
    /// Bitwise XOR of XMM registers (`xorps`); idiomatically zeroes a register.
    Xorps { dst: Xmm, src: XmmRm },
    /// `ucomiss/ucomisd xmm, xmm/m`: FP compare setting ZF/PF/CF.
    Ucomis { prec: FpPrec, a: Xmm, b: XmmRm },
    /// `cvtsi2ss/sd xmm, r/m`: integer → float.
    CvtSi2F {
        prec: FpPrec,
        iw: Width,
        dst: Xmm,
        src: Rm,
    },
    /// `cvttss/sd2si r, xmm/m`: float → integer (truncating).
    CvtF2Si {
        prec: FpPrec,
        iw: Width,
        dst: Gpr,
        src: XmmRm,
    },
    /// `cvtss2sd xmm, xmm/m` (Single→Double) or `cvtsd2ss` (Double→Single).
    /// `to` names the destination precision.
    CvtF2F { to: FpPrec, dst: Xmm, src: XmmRm },

    /// `mfence`.
    Mfence,
    /// `lock cmpxchg [m], r`: if `RAX==[m]` then `[m]=r, ZF=1` else `RAX=[m]`.
    LockCmpxchg { w: Width, mem: MemRef, src: Gpr },
    /// `lock xadd [m], r`: `tmp=[m]; [m]+=r; r=tmp`.
    LockXadd { w: Width, mem: MemRef, src: Gpr },
    /// `lock add [m], imm`.
    LockAddI { w: Width, mem: MemRef, imm: i32 },
    /// `xchg [m], r` (implicitly locked).
    Xchg { w: Width, mem: MemRef, src: Gpr },
}

impl Inst {
    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Ret | Inst::Ud2
        )
    }

    /// Whether this instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        fn rm_mem(rm: &Rm) -> bool {
            matches!(rm, Rm::Mem(_))
        }
        fn xrm_mem(rm: &XmmRm) -> bool {
            matches!(rm, XmmRm::Mem(_))
        }
        match self {
            Inst::MovRRm { src, .. }
            | Inst::MovZx { src, .. }
            | Inst::MovSx { src, .. }
            | Inst::AluRRm { src, .. }
            | Inst::IMul2 { src, .. }
            | Inst::IMul3 { src, .. }
            | Inst::MulDiv { src, .. }
            | Inst::Cmovcc { src, .. }
            | Inst::CvtSi2F { src, .. } => rm_mem(src),
            Inst::AluRmR { dst, .. }
            | Inst::AluRmI { dst, .. }
            | Inst::Test { a: dst, .. }
            | Inst::TestI { a: dst, .. }
            | Inst::ShiftI { dst, .. }
            | Inst::ShiftCl { dst, .. }
            | Inst::Neg { dst, .. }
            | Inst::Not { dst, .. } => rm_mem(dst),
            Inst::MovssLoad { src, .. }
            | Inst::MovapsLoad { src, .. }
            | Inst::SseScalar { src, .. }
            | Inst::SsePacked { src, .. }
            | Inst::Xorps { src, .. }
            | Inst::CvtF2F { src, .. }
            | Inst::CvtF2Si { src, .. } => xrm_mem(src),
            Inst::Ucomis { b, .. } => xrm_mem(b),
            Inst::Pop { .. } | Inst::Ret => true,
            Inst::LockCmpxchg { .. }
            | Inst::LockXadd { .. }
            | Inst::LockAddI { .. }
            | Inst::Xchg { .. } => true,
            _ => false,
        }
    }

    /// Whether this instruction writes memory.
    pub fn writes_memory(&self) -> bool {
        match self {
            Inst::MovRmR { dst, .. } | Inst::MovRmI { dst, .. } => matches!(dst, Rm::Mem(_)),
            Inst::AluRmR { op, dst, .. } => op.writes_dst() && matches!(dst, Rm::Mem(_)),
            Inst::AluRmI { op, dst, .. } => op.writes_dst() && matches!(dst, Rm::Mem(_)),
            Inst::ShiftI { dst, .. }
            | Inst::ShiftCl { dst, .. }
            | Inst::Neg { dst, .. }
            | Inst::Not { dst, .. }
            | Inst::Setcc { dst, .. } => matches!(dst, Rm::Mem(_)),
            Inst::MovssStore { .. } | Inst::MovapsStore { .. } => true,
            Inst::Push { .. } | Inst::Call { .. } => true,
            Inst::LockCmpxchg { .. }
            | Inst::LockXadd { .. }
            | Inst::LockAddI { .. }
            | Inst::Xchg { .. } => true,
            _ => false,
        }
    }

    /// Whether this is an atomic read-modify-write (a `lock`-prefixed or
    /// implicitly locked instruction).
    pub fn is_atomic_rmw(&self) -> bool {
        matches!(
            self,
            Inst::LockCmpxchg { .. }
                | Inst::LockXadd { .. }
                | Inst::LockAddI { .. }
                | Inst::Xchg { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::MovRRm { w, dst, src } => write!(f, "mov{w} {}, {src}", dst.name(*w)),
            Inst::MovRmR { w, dst, src } => write!(f, "mov{w} {dst}, {}", src.name(*w)),
            Inst::MovRmI { w, dst, imm } => write!(f, "mov{w} {dst}, {imm}"),
            Inst::MovAbs { dst, imm } => write!(f, "movabs {dst}, {imm:#x}"),
            Inst::MovZx { dw, sw, dst, src } => {
                write!(f, "movzx{sw}->{dw} {}, {src}", dst.name(*dw))
            }
            Inst::MovSx { dw, sw, dst, src } => {
                write!(f, "movsx{sw}->{dw} {}, {src}", dst.name(*dw))
            }
            Inst::Lea { w, dst, addr } => write!(f, "lea {}, {addr}", dst.name(*w)),
            Inst::AluRRm { op, w, dst, src } => {
                write!(f, "{}{w} {}, {src}", op.mnemonic(), dst.name(*w))
            }
            Inst::AluRmR { op, w, dst, src } => {
                write!(f, "{}{w} {dst}, {}", op.mnemonic(), src.name(*w))
            }
            Inst::AluRmI { op, w, dst, imm } => write!(f, "{}{w} {dst}, {imm}", op.mnemonic()),
            Inst::Test { w, a, b } => write!(f, "test{w} {a}, {}", b.name(*w)),
            Inst::TestI { w, a, imm } => write!(f, "test{w} {a}, {imm}"),
            Inst::ShiftI { op, w, dst, imm } => write!(f, "{}{w} {dst}, {imm}", op.mnemonic()),
            Inst::ShiftCl { op, w, dst } => write!(f, "{}{w} {dst}, cl", op.mnemonic()),
            Inst::IMul2 { w, dst, src } => write!(f, "imul{w} {}, {src}", dst.name(*w)),
            Inst::IMul3 { w, dst, src, imm } => {
                write!(f, "imul{w} {}, {src}, {imm}", dst.name(*w))
            }
            Inst::MulDiv { op, w, src } => write!(f, "{}{w} {src}", op.mnemonic()),
            Inst::Cqo { w } => write!(f, "{}", if *w == Width::W64 { "cqo" } else { "cdq" }),
            Inst::Neg { w, dst } => write!(f, "neg{w} {dst}"),
            Inst::Not { w, dst } => write!(f, "not{w} {dst}"),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::Jmp { target } => write!(f, "jmp {target}"),
            Inst::Jcc { cc, target } => write!(f, "j{cc} {target}"),
            Inst::Call { target } => write!(f, "call {target}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Setcc { cc, dst } => write!(f, "set{cc} {dst}"),
            Inst::Cmovcc { cc, w, dst, src } => {
                write!(f, "cmov{cc}{w} {}, {src}", dst.name(*w))
            }
            Inst::Nop => write!(f, "nop"),
            Inst::Ud2 => write!(f, "ud2"),
            Inst::MovssLoad { prec, dst, src } => {
                let s = if *prec == FpPrec::Single { "ss" } else { "sd" };
                write!(f, "mov{s} {dst}, {src}")
            }
            Inst::MovssStore { prec, dst, src } => {
                let s = if *prec == FpPrec::Single { "ss" } else { "sd" };
                write!(f, "mov{s} {dst}, {src}")
            }
            Inst::MovapsLoad { aligned, dst, src } => {
                write!(f, "mov{}ps {dst}, {src}", if *aligned { "a" } else { "u" })
            }
            Inst::MovapsStore { aligned, dst, src } => {
                write!(f, "mov{}ps {dst}, {src}", if *aligned { "a" } else { "u" })
            }
            Inst::MovXmmToGpr { w, dst, src } => {
                write!(
                    f,
                    "mov{} {}, {src}",
                    if *w == Width::W64 { "q" } else { "d" },
                    dst.name(*w)
                )
            }
            Inst::MovGprToXmm { w, dst, src } => {
                write!(
                    f,
                    "mov{} {dst}, {}",
                    if *w == Width::W64 { "q" } else { "d" },
                    src.name(*w)
                )
            }
            Inst::SseScalar { op, prec, dst, src } => {
                let s = if *prec == FpPrec::Single { "ss" } else { "sd" };
                write!(f, "{}{s} {dst}, {src}", op.mnemonic())
            }
            Inst::SsePacked { op, prec, dst, src } => {
                let s = if *prec == FpPrec::Single { "ps" } else { "pd" };
                write!(f, "{}{s} {dst}, {src}", op.mnemonic())
            }
            Inst::Xorps { dst, src } => write!(f, "xorps {dst}, {src}"),
            Inst::Ucomis { prec, a, b } => {
                let s = if *prec == FpPrec::Single { "ss" } else { "sd" };
                write!(f, "ucomi{s} {a}, {b}")
            }
            Inst::CvtSi2F { prec, iw, dst, src } => {
                let s = if *prec == FpPrec::Single { "ss" } else { "sd" };
                write!(f, "cvtsi2{s}.{iw} {dst}, {src}")
            }
            Inst::CvtF2Si { prec, iw, dst, src } => {
                let s = if *prec == FpPrec::Single { "ss" } else { "sd" };
                write!(f, "cvtt{s}2si {}, {src}", dst.name(*iw))
            }
            Inst::CvtF2F { to, dst, src } => match to {
                FpPrec::Double => write!(f, "cvtss2sd {dst}, {src}"),
                FpPrec::Single => write!(f, "cvtsd2ss {dst}, {src}"),
            },
            Inst::Mfence => write!(f, "mfence"),
            Inst::LockCmpxchg { w, mem, src } => {
                write!(f, "lock cmpxchg{w} {mem}, {}", src.name(*w))
            }
            Inst::LockXadd { w, mem, src } => write!(f, "lock xadd{w} {mem}, {}", src.name(*w)),
            Inst::LockAddI { w, mem, imm } => write!(f, "lock add{w} {mem}, {imm}"),
            Inst::Xchg { w, mem, src } => write!(f, "xchg{w} {mem}, {}", src.name(*w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jmp {
            target: Target::Abs(0)
        }
        .is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(!Inst::Call {
            target: Target::Abs(0)
        }
        .is_terminator());
    }

    #[test]
    fn memory_effects() {
        let store = Inst::MovRmR {
            w: Width::W64,
            dst: Rm::Mem(MemRef::base(Gpr::Rdi)),
            src: Gpr::Rax,
        };
        assert!(store.writes_memory());
        assert!(!store.reads_memory());

        let load = Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::base(Gpr::Rdi)),
        };
        assert!(load.reads_memory());
        assert!(!load.writes_memory());

        let rr = Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rbx),
        };
        assert!(!rr.reads_memory());
        assert!(!rr.writes_memory());
    }

    #[test]
    fn rmw_classification() {
        let cas = Inst::LockCmpxchg {
            w: Width::W32,
            mem: MemRef::base(Gpr::Rdi),
            src: Gpr::Rbx,
        };
        assert!(cas.is_atomic_rmw());
        assert!(cas.reads_memory() && cas.writes_memory());
        assert!(!Inst::Mfence.is_atomic_rmw());
    }

    #[test]
    fn display_smoke() {
        let i = Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rcx, 8, 16)),
        };
        assert_eq!(format!("{i}"), "add64 rax, [rdi + rcx*8 + 0x10]");
    }
}
