//! Byte-level x86-subset interpreter.
//!
//! Executes the **original machine-code bytes** of a [`Binary`] by
//! fetch/decode/execute over [`crate::decode::decode_one`] — it shares no
//! code with the lifter, so it is an independent oracle for the whole
//! translation pipeline: a bug in CFG reconstruction, translation, SSA
//! promotion, refinement, optimization, fence placement, or the Arm
//! backend shows up as a divergence between this interpreter and the
//! LIR/Arm executions of the same bytes.
//!
//! # The model ISA
//!
//! The interpreter implements the *model* x86 semantics the lifter
//! documents (`lifter::translate`), not the full hardware ISA, so that all
//! three executors can agree bit-for-bit on well-defined programs:
//!
//! * flags follow the lifter's deliberate approximations — `imul` and the
//!   shifts clear CF/OF (ZF/SF/PF of shifts are exact), one-operand
//!   64-bit `mul`/`imul` zeroes RDX instead of producing the high half,
//!   `adc`/`sbb` compute flags from the carry-less operands;
//! * shift counts are reduced modulo the operand width;
//! * `f64`/`f32` arithmetic is IEEE via Rust, `min`/`max` are
//!   NaN-ignoring (`f64::min`), `cvttsd2si` is Rust's saturating
//!   `as i64` cast (NaN → 0);
//! * the libc/pthread externs replicate `lir::interp`'s runtime model
//!   exactly (same bump allocator, same sequential fork–join threads, same
//!   per-thread stacks), so heap pointers and thread ids have identical
//!   numeric values in all executors.
//!
//! Flag bookkeeping goes through [`crate::flags`]' [`Flag`] vocabulary so
//! the interpreter and the lifter's liveness metadata name the same state.

use crate::binary::Binary;
use crate::decode::decode_one;
use crate::flags::Flag;
use crate::inst::{AluOp, FpPrec, Inst, MemRef, MulDivOp, Rm, ShiftOp, SseOp, Target, XmmRm};
use crate::reg::{Gpr, Width, Xmm};
use std::collections::BTreeMap;

/// Heap base for `malloc` (matches `lir::interp::HEAP_BASE`).
pub const HEAP_BASE: u64 = 0x7000_0000;
/// Stack top for the main thread (matches `lir::interp::STACK_TOP`).
pub const STACK_TOP: u64 = 0x6000_0000;
/// Bytes reserved per simulated thread stack.
pub const STACK_SIZE: u64 = 1 << 20;

/// Pseudo return address pushed below every entry frame; reaching it ends
/// the run (or the thread).
const RET_SENTINEL: u64 = 0xffff_8000_dead_0000;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum X86Error {
    /// The bytes at RIP do not decode.
    Decode(String),
    /// Control transferred outside the text section, or to an unknown
    /// extern.
    BadCall(String),
    /// Division by zero, `ud2`, `exit()`, or similar.
    Trap(String),
    /// The configured step limit was exceeded.
    StepLimit,
}

impl std::fmt::Display for X86Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            X86Error::Decode(s) => write!(f, "decode: {s}"),
            X86Error::BadCall(s) => write!(f, "bad call: {s}"),
            X86Error::Trap(s) => write!(f, "trap: {s}"),
            X86Error::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for X86Error {}

/// Sparse paged memory (same shape as the LIR interpreter's).
#[derive(Debug, Default)]
pub struct Memory {
    pages: BTreeMap<u64, Box<[u8; 4096]>>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; 4096] {
        self.pages
            .entry(addr >> 12)
            .or_insert_with(|| Box::new([0; 4096]))
    }

    /// Reads `len ≤ 16` bytes.
    pub fn read(&mut self, addr: u64, len: usize) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, o) in out.iter_mut().enumerate().take(len) {
            let a = addr.wrapping_add(i as u64);
            *o = self.page_mut(a)[(a & 0xfff) as usize];
        }
        out
    }

    /// Writes `len ≤ 16` bytes.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            let a = addr.wrapping_add(i as u64);
            self.page_mut(a)[(a & 0xfff) as usize] = *b;
        }
    }

    /// Reads a `u64`.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8)[..8].try_into().unwrap())
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a NUL-terminated C string (up to 64 KiB).
    pub fn read_cstr(&mut self, addr: u64) -> String {
        let mut s = Vec::new();
        for i in 0..65536 {
            let b = self.read(addr + i, 1)[0];
            if b == 0 {
                break;
            }
            s.push(b);
        }
        String::from_utf8_lossy(&s).into_owned()
    }
}

/// Dynamic execution statistics (mirrors `lir::interp::ExecStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct X86Stats {
    /// Instructions retired.
    pub insts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Fences executed: `mfence` counts into the third (SC) bucket, the
    /// first two exist for shape parity with the LIR stats.
    pub fences: (u64, u64, u64),
    /// Atomic RMWs executed.
    pub rmws: u64,
    /// Abstract cycle count.
    pub cycles: u64,
}

/// Outcome of a completed run (mirrors `lir::interp::RunResult`).
#[derive(Debug, Clone, PartialEq)]
pub struct X86RunResult {
    /// RAX at the final `ret`.
    pub ret: u64,
    /// Whole-run statistics.
    pub stats: X86Stats,
    /// Per-spawned-thread cycle counts, in spawn order.
    pub thread_cycles: Vec<u64>,
    /// Captured `printf`/`puts` output.
    pub output: String,
}

impl X86RunResult {
    /// Fork–join critical path: main-thread cycles plus the slowest child.
    pub fn critical_path_cycles(&self) -> u64 {
        let children: u64 = self.thread_cycles.iter().sum();
        let max = self.thread_cycles.iter().copied().max().unwrap_or(0);
        self.stats.cycles - children + max
    }
}

fn mask(w: Width, v: u64) -> u64 {
    v & w.mask()
}

fn sext_w(w: Width, v: u64) -> i64 {
    let shift = 64 - w.bits();
    ((mask(w, v) << shift) as i64) >> shift
}

/// The interpreter.
pub struct X86Machine<'b> {
    bin: &'b Binary,
    /// Simulated memory.
    pub mem: Memory,
    regs: [u64; 16],
    xmm: [[u8; 16]; 16],
    cf: bool,
    pf: bool,
    zf: bool,
    sf: bool,
    of: bool,
    heap_next: u64,
    stats: X86Stats,
    thread_cycles: Vec<u64>,
    output: String,
    steps_left: u64,
    mutexes: BTreeMap<u64, bool>,
}

impl<'b> X86Machine<'b> {
    /// Creates a machine for `bin`, mapping its globals into memory.
    pub fn new(bin: &'b Binary) -> X86Machine<'b> {
        let mut mem = Memory::new();
        for g in &bin.globals {
            let mut bytes = g.init.clone();
            bytes.resize(g.size as usize, 0);
            mem.write(g.addr, &bytes);
        }
        X86Machine {
            bin,
            mem,
            regs: [0; 16],
            xmm: [[0; 16]; 16],
            cf: false,
            pf: false,
            zf: false,
            sf: false,
            of: false,
            heap_next: HEAP_BASE,
            stats: X86Stats::default(),
            thread_cycles: Vec::new(),
            output: String::new(),
            steps_left: 500_000_000,
            mutexes: BTreeMap::new(),
        }
    }

    /// Sets the execution step limit.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.steps_left = limit;
    }

    /// Current bump-allocator high-water mark (`HEAP_BASE` before the
    /// first `malloc`). Useful for bounding final-memory comparisons.
    pub fn heap_next(&self) -> u64 {
        self.heap_next
    }

    /// Runs the named function with the System-V argument registers set to
    /// `args` (RDI, RSI, …) and `fp_args` (XMM0, XMM1, …).
    ///
    /// # Errors
    ///
    /// Returns an [`X86Error`] when the function is unknown or execution
    /// faults.
    pub fn run(
        &mut self,
        name: &str,
        args: &[u64],
        fp_args: &[f64],
    ) -> Result<X86RunResult, X86Error> {
        let f = self
            .bin
            .function_by_name(name)
            .ok_or_else(|| X86Error::BadCall(format!("no function named {name}")))?;
        self.run_addr(f.addr, args, fp_args)
    }

    /// Runs the function at `entry` (see [`X86Machine::run`]).
    ///
    /// # Errors
    ///
    /// Returns an [`X86Error`] when execution faults.
    pub fn run_addr(
        &mut self,
        entry: u64,
        args: &[u64],
        fp_args: &[f64],
    ) -> Result<X86RunResult, X86Error> {
        for (i, a) in args.iter().enumerate().take(Gpr::PARAMS.len()) {
            self.regs[Gpr::PARAMS[i].encoding() as usize] = *a;
        }
        for (i, a) in fp_args.iter().enumerate().take(Xmm::PARAMS.len()) {
            let mut lane = [0u8; 16];
            lane[..8].copy_from_slice(&a.to_bits().to_le_bytes());
            self.xmm[Xmm::PARAMS[i].encoding() as usize] = lane;
        }
        let sp = STACK_TOP - 8;
        self.mem.write_u64(sp, RET_SENTINEL);
        self.regs[Gpr::Rsp.encoding() as usize] = sp;
        self.exec_from(entry)?;
        Ok(X86RunResult {
            ret: self.regs[Gpr::Rax.encoding() as usize],
            stats: self.stats,
            thread_cycles: self.thread_cycles.clone(),
            output: self.output.clone(),
        })
    }

    /// Fetch/decode/execute until control reaches the sentinel return
    /// address.
    fn exec_from(&mut self, entry: u64) -> Result<(), X86Error> {
        let mut rip = entry;
        loop {
            if rip == RET_SENTINEL {
                return Ok(());
            }
            if self.steps_left == 0 {
                return Err(X86Error::StepLimit);
            }
            self.steps_left -= 1;
            let off = rip
                .checked_sub(self.bin.text_base)
                .filter(|o| (*o as usize) < self.bin.text.len())
                .ok_or_else(|| X86Error::BadCall(format!("rip {rip:#x} outside text")))?
                as usize;
            let d = decode_one(&self.bin.text[off..], rip)
                .map_err(|e| X86Error::Decode(format!("at {rip:#x}: {e}")))?;
            self.stats.insts += 1;
            self.stats.cycles += Self::cost_of(&d.inst);
            if d.inst.reads_memory() {
                self.stats.loads += 1;
            }
            if d.inst.writes_memory() {
                self.stats.stores += 1;
            }
            rip = self.step(&d.inst, rip + d.len as u64)?;
        }
    }

    /// Abstract cost of one instruction, aligned with the LIR
    /// interpreter's weights (fences and RMWs dominate).
    fn cost_of(inst: &Inst) -> u64 {
        match inst {
            Inst::Mfence => 40,
            Inst::LockCmpxchg { .. }
            | Inst::LockXadd { .. }
            | Inst::LockAddI { .. }
            | Inst::Xchg { .. } => 48,
            Inst::MulDiv {
                op: MulDivOp::Div | MulDivOp::IDiv,
                ..
            } => 20,
            Inst::SseScalar { op: SseOp::Div, .. } | Inst::SsePacked { op: SseOp::Div, .. } => 15,
            Inst::Call { .. } => 4,
            i if i.reads_memory() || i.writes_memory() => 4,
            _ => 1,
        }
    }

    // ---- registers -------------------------------------------------------

    fn gpr64(&self, r: Gpr) -> u64 {
        self.regs[r.encoding() as usize]
    }

    fn read_gpr(&self, r: Gpr, w: Width) -> u64 {
        mask(w, self.gpr64(r))
    }

    /// Width-correct GPR write: 64-bit writes replace, 32-bit writes zero
    /// the upper half, 8/16-bit writes merge.
    fn write_gpr(&mut self, r: Gpr, w: Width, v: u64) {
        let slot = &mut self.regs[r.encoding() as usize];
        *slot = match w {
            Width::W64 => v,
            Width::W32 => mask(w, v),
            Width::W8 | Width::W16 => (*slot & !w.mask()) | mask(w, v),
        };
    }

    // ---- flags -----------------------------------------------------------

    /// Reads one modelled flag (the [`Flag`] vocabulary of
    /// [`crate::flags`]).
    pub fn flag(&self, f: Flag) -> bool {
        match f {
            Flag::Cf => self.cf,
            Flag::Pf => self.pf,
            Flag::Zf => self.zf,
            Flag::Sf => self.sf,
            Flag::Of => self.of,
        }
    }

    fn set_zsp(&mut self, res: u64, w: Width) {
        let r = mask(w, res);
        self.zf = r == 0;
        self.sf = sext_w(w, r) < 0;
        // Parity of the low byte: PF is set when the popcount is even,
        // matching the lifter's shift/xor reduction.
        self.pf = (r as u8).count_ones() % 2 == 0;
    }

    fn set_flags_add(&mut self, a: u64, b: u64, res: u64, w: Width) {
        let (a, b, r) = (mask(w, a), mask(w, b), mask(w, res));
        self.cf = r < a;
        self.of = sext_w(w, (a ^ r) & (b ^ r)) < 0;
        self.set_zsp(r, w);
    }

    fn set_flags_sub(&mut self, a: u64, b: u64, res: u64, w: Width) {
        let (a, b, r) = (mask(w, a), mask(w, b), mask(w, res));
        self.cf = a < b;
        self.of = sext_w(w, (a ^ b) & (a ^ r)) < 0;
        self.set_zsp(r, w);
    }

    fn set_flags_logic(&mut self, res: u64, w: Width) {
        self.cf = false;
        self.of = false;
        self.set_zsp(res, w);
    }

    /// Evaluates a condition code against the current flags.
    pub fn cond(&self, cc: crate::reg::Cond) -> bool {
        use crate::reg::Cond;
        match cc {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !(self.cf || self.zf),
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }

    // ---- memory operands -------------------------------------------------

    fn addr_of(&self, m: &MemRef) -> u64 {
        if m.rip_relative {
            return m.disp as u64;
        }
        let mut a = m.base.map(|b| self.gpr64(b)).unwrap_or(0);
        if let Some(i) = m.index {
            a = a.wrapping_add(self.gpr64(i).wrapping_mul(u64::from(m.scale)));
        }
        a.wrapping_add(m.disp as u64)
    }

    fn load(&mut self, m: &MemRef, w: Width) -> u64 {
        let a = self.addr_of(m);
        let bytes = self.mem.read(a, w.bytes() as usize);
        let mut b = [0u8; 8];
        b[..w.bytes() as usize].copy_from_slice(&bytes[..w.bytes() as usize]);
        u64::from_le_bytes(b)
    }

    fn store(&mut self, m: &MemRef, w: Width, v: u64) {
        let a = self.addr_of(m);
        self.mem.write(a, &v.to_le_bytes()[..w.bytes() as usize]);
    }

    fn read_rm(&mut self, rm: &Rm, w: Width) -> u64 {
        match rm {
            Rm::Reg(r) => self.read_gpr(*r, w),
            Rm::Mem(m) => self.load(m, w),
        }
    }

    fn write_rm(&mut self, rm: &Rm, w: Width, v: u64) {
        match rm {
            Rm::Reg(r) => self.write_gpr(*r, w, v),
            Rm::Mem(m) => self.store(m, w, v),
        }
    }

    // ---- XMM -------------------------------------------------------------

    fn xmm_scalar(&self, x: Xmm, prec: FpPrec) -> u64 {
        let lane = &self.xmm[x.encoding() as usize];
        match prec {
            FpPrec::Single => u64::from(u32::from_le_bytes(lane[..4].try_into().unwrap())),
            FpPrec::Double => u64::from_le_bytes(lane[..8].try_into().unwrap()),
        }
    }

    /// Writes the low lane only, preserving the rest of the register.
    fn set_xmm_scalar(&mut self, x: Xmm, prec: FpPrec, bits: u64) {
        let lane = &mut self.xmm[x.encoding() as usize];
        match prec {
            FpPrec::Single => lane[..4].copy_from_slice(&(bits as u32).to_le_bytes()),
            FpPrec::Double => lane[..8].copy_from_slice(&bits.to_le_bytes()),
        }
    }

    /// Zeroes bytes `from..16` (movss-load / scalar-return semantics).
    fn zero_xmm_upper(&mut self, x: Xmm, from: usize) {
        for b in &mut self.xmm[x.encoding() as usize][from..] {
            *b = 0;
        }
    }

    fn read_xmmrm_scalar(&mut self, rm: &XmmRm, prec: FpPrec) -> u64 {
        match rm {
            XmmRm::Reg(x) => self.xmm_scalar(*x, prec),
            XmmRm::Mem(m) => {
                let a = self.addr_of(m);
                let bytes = self.mem.read(a, prec.bytes() as usize);
                let mut b = [0u8; 8];
                b[..prec.bytes() as usize].copy_from_slice(&bytes[..prec.bytes() as usize]);
                u64::from_le_bytes(b)
            }
        }
    }

    fn read_xmmrm_vec(&mut self, rm: &XmmRm) -> [u8; 16] {
        match rm {
            XmmRm::Reg(x) => self.xmm[x.encoding() as usize],
            XmmRm::Mem(m) => {
                let a = self.addr_of(m);
                self.mem.read(a, 16)
            }
        }
    }

    /// Scalar value as `f64` (`f32` operands are extended exactly).
    fn scalar_f64(bits: u64, prec: FpPrec) -> f64 {
        match prec {
            FpPrec::Single => f64::from(f32::from_bits(bits as u32)),
            FpPrec::Double => f64::from_bits(bits),
        }
    }

    // ---- ALU -------------------------------------------------------------

    fn alu(&mut self, op: AluOp, w: Width, a: u64, b: u64) -> u64 {
        let (a, b) = (mask(w, a), mask(w, b));
        match op {
            AluOp::Add => {
                let r = mask(w, a.wrapping_add(b));
                self.set_flags_add(a, b, r, w);
                r
            }
            AluOp::Adc => {
                // Model semantics: result includes the carry, the flags
                // are computed from the carry-less operand pair.
                let r = mask(w, a.wrapping_add(b).wrapping_add(u64::from(self.cf)));
                self.set_flags_add(a, b, r, w);
                r
            }
            AluOp::Sub | AluOp::Cmp => {
                let r = mask(w, a.wrapping_sub(b));
                self.set_flags_sub(a, b, r, w);
                r
            }
            AluOp::Sbb => {
                let r = mask(w, a.wrapping_sub(b).wrapping_sub(u64::from(self.cf)));
                self.set_flags_sub(a, b, r, w);
                r
            }
            AluOp::And => {
                let r = a & b;
                self.set_flags_logic(r, w);
                r
            }
            AluOp::Or => {
                let r = a | b;
                self.set_flags_logic(r, w);
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                self.set_flags_logic(r, w);
                r
            }
        }
    }

    fn shift(&mut self, op: ShiftOp, w: Width, a: u64, amt: u64) -> u64 {
        // Counts reduce modulo the operand width (LIR shift semantics).
        let n = (amt as u32) % w.bits();
        let a = mask(w, a);
        let r = match op {
            ShiftOp::Shl => mask(w, a.wrapping_shl(n)),
            ShiftOp::Shr => a.wrapping_shr(n),
            ShiftOp::Sar => mask(w, (sext_w(w, a) >> n) as u64),
        };
        // Model semantics: CF/OF cleared, ZF/SF/PF exact.
        self.cf = false;
        self.of = false;
        self.set_zsp(r, w);
        r
    }

    fn mul_div(&mut self, op: MulDivOp, w: Width, src: &Rm) -> Result<(), X86Error> {
        let b = self.read_rm(src, w);
        let a = self.read_gpr(Gpr::Rax, w);
        match op {
            MulDivOp::Mul | MulDivOp::IMul => {
                self.write_gpr(Gpr::Rax, w, mask(w, a.wrapping_mul(b)));
                if w == Width::W32 {
                    // Exact high half via 64-bit widening.
                    let (ca, cb) = if op == MulDivOp::IMul {
                        (sext_w(w, a) as u64, sext_w(w, b) as u64)
                    } else {
                        (a, b)
                    };
                    self.write_gpr(Gpr::Rdx, w, ca.wrapping_mul(cb) >> 32);
                } else {
                    // Model semantics: no 64-bit high half, RDX is zeroed.
                    self.write_gpr(Gpr::Rdx, w, 0);
                }
            }
            MulDivOp::Div => {
                if b == 0 {
                    return Err(X86Error::Trap("division by zero".to_string()));
                }
                self.write_gpr(Gpr::Rax, w, a / b);
                self.write_gpr(Gpr::Rdx, w, a % b);
            }
            MulDivOp::IDiv => {
                if b == 0 {
                    return Err(X86Error::Trap("division by zero".to_string()));
                }
                let (sa, sb) = (sext_w(w, a), sext_w(w, b));
                self.write_gpr(Gpr::Rax, w, sa.wrapping_div(sb) as u64);
                self.write_gpr(Gpr::Rdx, w, sa.wrapping_rem(sb) as u64);
            }
        }
        Ok(())
    }

    // ---- control flow ----------------------------------------------------

    fn push64(&mut self, v: u64) {
        let nsp = self.gpr64(Gpr::Rsp).wrapping_sub(8);
        self.regs[Gpr::Rsp.encoding() as usize] = nsp;
        self.mem.write_u64(nsp, v);
    }

    fn pop64(&mut self) -> u64 {
        let sp = self.gpr64(Gpr::Rsp);
        let v = self.mem.read_u64(sp);
        self.regs[Gpr::Rsp.encoding() as usize] = sp.wrapping_add(8);
        v
    }

    /// Transfers control to `target` (a `call`): extern stubs dispatch to
    /// the runtime and fall through to `next`; text addresses push the
    /// return address.
    fn do_call(&mut self, target: u64, next: u64) -> Result<u64, X86Error> {
        if let Some(ext) = self.bin.extern_at(target) {
            let name = ext.name.clone();
            self.call_extern(&name)?;
            Ok(next)
        } else {
            self.push64(next);
            Ok(target)
        }
    }

    /// Executes one decoded instruction; returns the next RIP.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, inst: &Inst, next: u64) -> Result<u64, X86Error> {
        match inst {
            Inst::Nop => {}
            Inst::MovRRm { w, dst, src } => {
                let v = self.read_rm(src, *w);
                self.write_gpr(*dst, *w, v);
            }
            Inst::MovRmR { w, dst, src } => {
                let v = self.read_gpr(*src, *w);
                self.write_rm(dst, *w, v);
            }
            Inst::MovRmI { w, dst, imm } => {
                self.write_rm(dst, *w, mask(*w, *imm as i64 as u64));
            }
            Inst::MovAbs { dst, imm } => self.write_gpr(*dst, Width::W64, *imm),
            Inst::MovZx { dw, sw, dst, src } => {
                let v = self.read_rm(src, *sw);
                self.write_gpr(*dst, *dw, v);
            }
            Inst::MovSx { dw, sw, dst, src } => {
                let v = self.read_rm(src, *sw);
                self.write_gpr(*dst, *dw, sext_w(*sw, v) as u64);
            }
            Inst::Lea { w, dst, addr } => {
                let a = self.addr_of(addr);
                self.write_gpr(*dst, *w, mask(*w, a));
            }
            Inst::AluRRm { op, w, dst, src } => {
                let a = self.read_gpr(*dst, *w);
                let b = self.read_rm(src, *w);
                let r = self.alu(*op, *w, a, b);
                if op.writes_dst() {
                    self.write_gpr(*dst, *w, r);
                }
            }
            Inst::AluRmR { op, w, dst, src } => {
                let a = self.read_rm(dst, *w);
                let b = self.read_gpr(*src, *w);
                let r = self.alu(*op, *w, a, b);
                if op.writes_dst() {
                    self.write_rm(dst, *w, r);
                }
            }
            Inst::AluRmI { op, w, dst, imm } => {
                let a = self.read_rm(dst, *w);
                let b = mask(*w, *imm as i64 as u64);
                let r = self.alu(*op, *w, a, b);
                if op.writes_dst() {
                    self.write_rm(dst, *w, r);
                }
            }
            Inst::Test { w, a, b } => {
                let x = self.read_rm(a, *w);
                let y = self.read_gpr(*b, *w);
                self.set_flags_logic(x & y, *w);
            }
            Inst::TestI { w, a, imm } => {
                let x = self.read_rm(a, *w);
                self.set_flags_logic(x & mask(*w, *imm as i64 as u64), *w);
            }
            Inst::ShiftI { op, w, dst, imm } => {
                let a = self.read_rm(dst, *w);
                let r = self.shift(*op, *w, a, u64::from(*imm));
                self.write_rm(dst, *w, r);
            }
            Inst::ShiftCl { op, w, dst } => {
                let a = self.read_rm(dst, *w);
                let cl = self.read_gpr(Gpr::Rcx, Width::W8);
                let r = self.shift(*op, *w, a, cl);
                self.write_rm(dst, *w, r);
            }
            Inst::IMul2 { w, dst, src } => {
                let a = self.read_gpr(*dst, *w);
                let b = self.read_rm(src, *w);
                let r = mask(*w, a.wrapping_mul(b));
                // Model semantics: CF/OF cleared, ZF/SF/PF untouched.
                self.cf = false;
                self.of = false;
                self.write_gpr(*dst, *w, r);
            }
            Inst::IMul3 { w, dst, src, imm } => {
                let b = self.read_rm(src, *w);
                let r = mask(*w, b.wrapping_mul(mask(*w, *imm as i64 as u64)));
                self.cf = false;
                self.of = false;
                self.write_gpr(*dst, *w, r);
            }
            Inst::MulDiv { op, w, src } => self.mul_div(*op, *w, src)?,
            Inst::Cqo { w } => {
                let a = self.read_gpr(Gpr::Rax, *w);
                let sign = sext_w(*w, a) >> (w.bits() - 1);
                self.write_gpr(Gpr::Rdx, *w, sign as u64);
            }
            Inst::Neg { w, dst } => {
                let a = self.read_rm(dst, *w);
                let r = mask(*w, 0u64.wrapping_sub(a));
                self.set_flags_sub(0, a, r, *w);
                self.write_rm(dst, *w, r);
            }
            Inst::Not { w, dst } => {
                let a = self.read_rm(dst, *w);
                self.write_rm(dst, *w, mask(*w, !a));
            }
            Inst::Push { src } => {
                let v = self.gpr64(*src);
                self.push64(v);
            }
            Inst::Pop { dst } => {
                let sp = self.gpr64(Gpr::Rsp);
                let v = self.mem.read_u64(sp);
                self.write_gpr(*dst, Width::W64, v);
                // Re-read RSP so `pop rsp` matches the lifter's model.
                let sp2 = self.gpr64(Gpr::Rsp);
                self.regs[Gpr::Rsp.encoding() as usize] = sp2.wrapping_add(8);
            }
            Inst::Jmp { target } => match target {
                Target::Abs(t) => {
                    if let Some(ext) = self.bin.extern_at(*t) {
                        // Tail call through a PLT stub.
                        let name = ext.name.clone();
                        self.call_extern(&name)?;
                        return Ok(self.pop64());
                    }
                    return Ok(*t);
                }
                Target::Indirect(_) => return Err(X86Error::BadCall("indirect jump".to_string())),
            },
            Inst::Jcc { cc, target } => {
                let Target::Abs(t) = target else {
                    return Err(X86Error::BadCall("indirect jcc".to_string()));
                };
                if self.cond(*cc) {
                    return Ok(*t);
                }
            }
            Inst::Call { target } => {
                let t = match target {
                    Target::Abs(t) => *t,
                    Target::Indirect(r) => self.gpr64(*r),
                };
                return self.do_call(t, next);
            }
            Inst::Ret => return Ok(self.pop64()),
            Inst::Setcc { cc, dst } => {
                let c = u64::from(self.cond(*cc));
                self.write_rm(dst, Width::W8, c);
            }
            Inst::Cmovcc { cc, w, dst, src } => {
                let v = if self.cond(*cc) {
                    self.read_rm(src, *w)
                } else {
                    self.read_gpr(*dst, *w)
                };
                // Width-w write even when not taken (zero-extends on W32),
                // exactly as the lifter models cmov.
                self.write_gpr(*dst, *w, v);
            }
            Inst::Ud2 => return Err(X86Error::Trap("ud2".to_string())),
            Inst::MovssLoad { prec, dst, src } => {
                let v = self.read_xmmrm_scalar(src, *prec);
                self.set_xmm_scalar(*dst, *prec, v);
                if matches!(src, XmmRm::Mem(_)) {
                    self.zero_xmm_upper(*dst, prec.bytes() as usize);
                }
            }
            Inst::MovssStore { prec, dst, src } => {
                let v = self.xmm_scalar(*src, *prec);
                let a = self.addr_of(dst);
                self.mem.write(a, &v.to_le_bytes()[..prec.bytes() as usize]);
            }
            Inst::MovapsLoad { dst, src, .. } => {
                let v = self.read_xmmrm_vec(src);
                self.xmm[dst.encoding() as usize] = v;
            }
            Inst::MovapsStore { dst, src, .. } => {
                let v = self.xmm[src.encoding() as usize];
                let a = self.addr_of(dst);
                self.mem.write(a, &v);
            }
            Inst::MovXmmToGpr { w, dst, src } => match w {
                Width::W64 => {
                    let v = self.xmm_scalar(*src, FpPrec::Double);
                    self.write_gpr(*dst, Width::W64, v);
                }
                _ => {
                    let v = self.xmm_scalar(*src, FpPrec::Single);
                    self.write_gpr(*dst, Width::W32, v);
                }
            },
            Inst::MovGprToXmm { w, dst, src } => match w {
                Width::W64 => {
                    let v = self.gpr64(*src);
                    self.set_xmm_scalar(*dst, FpPrec::Double, v);
                    self.zero_xmm_upper(*dst, 8);
                }
                _ => {
                    let v = self.read_gpr(*src, Width::W32);
                    self.set_xmm_scalar(*dst, FpPrec::Single, v);
                    self.zero_xmm_upper(*dst, 4);
                }
            },
            Inst::SseScalar {
                op: SseOp::Sqrt,
                prec,
                dst,
                src,
            } => {
                // sqrt is lifted to a libm call operating on f64.
                let v = self.read_xmmrm_scalar(src, *prec);
                let r = Self::scalar_f64(v, *prec).sqrt();
                let bits = match prec {
                    FpPrec::Single => u64::from((r as f32).to_bits()),
                    FpPrec::Double => r.to_bits(),
                };
                self.set_xmm_scalar(*dst, *prec, bits);
            }
            Inst::SseScalar { op, prec, dst, src } => {
                let a = self.xmm_scalar(*dst, *prec);
                let b = self.read_xmmrm_scalar(src, *prec);
                let bits = match prec {
                    FpPrec::Single => {
                        let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
                        let r = match op {
                            SseOp::Add => x + y,
                            SseOp::Sub => x - y,
                            SseOp::Mul => x * y,
                            SseOp::Div => x / y,
                            SseOp::Min => x.min(y),
                            SseOp::Max => x.max(y),
                            SseOp::Sqrt => unreachable!(),
                        };
                        u64::from(r.to_bits())
                    }
                    FpPrec::Double => {
                        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
                        let r = match op {
                            SseOp::Add => x + y,
                            SseOp::Sub => x - y,
                            SseOp::Mul => x * y,
                            SseOp::Div => x / y,
                            SseOp::Min => x.min(y),
                            SseOp::Max => x.max(y),
                            SseOp::Sqrt => unreachable!(),
                        };
                        r.to_bits()
                    }
                };
                self.set_xmm_scalar(*dst, *prec, bits);
            }
            Inst::SsePacked { op, dst, src, .. } => {
                if *op == SseOp::Sqrt {
                    return Err(X86Error::Trap("packed sqrt".to_string()));
                }
                // Model semantics: packed ops are two f64 lanes regardless
                // of the encoded precision (the lifter reads V2F64).
                let a = self.xmm[dst.encoding() as usize];
                let b = self.read_xmmrm_vec(src);
                let mut out = [0u8; 16];
                for i in 0..2 {
                    let x = f64::from_le_bytes(a[i * 8..i * 8 + 8].try_into().unwrap());
                    let y = f64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap());
                    let z = match op {
                        SseOp::Add => x + y,
                        SseOp::Sub => x - y,
                        SseOp::Mul => x * y,
                        SseOp::Div => x / y,
                        SseOp::Min => x.min(y),
                        SseOp::Max => x.max(y),
                        SseOp::Sqrt => unreachable!(),
                    };
                    out[i * 8..i * 8 + 8].copy_from_slice(&z.to_le_bytes());
                }
                self.xmm[dst.encoding() as usize] = out;
            }
            Inst::Xorps { dst, src } => {
                if *src == XmmRm::Reg(*dst) {
                    self.xmm[dst.encoding() as usize] = [0; 16];
                } else {
                    let b = self.read_xmmrm_vec(src);
                    let lane = &mut self.xmm[dst.encoding() as usize];
                    for (o, x) in lane.iter_mut().zip(b.iter()) {
                        *o ^= x;
                    }
                }
            }
            Inst::Ucomis { prec, a, b } => {
                let x = Self::scalar_f64(self.xmm_scalar(*a, *prec), *prec);
                let y = Self::scalar_f64(self.read_xmmrm_scalar(b, *prec), *prec);
                let unord = x.is_nan() || y.is_nan();
                self.zf = (!unord && x == y) || unord;
                self.cf = (!unord && x < y) || unord;
                self.pf = unord;
                self.of = false;
                self.sf = false;
            }
            Inst::CvtSi2F { prec, iw, dst, src } => {
                let v = self.read_rm(src, *iw);
                let x = sext_w(*iw, v) as f64;
                let bits = match prec {
                    FpPrec::Single => u64::from((x as f32).to_bits()),
                    FpPrec::Double => x.to_bits(),
                };
                self.set_xmm_scalar(*dst, *prec, bits);
            }
            Inst::CvtF2Si { prec, iw, dst, src } => {
                let v = self.read_xmmrm_scalar(src, *prec);
                // Rust's saturating float→int cast, exactly like the LIR
                // FpToSi model (NaN → 0).
                let r = (Self::scalar_f64(v, *prec) as i64) as u64;
                self.write_gpr(*dst, *iw, mask(*iw, r));
            }
            Inst::CvtF2F { to, dst, src } => {
                let bits = match to {
                    FpPrec::Double => {
                        let v = self.read_xmmrm_scalar(src, FpPrec::Single);
                        f64::from(f32::from_bits(v as u32)).to_bits()
                    }
                    FpPrec::Single => {
                        let v = self.read_xmmrm_scalar(src, FpPrec::Double);
                        u64::from((f64::from_bits(v) as f32).to_bits())
                    }
                };
                self.set_xmm_scalar(*dst, *to, bits);
            }
            Inst::Mfence => self.stats.fences.2 += 1,
            Inst::LockCmpxchg { w, mem, src } => {
                self.stats.rmws += 1;
                let expected = self.read_gpr(Gpr::Rax, *w);
                let old = self.load(mem, *w);
                if old == expected {
                    let v = self.read_gpr(*src, *w);
                    self.store(mem, *w, v);
                }
                // Model semantics: only ZF is written.
                self.zf = old == expected;
                self.write_gpr(Gpr::Rax, *w, old);
            }
            Inst::LockXadd { w, mem, src } => {
                self.stats.rmws += 1;
                let v = self.read_gpr(*src, *w);
                let old = self.load(mem, *w);
                let res = mask(*w, old.wrapping_add(v));
                self.store(mem, *w, res);
                self.set_flags_add(old, v, res, *w);
                self.write_gpr(*src, *w, old);
            }
            Inst::LockAddI { w, mem, imm } => {
                self.stats.rmws += 1;
                let old = self.load(mem, *w);
                let res = mask(*w, old.wrapping_add(mask(*w, *imm as i64 as u64)));
                // Model semantics: the flag outputs are unused (the lifter
                // emits a bare atomicrmw).
                self.store(mem, *w, res);
            }
            Inst::Xchg { w, mem, src } => {
                self.stats.rmws += 1;
                let v = self.read_gpr(*src, *w);
                let old = self.load(mem, *w);
                self.store(mem, *w, v);
                self.write_gpr(*src, *w, old);
            }
        }
        Ok(next)
    }

    // ---- externs ---------------------------------------------------------

    /// Dispatches a call to a PLT stub, replicating the LIR interpreter's
    /// runtime model so observable values (heap pointers, thread ids,
    /// written memory) are numerically identical across executors.
    fn call_extern(&mut self, name: &str) -> Result<(), X86Error> {
        let a0 = self.gpr64(Gpr::Rdi);
        let a1 = self.gpr64(Gpr::Rsi);
        let a2 = self.gpr64(Gpr::Rdx);
        let a3 = self.gpr64(Gpr::Rcx);
        match name {
            "malloc" | "valloc" => {
                let addr = self.heap_next;
                self.heap_next += (a0 + 63) & !63;
                self.write_gpr(Gpr::Rax, Width::W64, addr);
            }
            "calloc" => {
                let size = a0 * a1;
                let addr = self.heap_next;
                self.heap_next += (size + 63) & !63;
                self.write_gpr(Gpr::Rax, Width::W64, addr);
            }
            "free" => {}
            "memset" => {
                let buf = vec![a1 as u8; a2 as usize];
                self.mem.write(a0, &buf);
                self.stats.cycles += a2 / 8;
                self.write_gpr(Gpr::Rax, Width::W64, a0);
            }
            "memcpy" => {
                let mut buf = vec![0u8; a2 as usize];
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = self.mem.read(a1 + i as u64, 1)[0];
                }
                self.mem.write(a0, &buf);
                self.stats.cycles += a2 / 4;
                self.write_gpr(Gpr::Rax, Width::W64, a0);
            }
            "strlen" => {
                let s = self.mem.read_cstr(a0);
                self.write_gpr(Gpr::Rax, Width::W64, s.len() as u64);
            }
            "printf" => {
                let fmt = self.mem.read_cstr(a0);
                let ints = [a1, a2, a3, self.gpr64(Gpr::R8), self.gpr64(Gpr::R9)];
                let floats: Vec<f64> = (0..8)
                    .map(|i| f64::from_bits(self.xmm_scalar(Xmm(i), FpPrec::Double)))
                    .collect();
                let s = format_c(&fmt, &ints, &floats);
                self.output.push_str(&s);
                self.write_gpr(Gpr::Rax, Width::W64, 0);
            }
            "puts" => {
                let s = self.mem.read_cstr(a0);
                self.output.push_str(&s);
                self.output.push('\n');
                self.write_gpr(Gpr::Rax, Width::W64, 0);
            }
            "exit" | "abort" => return Err(X86Error::Trap(format!("{name}() called"))),
            "sqrt" => {
                let x = f64::from_bits(self.xmm_scalar(Xmm(0), FpPrec::Double));
                self.set_xmm_scalar(Xmm(0), FpPrec::Double, x.sqrt().to_bits());
                self.zero_xmm_upper(Xmm(0), 8);
            }
            "pthread_create" => {
                // int pthread_create(pthread_t *t, attr, void *(*fn)(void*), void *arg)
                let (tid_ptr, fn_addr, arg) = (a0, a2, a3);
                let tid = 1 + self.thread_cycles.len() as u64;
                self.mem.write_u64(tid_ptr, tid);
                // Run the thread body now (sequential fork–join), on its
                // own stack, attributing its cycles to the child bucket.
                // The parent's register file is restored afterwards: the
                // child is a separate thread, not a callee.
                let before = self.stats.cycles;
                let saved_regs = self.regs;
                let saved_xmm = self.xmm;
                let saved_flags = (self.cf, self.pf, self.zf, self.sf, self.of);
                let sp = STACK_TOP - tid * STACK_SIZE - 8;
                self.mem.write_u64(sp, RET_SENTINEL);
                self.regs[Gpr::Rsp.encoding() as usize] = sp;
                self.regs[Gpr::Rdi.encoding() as usize] = arg;
                self.exec_from(fn_addr)?;
                self.regs = saved_regs;
                self.xmm = saved_xmm;
                (self.cf, self.pf, self.zf, self.sf, self.of) = saved_flags;
                self.thread_cycles.push(self.stats.cycles - before);
                self.write_gpr(Gpr::Rax, Width::W64, 0);
            }
            "pthread_join" => self.write_gpr(Gpr::Rax, Width::W64, 0),
            "pthread_exit" => {}
            "pthread_mutex_init" | "pthread_mutex_destroy" => {
                self.write_gpr(Gpr::Rax, Width::W64, 0);
            }
            "pthread_mutex_lock" => {
                let locked = self.mutexes.entry(a0).or_insert(false);
                if *locked {
                    return Err(X86Error::Trap(format!(
                        "deadlock: mutex {a0:#x} locked twice under sequential fork-join"
                    )));
                }
                *locked = true;
                self.write_gpr(Gpr::Rax, Width::W64, 0);
            }
            "pthread_mutex_unlock" => {
                self.mutexes.insert(a0, false);
                self.write_gpr(Gpr::Rax, Width::W64, 0);
            }
            "sysconf" => self.write_gpr(Gpr::Rax, Width::W64, 4),
            other => return Err(X86Error::BadCall(format!("unknown extern @{other}"))),
        }
        Ok(())
    }
}

/// Tiny C `printf` formatter. Integer conversions pull from the integer
/// argument registers in order, float conversions from XMM0.. — close
/// enough for the test corpus (output strings are not part of the
/// cross-executor agreement check; variadic argument recovery differs
/// between the byte-level and lifted views by design).
fn format_c(fmt: &str, ints: &[u64], floats: &[f64]) -> String {
    let mut out = String::new();
    let mut it = fmt.chars().peekable();
    let mut ii = 0usize;
    let mut fi = 0usize;
    let next_int = |ii: &mut usize| {
        let v = ints.get(*ii).copied().unwrap_or(0);
        *ii += 1;
        v
    };
    while let Some(c) = it.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        while let Some(&n) = it.peek() {
            if n.is_ascii_digit() || n == '.' || n == 'l' || n == 'z' || n == '-' {
                it.next();
            } else {
                break;
            }
        }
        match it.next() {
            Some('d') | Some('i') => out.push_str(&format!("{}", next_int(&mut ii) as i64)),
            Some('u') => out.push_str(&format!("{}", next_int(&mut ii))),
            Some('x') => out.push_str(&format!("{:x}", next_int(&mut ii))),
            Some('f') | Some('g') | Some('e') => {
                let v = floats.get(fi).copied().unwrap_or(0.0);
                fi += 1;
                out.push_str(&format!("{v:.6}"));
            }
            Some('c') => out.push((next_int(&mut ii) as u8) as char),
            Some('s') => out.push_str("<str>"),
            Some('%') => out.push('%'),
            Some(other) => out.push(other),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::binary::BinaryBuilder;
    use crate::inst::{AluOp, Inst, MemRef, Rm};
    use crate::reg::{Cond, Gpr, Width};

    fn single_fn(body: &[Inst]) -> Binary {
        let mut bin = BinaryBuilder::new();
        let mut a = Asm::new();
        for i in body {
            a.push(*i);
        }
        a.push(Inst::Ret);
        let addr = bin.next_function_addr();
        bin.add_function("f", a.finish(addr).unwrap());
        bin.finish()
    }

    #[test]
    fn add_and_return() {
        let bin = single_fn(&[Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdi),
        }]);
        let mut m = X86Machine::new(&bin);
        // RAX starts 0; add RDI (=41) and return.
        let r = m.run("f", &[41], &[]).unwrap();
        assert_eq!(r.ret, 41);
        assert_eq!(r.stats.insts, 2);
    }

    #[test]
    fn memory_roundtrip_through_region() {
        let bin = single_fn(&[
            Inst::MovRmI {
                w: Width::W64,
                dst: Rm::Mem(MemRef::base_disp(Gpr::Rdi, 8)),
                imm: 77,
            },
            Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Mem(MemRef::base_disp(Gpr::Rdi, 8)),
            },
        ]);
        let mut m = X86Machine::new(&bin);
        let r = m.run("f", &[0x4000_0000], &[]).unwrap();
        assert_eq!(r.ret, 77);
        assert_eq!(m.mem.read_u64(0x4000_0008), 77);
        // One explicit load plus the `ret` stack pop.
        assert_eq!(r.stats.loads, 2);
        assert_eq!(r.stats.stores, 1);
    }

    #[test]
    fn w32_write_zero_extends() {
        let bin = single_fn(&[
            Inst::MovAbs {
                dst: Gpr::Rax,
                imm: 0xffff_ffff_ffff_ffff,
            },
            Inst::MovRRm {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rdi),
            },
        ]);
        let mut m = X86Machine::new(&bin);
        let r = m.run("f", &[0x1_0000_0005], &[]).unwrap();
        assert_eq!(r.ret, 5, "32-bit write must clear the upper half");
    }

    #[test]
    fn flags_drive_setcc() {
        let bin = single_fn(&[
            Inst::AluRmI {
                op: AluOp::Cmp,
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rdi),
                imm: 10,
            },
            Inst::Setcc {
                cc: Cond::L,
                dst: Rm::Reg(Gpr::Rax),
            },
        ]);
        let mut m = X86Machine::new(&bin);
        assert_eq!(m.run("f", &[3], &[]).unwrap().ret & 0xff, 1);
        let mut m2 = X86Machine::new(&bin);
        assert_eq!(m2.run("f", &[30], &[]).unwrap().ret & 0xff, 0);
    }

    #[test]
    fn division_by_zero_traps() {
        let bin = single_fn(&[
            Inst::MovRmI {
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rcx),
                imm: 0,
            },
            Inst::MulDiv {
                op: MulDivOp::Div,
                w: Width::W64,
                src: Rm::Reg(Gpr::Rcx),
            },
        ]);
        let mut m = X86Machine::new(&bin);
        assert!(matches!(m.run("f", &[1], &[]), Err(X86Error::Trap(_))));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut bin = BinaryBuilder::new();
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let addr = bin.next_function_addr();
        bin.add_function("spin", a.finish(addr).unwrap());
        let bin = bin.finish();
        let mut m = X86Machine::new(&bin);
        m.set_step_limit(1000);
        assert_eq!(m.run("spin", &[], &[]), Err(X86Error::StepLimit));
    }

    #[test]
    fn malloc_matches_lir_bump_model() {
        let mut bin = BinaryBuilder::new();
        let malloc = bin.declare_extern("malloc");
        let mut a = Asm::new();
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rdi),
            imm: 24,
        });
        a.push(Inst::Call {
            target: Target::Abs(malloc),
        });
        a.push(Inst::Ret);
        let addr = bin.next_function_addr();
        bin.add_function("alloc", a.finish(addr).unwrap());
        let bin = bin.finish();
        let mut m = X86Machine::new(&bin);
        let r = m.run("alloc", &[], &[]).unwrap();
        assert_eq!(r.ret, HEAP_BASE, "first malloc returns the heap base");
    }
}
