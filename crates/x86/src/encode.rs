//! x86-64 machine-code encoder.
//!
//! Produces genuine x86-64 encodings (legacy prefixes, REX, ModRM, SIB,
//! displacements, immediates) for every [`Inst`] variant. The
//! [`crate::decode`] module is the exact inverse; the two are
//! property-tested to round-trip.

use crate::inst::{FpPrec, Inst, MemRef, Rm, Target, XmmRm};
use crate::reg::{Gpr, Width};

/// Errors produced while encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A relative branch target is out of `rel32` range.
    BranchOutOfRange {
        /// Instruction address.
        at: u64,
        /// Branch target address.
        target: u64,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BranchOutOfRange { at, target } => {
                write!(f, "branch at {at:#x} to {target:#x} exceeds rel32 range")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Byte buffer wrapper with little-endian emit helpers.
struct Buf<'a> {
    out: &'a mut Vec<u8>,
}

impl Buf<'_> {
    fn u8(&mut self, b: u8) {
        self.out.push(b);
    }
    fn i8(&mut self, v: i8) {
        self.out.push(v as u8);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
}

/// How the reg field of ModRM is filled: either a register encoding or an
/// opcode extension.
#[derive(Clone, Copy)]
struct RegField(u8);

/// Operand-size context for prefix decisions.
#[derive(Clone, Copy)]
struct SizeCtx {
    /// Emit the 0x66 operand-size prefix.
    p66: bool,
    /// REX.W.
    rexw: bool,
    /// Force a REX prefix even when all bits are zero (needed so that
    /// `spl/bpl/sil/dil` are selected instead of `ah/ch/dh/bh`).
    force_rex: bool,
}

impl SizeCtx {
    fn for_width(w: Width, touches_low8: impl Fn() -> bool) -> SizeCtx {
        match w {
            Width::W8 => SizeCtx {
                p66: false,
                rexw: false,
                force_rex: touches_low8(),
            },
            Width::W16 => SizeCtx {
                p66: true,
                rexw: false,
                force_rex: false,
            },
            Width::W32 => SizeCtx {
                p66: false,
                rexw: false,
                force_rex: false,
            },
            Width::W64 => SizeCtx {
                p66: false,
                rexw: true,
                force_rex: false,
            },
        }
    }
}

/// True when an 8-bit access to `r` needs a REX prefix to address the low
/// byte (`spl`, `bpl`, `sil`, `dil`).
fn needs_rex_low8(r: Gpr) -> bool {
    matches!(r, Gpr::Rsp | Gpr::Rbp | Gpr::Rsi | Gpr::Rdi)
}

fn rm_needs_rex_low8(rm: &Rm) -> bool {
    match rm {
        Rm::Reg(r) => needs_rex_low8(*r),
        Rm::Mem(_) => false,
    }
}

/// Encodes one instruction at address `addr`, appending to `out`.
///
/// Returns the encoded length in bytes.
///
/// # Errors
///
/// Returns [`EncodeError::BranchOutOfRange`] if a branch displacement does
/// not fit in `rel32`.
pub fn encode(inst: &Inst, addr: u64, out: &mut Vec<u8>) -> Result<usize, EncodeError> {
    let start = out.len();
    let mut b = Buf { out };
    enc(inst, addr, &mut b)?;
    Ok(b.out.len() - start)
}

/// Emits prefixes + opcode bytes + ModRM/SIB/disp for a reg/rm form.
///
/// `imm_len` is the number of immediate bytes that will follow — required to
/// compute RIP-relative displacements, which are relative to the *end* of
/// the instruction.
#[allow(clippy::too_many_arguments)]
fn modrm_inst(
    b: &mut Buf<'_>,
    addr: u64,
    legacy: &[u8],
    ctx: SizeCtx,
    opcode: &[u8],
    reg: RegField,
    rm: &Rm,
    imm_len: usize,
) {
    for p in legacy {
        b.u8(*p);
    }
    if ctx.p66 {
        b.u8(0x66);
    }
    // Compute REX bits.
    let (modrm_rm, mem): (u8, Option<&MemRef>) = match rm {
        Rm::Reg(r) => (r.encoding(), None),
        Rm::Mem(m) => (m.base.map_or(5, |r| r.encoding()), Some(m)),
    };
    let x_bit = mem.and_then(|m| m.index).map_or(0, |i| i.encoding() >> 3);
    let rex = 0x40
        | u8::from(ctx.rexw) << 3
        | ((reg.0 >> 3) & 1) << 2
        | (x_bit & 1) << 1
        | ((modrm_rm >> 3) & 1);
    if rex != 0x40 || ctx.force_rex {
        b.u8(rex);
    }
    for op in opcode {
        b.u8(*op);
    }
    let regbits = (reg.0 & 7) << 3;
    match rm {
        Rm::Reg(r) => {
            b.u8(0xC0 | regbits | (r.encoding() & 7));
        }
        Rm::Mem(m) => encode_mem(b, addr, regbits, m, imm_len),
    }
}

/// Emits ModRM + SIB + displacement for memory operand `m`.
fn encode_mem(b: &mut Buf<'_>, addr: u64, regbits: u8, m: &MemRef, imm_len: usize) {
    if m.rip_relative {
        // mod=00 rm=101: RIP + disp32, relative to the end of the instruction.
        b.u8(regbits | 0x05);
        let disp_pos = b.out.len();
        let end = addr + (disp_pos - rel_base(b, addr)) as u64 + 4 + imm_len as u64;
        let rel = (m.disp as u64).wrapping_sub(end) as i64;
        b.i32(rel as i32);
        return;
    }
    let scale_bits = match m.scale {
        1 => 0u8,
        2 => 1,
        4 => 2,
        8 => 3,
        s => panic!("invalid scale {s}"),
    };
    match (m.base, m.index) {
        (None, index) => {
            // No base: mod=00, rm=100 (SIB), SIB.base=101 → disp32 absolute.
            b.u8(regbits | 0x04);
            let idx = index.map_or(0b100, |i| i.encoding() & 7);
            b.u8(scale_bits << 6 | idx << 3 | 0b101);
            b.i32(m.disp as i32);
        }
        (Some(base), index) => {
            let base_enc = base.encoding() & 7;
            let needs_sib = index.is_some() || base_enc == 0b100;
            // mod bits chosen from displacement size; base RBP/R13 cannot use mod=00.
            let (modbits, d8, d32) = if m.disp == 0 && base_enc != 0b101 {
                (0b00u8, false, false)
            } else if i8::try_from(m.disp).is_ok() {
                (0b01, true, false)
            } else {
                (0b10, false, true)
            };
            if needs_sib {
                b.u8(modbits << 6 | regbits | 0b100);
                let idx = m.index.map_or(0b100, |i| i.encoding() & 7);
                b.u8(scale_bits << 6 | idx << 3 | base_enc);
            } else {
                b.u8(modbits << 6 | regbits | base_enc);
            }
            if d8 {
                b.i8(m.disp as i8);
            } else if d32 {
                b.i32(m.disp as i32);
            }
        }
    }
}

/// Start of the current instruction within the buffer: used to translate
/// buffer offsets into addresses. We track it by noting how many bytes of
/// this instruction were already emitted.
fn rel_base(b: &Buf<'_>, _addr: u64) -> usize {
    // The caller begins each instruction at the current buffer length, so we
    // reconstruct the instruction start by scanning backwards is not
    // possible; instead the encoder records it via `INST_START`.
    INST_START.with(|s| s.get().min(b.out.len()))
}

thread_local! {
    static INST_START: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn imm_for_alu(imm: i32) -> (u8, bool) {
    // Returns (opcode, is_imm8) choosing the sign-extended imm8 form when it fits.
    if i8::try_from(imm).is_ok() {
        (0x83, true)
    } else {
        (0x81, false)
    }
}

fn rel32(
    b: &mut Buf<'_>,
    addr: u64,
    inst_len_so_far: usize,
    target: u64,
) -> Result<(), EncodeError> {
    let end = addr + inst_len_so_far as u64 + 4;
    let rel = target.wrapping_sub(end) as i64;
    let rel = i32::try_from(rel).map_err(|_| EncodeError::BranchOutOfRange { at: addr, target })?;
    b.i32(rel);
    Ok(())
}

fn enc(inst: &Inst, addr: u64, b: &mut Buf<'_>) -> Result<(), EncodeError> {
    let inst_start = b.out.len();
    INST_START.with(|s| s.set(inst_start));
    let len_so_far = |b: &Buf<'_>| b.out.len() - inst_start;
    match inst {
        Inst::MovRRm { w, dst, src } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*dst) || rm_needs_rex_low8(src));
            let op = if *w == Width::W8 { 0x8A } else { 0x8B };
            modrm_inst(b, addr, &[], ctx, &[op], RegField(dst.encoding()), src, 0);
        }
        Inst::MovRmR { w, dst, src } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*src) || rm_needs_rex_low8(dst));
            let op = if *w == Width::W8 { 0x88 } else { 0x89 };
            modrm_inst(b, addr, &[], ctx, &[op], RegField(src.encoding()), dst, 0);
        }
        Inst::MovRmI { w, dst, imm } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(dst));
            match w {
                Width::W8 => {
                    modrm_inst(b, addr, &[], ctx, &[0xC6], RegField(0), dst, 1);
                    b.i8(*imm as i8);
                }
                Width::W16 => {
                    modrm_inst(b, addr, &[], ctx, &[0xC7], RegField(0), dst, 2);
                    b.u16(*imm as u16);
                }
                _ => {
                    modrm_inst(b, addr, &[], ctx, &[0xC7], RegField(0), dst, 4);
                    b.i32(*imm);
                }
            }
        }
        Inst::MovAbs { dst, imm } => {
            let rex = 0x48 | (dst.encoding() >> 3);
            b.u8(rex);
            b.u8(0xB8 + (dst.encoding() & 7));
            b.u64(*imm);
        }
        Inst::MovZx { dw, sw, dst, src } => {
            let ctx = SizeCtx::for_width(*dw, || *sw == Width::W8 && rm_needs_rex_low8(src));
            let op = if *sw == Width::W8 { 0xB6 } else { 0xB7 };
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[0x0F, op],
                RegField(dst.encoding()),
                src,
                0,
            );
        }
        Inst::MovSx { dw, sw, dst, src } => {
            let ctx = SizeCtx::for_width(*dw, || *sw == Width::W8 && rm_needs_rex_low8(src));
            match sw {
                Width::W8 => modrm_inst(
                    b,
                    addr,
                    &[],
                    ctx,
                    &[0x0F, 0xBE],
                    RegField(dst.encoding()),
                    src,
                    0,
                ),
                Width::W16 => modrm_inst(
                    b,
                    addr,
                    &[],
                    ctx,
                    &[0x0F, 0xBF],
                    RegField(dst.encoding()),
                    src,
                    0,
                ),
                Width::W32 => {
                    // movsxd r64, r/m32
                    modrm_inst(b, addr, &[], ctx, &[0x63], RegField(dst.encoding()), src, 0)
                }
                Width::W64 => panic!("movsx from 64-bit source"),
            }
        }
        Inst::Lea { w, dst, addr: m } => {
            let ctx = SizeCtx::for_width(*w, || false);
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[0x8D],
                RegField(dst.encoding()),
                &Rm::Mem(*m),
                0,
            );
        }
        Inst::AluRRm { op, w, dst, src } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*dst) || rm_needs_rex_low8(src));
            let base = op.ext() * 8 + if *w == Width::W8 { 2 } else { 3 };
            modrm_inst(b, addr, &[], ctx, &[base], RegField(dst.encoding()), src, 0);
        }
        Inst::AluRmR { op, w, dst, src } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*src) || rm_needs_rex_low8(dst));
            let base = op.ext() * 8 + if *w == Width::W8 { 0 } else { 1 };
            modrm_inst(b, addr, &[], ctx, &[base], RegField(src.encoding()), dst, 0);
        }
        Inst::AluRmI { op, w, dst, imm } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(dst));
            if *w == Width::W8 {
                modrm_inst(b, addr, &[], ctx, &[0x80], RegField(op.ext()), dst, 1);
                b.i8(*imm as i8);
            } else {
                let (opcode, imm8) = imm_for_alu(*imm);
                let ilen = if imm8 {
                    1
                } else if *w == Width::W16 {
                    2
                } else {
                    4
                };
                modrm_inst(b, addr, &[], ctx, &[opcode], RegField(op.ext()), dst, ilen);
                if imm8 {
                    b.i8(*imm as i8);
                } else if *w == Width::W16 {
                    b.u16(*imm as u16);
                } else {
                    b.i32(*imm);
                }
            }
        }
        Inst::Test { w, a, b: breg } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*breg) || rm_needs_rex_low8(a));
            let op = if *w == Width::W8 { 0x84 } else { 0x85 };
            modrm_inst(b, addr, &[], ctx, &[op], RegField(breg.encoding()), a, 0);
        }
        Inst::TestI { w, a, imm } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(a));
            if *w == Width::W8 {
                modrm_inst(b, addr, &[], ctx, &[0xF6], RegField(0), a, 1);
                b.i8(*imm as i8);
            } else {
                let ilen = if *w == Width::W16 { 2 } else { 4 };
                modrm_inst(b, addr, &[], ctx, &[0xF7], RegField(0), a, ilen);
                if *w == Width::W16 {
                    b.u16(*imm as u16);
                } else {
                    b.i32(*imm);
                }
            }
        }
        Inst::ShiftI { op, w, dst, imm } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(dst));
            let opcode = if *w == Width::W8 { 0xC0 } else { 0xC1 };
            modrm_inst(b, addr, &[], ctx, &[opcode], RegField(op.ext()), dst, 1);
            b.u8(*imm);
        }
        Inst::ShiftCl { op, w, dst } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(dst));
            let opcode = if *w == Width::W8 { 0xD2 } else { 0xD3 };
            modrm_inst(b, addr, &[], ctx, &[opcode], RegField(op.ext()), dst, 0);
        }
        Inst::IMul2 { w, dst, src } => {
            let ctx = SizeCtx::for_width(*w, || false);
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[0x0F, 0xAF],
                RegField(dst.encoding()),
                src,
                0,
            );
        }
        Inst::IMul3 { w, dst, src, imm } => {
            let ctx = SizeCtx::for_width(*w, || false);
            if i8::try_from(*imm).is_ok() {
                modrm_inst(b, addr, &[], ctx, &[0x6B], RegField(dst.encoding()), src, 1);
                b.i8(*imm as i8);
            } else {
                modrm_inst(b, addr, &[], ctx, &[0x69], RegField(dst.encoding()), src, 4);
                b.i32(*imm);
            }
        }
        Inst::MulDiv { op, w, src } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(src));
            let opcode = if *w == Width::W8 { 0xF6 } else { 0xF7 };
            modrm_inst(b, addr, &[], ctx, &[opcode], RegField(op.ext()), src, 0);
        }
        Inst::Cqo { w } => {
            if *w == Width::W64 {
                b.u8(0x48);
            }
            b.u8(0x99);
        }
        Inst::Neg { w, dst } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(dst));
            let opcode = if *w == Width::W8 { 0xF6 } else { 0xF7 };
            modrm_inst(b, addr, &[], ctx, &[opcode], RegField(3), dst, 0);
        }
        Inst::Not { w, dst } => {
            let ctx = SizeCtx::for_width(*w, || rm_needs_rex_low8(dst));
            let opcode = if *w == Width::W8 { 0xF6 } else { 0xF7 };
            modrm_inst(b, addr, &[], ctx, &[opcode], RegField(2), dst, 0);
        }
        Inst::Push { src } => {
            if src.encoding() >= 8 {
                b.u8(0x41);
            }
            b.u8(0x50 + (src.encoding() & 7));
        }
        Inst::Pop { dst } => {
            if dst.encoding() >= 8 {
                b.u8(0x41);
            }
            b.u8(0x58 + (dst.encoding() & 7));
        }
        Inst::Jmp { target } => match target {
            Target::Abs(t) => {
                b.u8(0xE9);
                rel32(b, addr, len_so_far(b), *t)?;
            }
            Target::Indirect(r) => {
                modrm_inst(
                    b,
                    addr,
                    &[],
                    SizeCtx {
                        p66: false,
                        rexw: false,
                        force_rex: false,
                    },
                    &[0xFF],
                    RegField(4),
                    &Rm::Reg(*r),
                    0,
                );
            }
        },
        Inst::Jcc { cc, target } => match target {
            Target::Abs(t) => {
                b.u8(0x0F);
                b.u8(0x80 + cc.encoding());
                rel32(b, addr, len_so_far(b), *t)?;
            }
            Target::Indirect(_) => panic!("indirect jcc does not exist"),
        },
        Inst::Call { target } => match target {
            Target::Abs(t) => {
                b.u8(0xE8);
                rel32(b, addr, len_so_far(b), *t)?;
            }
            Target::Indirect(r) => {
                modrm_inst(
                    b,
                    addr,
                    &[],
                    SizeCtx {
                        p66: false,
                        rexw: false,
                        force_rex: false,
                    },
                    &[0xFF],
                    RegField(2),
                    &Rm::Reg(*r),
                    0,
                );
            }
        },
        Inst::Ret => b.u8(0xC3),
        Inst::Setcc { cc, dst } => {
            let ctx = SizeCtx::for_width(Width::W8, || rm_needs_rex_low8(dst));
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[0x0F, 0x90 + cc.encoding()],
                RegField(0),
                dst,
                0,
            );
        }
        Inst::Cmovcc { cc, w, dst, src } => {
            let ctx = SizeCtx::for_width(*w, || false);
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[0x0F, 0x40 + cc.encoding()],
                RegField(dst.encoding()),
                src,
                0,
            );
        }
        Inst::Nop => b.u8(0x90),
        Inst::Ud2 => {
            b.u8(0x0F);
            b.u8(0x0B);
        }
        Inst::MovssLoad { prec, dst, src } => {
            let p = if *prec == FpPrec::Single { 0xF3 } else { 0xF2 };
            sse_modrm(b, addr, &[p], &[0x0F, 0x10], dst.encoding(), src, 0);
        }
        Inst::MovssStore { prec, dst, src } => {
            let p = if *prec == FpPrec::Single { 0xF3 } else { 0xF2 };
            sse_modrm(
                b,
                addr,
                &[p],
                &[0x0F, 0x11],
                src.encoding(),
                &XmmRm::Mem(*dst),
                0,
            );
        }
        Inst::MovapsLoad { aligned, dst, src } => {
            let op = if *aligned { 0x28 } else { 0x10 };
            sse_modrm(b, addr, &[], &[0x0F, op], dst.encoding(), src, 0);
        }
        Inst::MovapsStore { aligned, dst, src } => {
            let op = if *aligned { 0x29 } else { 0x11 };
            sse_modrm(
                b,
                addr,
                &[],
                &[0x0F, op],
                src.encoding(),
                &XmmRm::Mem(*dst),
                0,
            );
        }
        Inst::MovXmmToGpr { w, dst, src } => {
            // 66 (REX.W) 0F 7E /r : movd/movq r/m, xmm
            b.u8(0x66);
            let rex = 0x40
                | u8::from(*w == Width::W64) << 3
                | ((src.encoding() >> 3) & 1) << 2
                | ((dst.encoding() >> 3) & 1);
            if rex != 0x40 {
                b.u8(rex);
            }
            b.u8(0x0F);
            b.u8(0x7E);
            b.u8(0xC0 | (src.encoding() & 7) << 3 | (dst.encoding() & 7));
        }
        Inst::MovGprToXmm { w, dst, src } => {
            b.u8(0x66);
            let rex = 0x40
                | u8::from(*w == Width::W64) << 3
                | ((dst.encoding() >> 3) & 1) << 2
                | ((src.encoding() >> 3) & 1);
            if rex != 0x40 {
                b.u8(rex);
            }
            b.u8(0x0F);
            b.u8(0x6E);
            b.u8(0xC0 | (dst.encoding() & 7) << 3 | (src.encoding() & 7));
        }
        Inst::SseScalar { op, prec, dst, src } => {
            let p = if *prec == FpPrec::Single { 0xF3 } else { 0xF2 };
            sse_modrm(b, addr, &[p], &[0x0F, op.opcode()], dst.encoding(), src, 0);
        }
        Inst::SsePacked { op, prec, dst, src } => {
            let legacy: &[u8] = if *prec == FpPrec::Single {
                &[]
            } else {
                &[0x66]
            };
            sse_modrm(
                b,
                addr,
                legacy,
                &[0x0F, op.opcode()],
                dst.encoding(),
                src,
                0,
            );
        }
        Inst::Xorps { dst, src } => {
            sse_modrm(b, addr, &[], &[0x0F, 0x57], dst.encoding(), src, 0);
        }
        Inst::Ucomis { prec, a, b: src } => {
            let legacy: &[u8] = if *prec == FpPrec::Single {
                &[]
            } else {
                &[0x66]
            };
            sse_modrm(b, addr, legacy, &[0x0F, 0x2E], a.encoding(), src, 0);
        }
        Inst::CvtSi2F { prec, iw, dst, src } => {
            let p = if *prec == FpPrec::Single { 0xF3 } else { 0xF2 };
            let ctx = SizeCtx {
                p66: false,
                rexw: *iw == Width::W64,
                force_rex: false,
            };
            b.u8(p);
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[0x0F, 0x2A],
                RegField(dst.encoding()),
                src,
                0,
            );
        }
        Inst::CvtF2Si { prec, iw, dst, src } => {
            let p = if *prec == FpPrec::Single { 0xF3 } else { 0xF2 };
            b.u8(p);
            // Treat the XMM r/m via the integer path by converting operand kinds.
            let rm = match src {
                XmmRm::Reg(x) => Rm::Reg(Gpr::from_encoding(x.encoding())),
                XmmRm::Mem(m) => Rm::Mem(*m),
            };
            let ctx = SizeCtx {
                p66: false,
                rexw: *iw == Width::W64,
                force_rex: false,
            };
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[0x0F, 0x2C],
                RegField(dst.encoding()),
                &rm,
                0,
            );
        }
        Inst::CvtF2F { to, dst, src } => {
            // cvtss2sd = F3 0F 5A (source is single); cvtsd2ss = F2 0F 5A.
            let p = if *to == FpPrec::Double { 0xF3 } else { 0xF2 };
            sse_modrm(b, addr, &[p], &[0x0F, 0x5A], dst.encoding(), src, 0);
        }
        Inst::Mfence => {
            b.u8(0x0F);
            b.u8(0xAE);
            b.u8(0xF0);
        }
        Inst::LockCmpxchg { w, mem, src } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*src));
            let op = if *w == Width::W8 { 0xB0 } else { 0xB1 };
            modrm_inst(
                b,
                addr,
                &[0xF0],
                ctx,
                &[0x0F, op],
                RegField(src.encoding()),
                &Rm::Mem(*mem),
                0,
            );
        }
        Inst::LockXadd { w, mem, src } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*src));
            let op = if *w == Width::W8 { 0xC0 } else { 0xC1 };
            modrm_inst(
                b,
                addr,
                &[0xF0],
                ctx,
                &[0x0F, op],
                RegField(src.encoding()),
                &Rm::Mem(*mem),
                0,
            );
        }
        Inst::LockAddI { w, mem, imm } => {
            let ctx = SizeCtx::for_width(*w, || false);
            if *w == Width::W8 {
                modrm_inst(
                    b,
                    addr,
                    &[0xF0],
                    ctx,
                    &[0x80],
                    RegField(0),
                    &Rm::Mem(*mem),
                    1,
                );
                b.i8(*imm as i8);
            } else {
                let (opcode, imm8) = imm_for_alu(*imm);
                let ilen = if imm8 { 1 } else { 4 };
                modrm_inst(
                    b,
                    addr,
                    &[0xF0],
                    ctx,
                    &[opcode],
                    RegField(0),
                    &Rm::Mem(*mem),
                    ilen,
                );
                if imm8 {
                    b.i8(*imm as i8);
                } else {
                    b.i32(*imm);
                }
            }
        }
        Inst::Xchg { w, mem, src } => {
            let ctx = SizeCtx::for_width(*w, || needs_rex_low8(*src));
            let op = if *w == Width::W8 { 0x86 } else { 0x87 };
            modrm_inst(
                b,
                addr,
                &[],
                ctx,
                &[op],
                RegField(src.encoding()),
                &Rm::Mem(*mem),
                0,
            );
        }
    }
    Ok(())
}

/// ModRM form for SSE instructions (reg field is an XMM register).
fn sse_modrm(
    b: &mut Buf<'_>,
    addr: u64,
    legacy: &[u8],
    opcode: &[u8],
    xmm_reg: u8,
    rm: &XmmRm,
    imm_len: usize,
) {
    let rm = match rm {
        XmmRm::Reg(x) => Rm::Reg(Gpr::from_encoding(x.encoding())),
        XmmRm::Mem(m) => Rm::Mem(*m),
    };
    let ctx = SizeCtx {
        p66: false,
        rexw: false,
        force_rex: false,
    };
    modrm_inst(
        b,
        addr,
        legacy,
        ctx,
        opcode,
        RegField(xmm_reg),
        &rm,
        imm_len,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, MemRef, Rm, Target};
    use crate::reg::{Cond, Gpr, Width, Xmm};

    fn bytes(inst: Inst, addr: u64) -> Vec<u8> {
        let mut v = Vec::new();
        encode(&inst, addr, &mut v).unwrap();
        v
    }

    #[test]
    fn mov_reg_reg() {
        // mov rax, rbx => 48 89 d8
        let v = bytes(
            Inst::MovRmR {
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rax),
                src: Gpr::Rbx,
            },
            0,
        );
        assert_eq!(v, [0x48, 0x89, 0xD8]);
    }

    #[test]
    fn mov_load_disp8() {
        // mov eax, [rdi+8] => 8b 47 08
        let v = bytes(
            Inst::MovRRm {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Mem(MemRef::base_disp(Gpr::Rdi, 8)),
            },
            0,
        );
        assert_eq!(v, [0x8B, 0x47, 0x08]);
    }

    #[test]
    fn mov_store_sib() {
        // mov [rdi+rcx*8], rax => 48 89 04 cf
        let v = bytes(
            Inst::MovRmR {
                w: Width::W64,
                dst: Rm::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rcx, 8, 0)),
                src: Gpr::Rax,
            },
            0,
        );
        assert_eq!(v, [0x48, 0x89, 0x04, 0xCF]);
    }

    #[test]
    fn add_imm8() {
        // add rsp, 16 => 48 83 c4 10
        let v = bytes(
            Inst::AluRmI {
                op: AluOp::Add,
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rsp),
                imm: 16,
            },
            0,
        );
        assert_eq!(v, [0x48, 0x83, 0xC4, 0x10]);
    }

    #[test]
    fn push_pop_extended() {
        assert_eq!(bytes(Inst::Push { src: Gpr::Rbp }, 0), [0x55]);
        assert_eq!(bytes(Inst::Push { src: Gpr::R12 }, 0), [0x41, 0x54]);
        assert_eq!(bytes(Inst::Pop { dst: Gpr::R15 }, 0), [0x41, 0x5F]);
    }

    #[test]
    fn jmp_rel32_backward() {
        // jmp to 0 from address 100: E9 rel32 where rel = 0 - 105
        let v = bytes(
            Inst::Jmp {
                target: Target::Abs(0),
            },
            100,
        );
        assert_eq!(v[0], 0xE9);
        assert_eq!(i32::from_le_bytes([v[1], v[2], v[3], v[4]]), -105);
    }

    #[test]
    fn jcc_encoding() {
        let v = bytes(
            Inst::Jcc {
                cc: Cond::Ne,
                target: Target::Abs(0x20),
            },
            0x10,
        );
        assert_eq!(v[0], 0x0F);
        assert_eq!(v[1], 0x85);
        assert_eq!(i32::from_le_bytes([v[2], v[3], v[4], v[5]]), 0x20 - 0x16);
    }

    #[test]
    fn mfence_bytes() {
        assert_eq!(bytes(Inst::Mfence, 0), [0x0F, 0xAE, 0xF0]);
    }

    #[test]
    fn lock_cmpxchg_bytes() {
        // lock cmpxchg [rdi], ebx => F0 0F B1 1F
        let v = bytes(
            Inst::LockCmpxchg {
                w: Width::W32,
                mem: MemRef::base(Gpr::Rdi),
                src: Gpr::Rbx,
            },
            0,
        );
        assert_eq!(v, [0xF0, 0x0F, 0xB1, 0x1F]);
    }

    #[test]
    fn movsd_load_bytes() {
        // movsd xmm0, [rdi] => F2 0F 10 07
        let v = bytes(
            Inst::MovssLoad {
                prec: FpPrec::Double,
                dst: Xmm(0),
                src: XmmRm::Mem(MemRef::base(Gpr::Rdi)),
            },
            0,
        );
        assert_eq!(v, [0xF2, 0x0F, 0x10, 0x07]);
    }

    #[test]
    fn low8_forces_rex() {
        // mov dil, al => 40 88 c7
        let v = bytes(
            Inst::MovRmR {
                w: Width::W8,
                dst: Rm::Reg(Gpr::Rdi),
                src: Gpr::Rax,
            },
            0,
        );
        assert_eq!(v, [0x40, 0x88, 0xC7]);
    }

    #[test]
    fn rbp_base_needs_disp8() {
        // mov rax, [rbp] must encode as [rbp+0] with disp8
        let v = bytes(
            Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Mem(MemRef::base(Gpr::Rbp)),
            },
            0,
        );
        assert_eq!(v, [0x48, 0x8B, 0x45, 0x00]);
    }

    #[test]
    fn r13_base_needs_disp8() {
        let v = bytes(
            Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Mem(MemRef::base(Gpr::R13)),
            },
            0,
        );
        assert_eq!(v, [0x49, 0x8B, 0x45, 0x00]);
    }

    #[test]
    fn rsp_base_needs_sib() {
        // mov rax, [rsp+8] => 48 8b 44 24 08
        let v = bytes(
            Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Mem(MemRef::base_disp(Gpr::Rsp, 8)),
            },
            0,
        );
        assert_eq!(v, [0x48, 0x8B, 0x44, 0x24, 0x08]);
    }
}
