//! A minimal binary image: code, data, and a symbol table.
//!
//! Stands in for the ELF loader the paper's lifter uses. A [`Binary`] holds
//! one text section of x86-64 machine code plus named function symbols,
//! named globals in a data section, and declarations of external (library)
//! functions that the lifter resolves against its known-signatures table.

use std::collections::BTreeMap;

/// A function symbol in the text section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSym {
    /// Symbol name.
    pub name: String,
    /// Entry address.
    pub addr: u64,
    /// Size in bytes of the function body.
    pub size: u64,
}

/// A global data object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Absolute address within the data section.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Initial bytes (zero-filled to `size` if shorter).
    pub init: Vec<u8>,
}

/// A declared external function (e.g. `pthread_create`, `printf`): the
/// lifter maps calls to these to IR call instructions by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternSym {
    /// Symbol name.
    pub name: String,
    /// PLT stub address calls resolve through.
    pub addr: u64,
}

/// A loaded binary image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binary {
    /// Base address of the text section.
    pub text_base: u64,
    /// Machine code.
    pub text: Vec<u8>,
    /// Function symbols, sorted by address.
    pub functions: Vec<FuncSym>,
    /// Global data objects.
    pub globals: Vec<Global>,
    /// External (imported) functions.
    pub externs: Vec<ExternSym>,
}

impl Binary {
    /// Looks up the function symbol containing `addr`, if any.
    pub fn function_at(&self, addr: u64) -> Option<&FuncSym> {
        self.functions
            .iter()
            .find(|f| addr >= f.addr && addr < f.addr + f.size.max(1))
    }

    /// Looks up a function symbol by name.
    pub fn function_by_name(&self, name: &str) -> Option<&FuncSym> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up the global containing `addr`, if any.
    pub fn global_at(&self, addr: u64) -> Option<&Global> {
        self.globals
            .iter()
            .find(|g| addr >= g.addr && addr < g.addr + g.size)
    }

    /// Looks up an extern by the address of its stub.
    pub fn extern_at(&self, addr: u64) -> Option<&ExternSym> {
        self.externs.iter().find(|e| e.addr == addr)
    }

    /// The machine-code bytes of a function.
    ///
    /// # Panics
    ///
    /// Panics if the symbol range lies outside the text section.
    pub fn code_of(&self, f: &FuncSym) -> &[u8] {
        let start = usize::try_from(f.addr - self.text_base).expect("bad symbol");
        let end = usize::try_from(f.addr + f.size - self.text_base).expect("bad symbol");
        &self.text[start..end]
    }
}

/// Builder for a [`Binary`]. Functions are assembled one at a time with
/// [`crate::asm::Asm`]; globals and externs are laid out in dedicated
/// address ranges so that the lifter can classify addresses.
#[derive(Debug)]
pub struct BinaryBuilder {
    text_base: u64,
    data_base: u64,
    plt_base: u64,
    text: Vec<u8>,
    functions: Vec<FuncSym>,
    globals: Vec<Global>,
    externs: Vec<ExternSym>,
    extern_by_name: BTreeMap<String, u64>,
}

impl BinaryBuilder {
    /// Conventional text base.
    pub const TEXT_BASE: u64 = 0x40_1000;
    /// Conventional data base.
    pub const DATA_BASE: u64 = 0x60_0000;
    /// Conventional PLT base for extern stubs.
    pub const PLT_BASE: u64 = 0x50_0000;

    /// Creates a builder with conventional section bases.
    pub fn new() -> BinaryBuilder {
        BinaryBuilder {
            text_base: Self::TEXT_BASE,
            data_base: Self::DATA_BASE,
            plt_base: Self::PLT_BASE,
            text: Vec::new(),
            functions: Vec::new(),
            globals: Vec::new(),
            externs: Vec::new(),
            extern_by_name: BTreeMap::new(),
        }
    }

    /// Address where the next function will start.
    pub fn next_function_addr(&self) -> u64 {
        // 16-byte align, as compilers do.
        let cur = self.text_base + self.text.len() as u64;
        (cur + 15) & !15
    }

    /// Adds a function from pre-assembled bytes that were encoded at
    /// [`BinaryBuilder::next_function_addr`].
    pub fn add_function(&mut self, name: &str, bytes: Vec<u8>) -> u64 {
        let addr = self.next_function_addr();
        while self.text_base + self.text.len() as u64 != addr {
            self.text.push(0x90); // nop padding
        }
        let size = bytes.len() as u64;
        self.text.extend_from_slice(&bytes);
        self.functions.push(FuncSym {
            name: name.to_string(),
            addr,
            size,
        });
        addr
    }

    /// Declares (or returns the existing stub address of) an external
    /// function.
    pub fn declare_extern(&mut self, name: &str) -> u64 {
        if let Some(a) = self.extern_by_name.get(name) {
            return *a;
        }
        let addr = self.plt_base + 16 * self.externs.len() as u64;
        self.externs.push(ExternSym {
            name: name.to_string(),
            addr,
        });
        self.extern_by_name.insert(name.to_string(), addr);
        addr
    }

    /// Adds a global data object, returning its address.
    pub fn add_global(&mut self, name: &str, size: u64, init: Vec<u8>) -> u64 {
        let addr = self
            .globals
            .last()
            .map_or(self.data_base, |g| (g.addr + g.size + 15) & !15);
        self.globals.push(Global {
            name: name.to_string(),
            addr,
            size,
            init,
        });
        addr
    }

    /// Finalizes the image.
    pub fn finish(self) -> Binary {
        Binary {
            text_base: self.text_base,
            text: self.text,
            functions: self.functions,
            globals: self.globals,
            externs: self.externs,
        }
    }
}

impl Default for BinaryBuilder {
    fn default() -> Self {
        BinaryBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_layout() {
        let mut b = BinaryBuilder::new();
        let g1 = b.add_global("counter", 8, vec![]);
        let g2 = b.add_global("table", 256, vec![1, 2, 3]);
        assert_eq!(g1, BinaryBuilder::DATA_BASE);
        assert!(g2 >= g1 + 8);
        let e1 = b.declare_extern("printf");
        let e2 = b.declare_extern("printf");
        assert_eq!(e1, e2);
        let e3 = b.declare_extern("malloc");
        assert_ne!(e1, e3);

        let f = b.add_function("main", vec![0xC3]);
        assert_eq!(f, BinaryBuilder::TEXT_BASE);
        let f2 = b.add_function("helper", vec![0x90, 0xC3]);
        assert_eq!(f2 % 16, 0);

        let bin = b.finish();
        assert_eq!(bin.function_by_name("main").unwrap().addr, f);
        assert_eq!(bin.function_at(f2 + 1).unwrap().name, "helper");
        assert_eq!(bin.global_at(g2 + 10).unwrap().name, "table");
        assert_eq!(bin.extern_at(e3).unwrap().name, "malloc");
        assert_eq!(bin.code_of(bin.function_by_name("main").unwrap()), &[0xC3]);
    }
}
