//! x86-64 register definitions.
//!
//! The lifter (see the `lasagne-lifter` crate) tracks values per *full*
//! register, so sub-registers (`EAX`, `AX`, `AL`) are represented as a
//! ([`Gpr`], [`Width`]) pair rather than as distinct register identities.

use std::fmt;

/// Operand width in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit operand (e.g. `AL`).
    W8,
    /// 16-bit operand (e.g. `AX`).
    W16,
    /// 32-bit operand (e.g. `EAX`).
    W32,
    /// 64-bit operand (e.g. `RAX`).
    W64,
}

impl Width {
    /// Width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits()) / 8
    }

    /// Bit mask selecting the low `bits()` bits of a 64-bit value.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A general-purpose 64-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // register names are self-describing
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen general-purpose registers, in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// System-V AMD64 integer parameter registers, in order.
    pub const PARAMS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

    /// System-V callee-saved registers.
    pub const CALLEE_SAVED: [Gpr; 6] = [Gpr::Rbx, Gpr::Rbp, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];

    /// Hardware encoding (0–15).
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// Register from its hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `enc > 15`.
    pub fn from_encoding(enc: u8) -> Gpr {
        Gpr::ALL[usize::from(enc)]
    }

    /// Canonical AT&T-free name at the given width (e.g. `eax`, `r8d`).
    pub fn name(self, w: Width) -> String {
        let base = ["ax", "cx", "dx", "bx", "sp", "bp", "si", "di"];
        let n = self.encoding();
        if n < 8 {
            let b = base[usize::from(n)];
            match w {
                Width::W64 => format!("r{b}"),
                Width::W32 => format!("e{b}"),
                Width::W16 => b.to_string(),
                Width::W8 => match self {
                    Gpr::Rax => "al".into(),
                    Gpr::Rcx => "cl".into(),
                    Gpr::Rdx => "dl".into(),
                    Gpr::Rbx => "bl".into(),
                    Gpr::Rsp => "spl".into(),
                    Gpr::Rbp => "bpl".into(),
                    Gpr::Rsi => "sil".into(),
                    Gpr::Rdi => "dil".into(),
                    _ => unreachable!(),
                },
            }
        } else {
            match w {
                Width::W64 => format!("r{n}"),
                Width::W32 => format!("r{n}d"),
                Width::W16 => format!("r{n}w"),
                Width::W8 => format!("r{n}b"),
            }
        }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name(Width::W64))
    }
}

/// An SSE (XMM) register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xmm(pub u8);

impl Xmm {
    /// System-V AMD64 floating-point parameter registers, in order.
    pub const PARAMS: [Xmm; 8] = [
        Xmm(0),
        Xmm(1),
        Xmm(2),
        Xmm(3),
        Xmm(4),
        Xmm(5),
        Xmm(6),
        Xmm(7),
    ];

    /// Hardware encoding (0–15).
    pub fn encoding(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

/// Condition codes used by `jcc`, `setcc` and `cmovcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `o`: overflow (OF=1).
    O,
    /// `no`: not overflow (OF=0).
    No,
    /// `b`: below, unsigned `<` (CF=1).
    B,
    /// `ae`: above or equal, unsigned `>=` (CF=0).
    Ae,
    /// `e`/`z`: equal (ZF=1).
    E,
    /// `ne`/`nz`: not equal (ZF=0).
    Ne,
    /// `be`: below or equal, unsigned `<=` (CF=1 or ZF=1).
    Be,
    /// `a`: above, unsigned `>` (CF=0 and ZF=0).
    A,
    /// `s`: sign (SF=1).
    S,
    /// `ns`: not sign (SF=0).
    Ns,
    /// `p`: parity even (PF=1).
    P,
    /// `np`: parity odd (PF=0).
    Np,
    /// `l`: less, signed `<` (SF≠OF).
    L,
    /// `ge`: greater or equal, signed `>=` (SF=OF).
    Ge,
    /// `le`: less or equal, signed `<=` (ZF=1 or SF≠OF).
    Le,
    /// `g`: greater, signed `>` (ZF=0 and SF=OF).
    G,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// The low nibble of the `0F 8x`/`0F 9x`/`0F 4x` opcode.
    pub fn encoding(self) -> u8 {
        Cond::ALL.iter().position(|c| *c == self).unwrap() as u8
    }

    /// Condition code from its opcode nibble.
    ///
    /// # Panics
    ///
    /// Panics if `enc > 15`.
    pub fn from_encoding(enc: u8) -> Cond {
        Cond::ALL[usize::from(enc)]
    }

    /// The negated condition (`e` ↔ `ne`, `l` ↔ `ge`, …).
    pub fn negate(self) -> Cond {
        Cond::from_encoding(self.encoding() ^ 1)
    }

    /// Mnemonic suffix (`e`, `ne`, `l`, …).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_masks() {
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W16.mask(), 0xffff);
        assert_eq!(Width::W32.mask(), 0xffff_ffff);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn gpr_roundtrip() {
        for r in Gpr::ALL {
            assert_eq!(Gpr::from_encoding(r.encoding()), r);
        }
    }

    #[test]
    fn gpr_names() {
        assert_eq!(Gpr::Rax.name(Width::W32), "eax");
        assert_eq!(Gpr::Rax.name(Width::W8), "al");
        assert_eq!(Gpr::R8.name(Width::W32), "r8d");
        assert_eq!(Gpr::Rdi.name(Width::W8), "dil");
    }

    #[test]
    fn cond_negate_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
    }

    #[test]
    fn cond_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_encoding(c.encoding()), c);
        }
    }
}
