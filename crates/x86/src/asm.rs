//! Label-based x86-64 assembler.
//!
//! [`Asm`] is the tool used by the `lasagne-phoenix` crate to synthesise the
//! benchmark binaries that the lifter consumes. It supports forward label
//! references for branches and calls, resolved at [`Asm::finish`] time by a
//! second encoding pass.

use crate::encode::{encode, EncodeError};
use crate::inst::{Inst, Target};

/// A label within an [`Asm`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An instruction whose branch target may be a yet-unresolved label.
#[derive(Debug, Clone, Copy)]
enum Item {
    Inst(Inst),
    /// Jump/branch/call to a label; rebuilt once label addresses are known.
    JmpLabel(Label),
    JccLabel(crate::reg::Cond, Label),
    CallLabel(Label),
    /// Marks the position of a label.
    Bind(Label),
}

/// An incremental assembler for one contiguous code region.
#[derive(Debug, Default)]
pub struct Asm {
    items: Vec<Item>,
    next_label: usize,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.items.push(Item::Inst(inst));
    }

    /// Appends an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.items.push(Item::JmpLabel(label));
    }

    /// Appends a conditional jump to `label`.
    pub fn jcc(&mut self, cc: crate::reg::Cond, label: Label) {
        self.items.push(Item::JccLabel(cc, label));
    }

    /// Appends a call to `label`.
    pub fn call(&mut self, label: Label) {
        self.items.push(Item::CallLabel(label));
    }

    /// Encodes everything at base address `base`, resolving labels.
    ///
    /// Returns the machine code bytes.
    ///
    /// # Errors
    ///
    /// Returns an [`EncodeError`] if any branch is out of range or a label
    /// was never bound (reported as a panic, since that is a programming
    /// error in the caller).
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn finish(&self, base: u64) -> Result<Vec<u8>, EncodeError> {
        // Pass 1: compute label addresses with branches encoded at worst-case
        // (rel32) size — our encoder always emits rel32, so sizes are stable
        // and a single sizing pass suffices.
        let mut label_addr = vec![None::<u64>; self.next_label];
        let mut addr = base;
        let mut scratch = Vec::new();
        for item in &self.items {
            match item {
                Item::Bind(l) => label_addr[l.0] = Some(addr),
                Item::Inst(i) => {
                    scratch.clear();
                    addr += encode(i, addr, &mut scratch)? as u64;
                }
                Item::JmpLabel(_) => addr += 5,
                Item::JccLabel(..) => addr += 6,
                Item::CallLabel(_) => addr += 5,
            }
        }
        // Pass 2: encode with resolved targets.
        let mut out = Vec::new();
        let mut addr = base;
        for item in &self.items {
            let inst = match item {
                Item::Bind(_) => continue,
                Item::Inst(i) => *i,
                Item::JmpLabel(l) => Inst::Jmp {
                    target: Target::Abs(label_addr[l.0].expect("unbound label")),
                },
                Item::JccLabel(cc, l) => Inst::Jcc {
                    cc: *cc,
                    target: Target::Abs(label_addr[l.0].expect("unbound label")),
                },
                Item::CallLabel(l) => Inst::Call {
                    target: Target::Abs(label_addr[l.0].expect("unbound label")),
                },
            };
            addr += encode(&inst, addr, &mut out)? as u64;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_all;
    use crate::inst::{Inst, Rm, Target};
    use crate::reg::{Cond, Gpr, Width};

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.bind(top);
        a.push(Inst::AluRmI {
            op: crate::inst::AluOp::Sub,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.jcc(Cond::E, done);
        a.jmp(top);
        a.bind(done);
        a.push(Inst::Ret);
        let bytes = a.finish(0x1000).unwrap();
        let ds = decode_all(&bytes, 0x1000).unwrap();
        // sub; jcc; jmp; ret
        assert_eq!(ds.len(), 4);
        match ds[1].inst {
            Inst::Jcc {
                cc: Cond::E,
                target: Target::Abs(t),
            } => {
                assert_eq!(t, ds[3].addr);
            }
            other => panic!("unexpected {other}"),
        }
        match ds[2].inst {
            Inst::Jmp {
                target: Target::Abs(t),
            } => assert_eq!(t, 0x1000),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn call_label() {
        let mut a = Asm::new();
        let f = a.label();
        a.call(f);
        a.push(Inst::Ret);
        a.bind(f);
        a.push(Inst::Nop);
        a.push(Inst::Ret);
        let bytes = a.finish(0).unwrap();
        let ds = decode_all(&bytes, 0).unwrap();
        match ds[0].inst {
            Inst::Call {
                target: Target::Abs(t),
            } => assert_eq!(t, ds[2].addr),
            other => panic!("unexpected {other}"),
        }
    }
}
