//! x86-64 instruction-set substrate for the Lasagne static binary
//! translator.
//!
//! This crate plays the role of LLVM's MC layer in the paper
//! ("Lasagne: A Static Binary Translator for Weak Memory Model
//! Architectures", PLDI 2022, §4): it defines an x86-64 instruction
//! representation ([`inst::Inst`], the analogue of `MCInst`), a real
//! machine-code [`encode`](mod@encode)r and [`decode`](mod@decode)r covering the subset of x86-64
//! the Phoenix benchmarks exercise (ALU, control flow, scalar SSE floating
//! point, `lock`-prefixed read-modify-writes, and `mfence`), a label-based
//! [`asm::Asm`] assembler, and a minimal [`binary::Binary`] image format
//! with function/global/extern symbols.
//!
//! # Example
//!
//! ```
//! use lasagne_x86::inst::{Inst, Rm};
//! use lasagne_x86::reg::{Gpr, Width};
//! use lasagne_x86::{decode, encode};
//!
//! let inst = Inst::MovRmR { w: Width::W64, dst: Rm::Reg(Gpr::Rax), src: Gpr::Rbx };
//! let mut bytes = Vec::new();
//! encode::encode(&inst, 0x1000, &mut bytes)?;
//! assert_eq!(bytes, [0x48, 0x89, 0xD8]);
//! let d = decode::decode_one(&bytes, 0x1000)?;
//! assert_eq!(d.inst, inst);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod binary;
pub mod decode;
pub mod encode;
pub mod flags;
pub mod inst;
pub mod interp;
pub mod reg;

pub use decode::{decode_all, decode_one, DecodeError, Decoded};
pub use encode::{encode, EncodeError};
pub use inst::Inst;
pub use interp::{X86Error, X86Machine, X86RunResult, X86Stats};
pub use reg::{Cond, Gpr, Width, Xmm};
