//! The change-driven scheduler must be indistinguishable from the blind
//! fixpoint driver it replaced: byte-identical modules, identical change
//! totals, and counters that reconcile exactly with the blind driver's
//! invocation count.
//!
//! Modules are generated from a single `u64` seed through a deterministic
//! splitmix64 builder that deliberately produces the messes every pass
//! feeds on: alloca/load/store traffic (mem2reg, sroa, dse), identity
//! chains and const-foldable ops (instcombine, reassociate, sccp),
//! redundant pure pairs (gvn), loops with invariant computations (licm),
//! dead operations (dce/adce), fences (legality gating), diamonds with
//! constant conditions (sccp's branch folding + unreachable pruning), and
//! cross-function calls with constant arguments (the ipSCCP superstep).

use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{BinOp, Callee, FenceKind, IPred, InstKind, Operand, Ordering, Terminator};
use lasagne_lir::types::{Pointee, Ty};
use lasagne_lir::verify::verify_module;
use lasagne_opt::{blind_pipeline, scheduled_pipeline};
use lasagne_qc::prelude::*;

/// splitmix64 — the same generator the qc harness uses internally, inlined
/// so the module builder is a pure function of its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

const BINOPS: [BinOp; 6] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
];

/// Emits a run of messy scalar/memory instructions into `block`, growing
/// `pool` (i64 values available as operands) as it goes.
fn emit_mess(
    rng: &mut Rng,
    f: &mut Function,
    block: lasagne_lir::BlockId,
    pool: &mut Vec<Operand>,
    slots: &[lasagne_lir::InstId],
    len: usize,
) {
    for _ in 0..len {
        let pick = |rng: &mut Rng, pool: &[Operand]| pool[rng.below(pool.len() as u64) as usize];
        match rng.below(8) {
            // Plain binop over the pool (sometimes a dead one: never used).
            0 | 1 => {
                let op = BINOPS[rng.below(6) as usize];
                let lhs = pick(rng, pool);
                let rhs = pick(rng, pool);
                let id = f.push(block, Ty::I64, InstKind::Bin { op, lhs, rhs });
                if rng.chance(80) {
                    pool.push(Operand::Inst(id));
                }
            }
            // Identity chain fodder: x + 0, x * 1, x & -1.
            2 => {
                let lhs = pick(rng, pool);
                let (op, c) = match rng.below(3) {
                    0 => (BinOp::Add, 0u64),
                    1 => (BinOp::Mul, 1),
                    _ => (BinOp::And, u64::MAX),
                };
                let id = f.push(
                    block,
                    Ty::I64,
                    InstKind::Bin {
                        op,
                        lhs,
                        rhs: Operand::ConstInt {
                            ty: Ty::I64,
                            val: c,
                        },
                    },
                );
                pool.push(Operand::Inst(id));
            }
            // Const-foldable op.
            3 => {
                let a = rng.below(100);
                let b = rng.below(100);
                let id = f.push(
                    block,
                    Ty::I64,
                    InstKind::Bin {
                        op: BINOPS[rng.below(6) as usize],
                        lhs: Operand::ConstInt {
                            ty: Ty::I64,
                            val: a,
                        },
                        rhs: Operand::ConstInt {
                            ty: Ty::I64,
                            val: b,
                        },
                    },
                );
                pool.push(Operand::Inst(id));
            }
            // Redundant pure pair for gvn.
            4 => {
                let op = BINOPS[rng.below(6) as usize];
                let lhs = pick(rng, pool);
                let rhs = pick(rng, pool);
                let a = f.push(block, Ty::I64, InstKind::Bin { op, lhs, rhs });
                let b = f.push(block, Ty::I64, InstKind::Bin { op, lhs, rhs });
                pool.push(Operand::Inst(a));
                pool.push(Operand::Inst(b));
            }
            // Slot traffic: store then (sometimes) load back.
            5 | 6 => {
                let slot = slots[rng.below(slots.len() as u64) as usize];
                let val = pick(rng, pool);
                f.push(
                    block,
                    Ty::Void,
                    InstKind::Store {
                        ptr: Operand::Inst(slot),
                        val,
                        order: Ordering::NotAtomic,
                    },
                );
                if rng.chance(70) {
                    let l = f.push(
                        block,
                        Ty::I64,
                        InstKind::Load {
                            ptr: Operand::Inst(slot),
                            order: Ordering::NotAtomic,
                        },
                    );
                    pool.push(Operand::Inst(l));
                }
            }
            // A fence, to exercise the legality gating in gvn/dse.
            _ => {
                let kind = match rng.below(3) {
                    0 => FenceKind::Frm,
                    1 => FenceKind::Fww,
                    _ => FenceKind::Fsc,
                };
                f.push(block, Ty::Void, InstKind::Fence { kind });
            }
        }
    }
}

/// Builds one messy function. `callee` (when given) is called with either
/// constant or varying arguments, to sometimes give ipSCCP a fact.
fn messy_function(rng: &mut Rng, name: &str, callee: Option<lasagne_lir::FuncId>) -> Function {
    let mut f = Function::new(name, vec![Ty::I64, Ty::I64], Ty::I64);
    let e = f.entry();
    let nslots = 1 + rng.below(3) as usize;
    let slots: Vec<_> = (0..nslots)
        .map(|_| f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 }))
        .collect();
    let mut pool = vec![
        Operand::Param(0),
        Operand::Param(1),
        Operand::ConstInt {
            ty: Ty::I64,
            val: rng.below(1000),
        },
    ];
    // Seed every slot so later loads are defined.
    for s in &slots {
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(*s),
                val: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
    }
    let mess_len = 3 + rng.below(8) as usize;
    emit_mess(rng, &mut f, e, &mut pool, &slots, mess_len);

    if let Some(callee) = callee {
        let args = if rng.chance(50) {
            // Constant args at every site → an ipSCCP fact.
            vec![
                Operand::ConstInt {
                    ty: Ty::I64,
                    val: 7,
                },
                Operand::ConstInt {
                    ty: Ty::I64,
                    val: 11,
                },
            ]
        } else {
            vec![pool[0], pool[pool.len() - 1]]
        };
        let c = f.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee),
                args,
            },
        );
        pool.push(Operand::Inst(c));
    }

    // Optional diamond, sometimes with a constant condition (sccp folds
    // the branch and prunes the dead arm).
    let tail = if rng.chance(70) {
        let then_b = f.add_block();
        let else_b = f.add_block();
        let join = f.add_block();
        let cond = if rng.chance(40) {
            Operand::ConstInt {
                ty: Ty::I1,
                val: rng.below(2),
            }
        } else {
            let picked = pool[rng.below(pool.len() as u64) as usize];
            let c = f.push(
                e,
                Ty::I1,
                InstKind::ICmp {
                    pred: IPred::Slt,
                    lhs: picked,
                    rhs: Operand::ConstInt {
                        ty: Ty::I64,
                        val: rng.below(50),
                    },
                },
            );
            Operand::Inst(c)
        };
        f.set_term(
            e,
            Terminator::CondBr {
                cond,
                if_true: then_b,
                if_false: else_b,
            },
        );
        for arm in [then_b, else_b] {
            let mut arm_pool = pool.clone();
            let arm_len = rng.below(4) as usize;
            emit_mess(rng, &mut f, arm, &mut arm_pool, &slots, arm_len);
            // Arms communicate through memory only, keeping SSA trivial.
            f.push(
                arm,
                Ty::Void,
                InstKind::Store {
                    ptr: Operand::Inst(slots[0]),
                    val: arm_pool[arm_pool.len() - 1],
                    order: Ordering::NotAtomic,
                },
            );
            f.set_term(arm, Terminator::Br { dest: join });
        }
        let l = f.push(
            join,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(slots[0]),
                order: Ordering::NotAtomic,
            },
        );
        pool.push(Operand::Inst(l));
        join
    } else {
        e
    };

    // Optional counted loop through memory (licm hoists, mem2reg builds
    // φs, sccp folds the bound when it is constant).
    let exit = if rng.chance(50) {
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let i_slot = slots[rng.below(slots.len() as u64) as usize];
        f.push(
            tail,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(i_slot),
                val: Operand::ConstInt {
                    ty: Ty::I64,
                    val: 0,
                },
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(tail, Terminator::Br { dest: header });
        let i = f.push(
            header,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(i_slot),
                order: Ordering::NotAtomic,
            },
        );
        let c = f.push(
            header,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Ult,
                lhs: Operand::Inst(i),
                rhs: Operand::ConstInt {
                    ty: Ty::I64,
                    val: 1 + rng.below(8),
                },
            },
        );
        f.set_term(
            header,
            Terminator::CondBr {
                cond: Operand::Inst(c),
                if_true: body,
                if_false: exit,
            },
        );
        // Loop-invariant computation (hoistable) + induction update.
        let inv = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Param(0),
                rhs: Operand::Param(1),
            },
        );
        let next = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(i),
                rhs: Operand::ConstInt {
                    ty: Ty::I64,
                    val: 1,
                },
            },
        );
        f.push(
            body,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(i_slot),
                val: Operand::Inst(next),
                order: Ordering::NotAtomic,
            },
        );
        pool.push(Operand::Inst(inv));
        f.set_term(body, Terminator::Br { dest: header });
        exit
    } else {
        tail
    };

    let ret = pool[rng.below(pool.len() as u64) as usize];
    f.set_term(exit, Terminator::Ret { val: Some(ret) });
    f
}

/// A whole messy module: 1–3 functions, later ones calling the first.
fn messy_module(seed: u64) -> Module {
    let mut rng = Rng(seed);
    let mut m = Module::new();
    let nfuncs = 1 + rng.below(3) as usize;
    let mut first = None;
    for i in 0..nfuncs {
        let f = messy_function(&mut rng, &format!("f{i}"), first.filter(|_| i > 0));
        let id = m.add_func(f);
        first.get_or_insert(id);
    }
    m
}

properties! {
    config = Config::with_cases(256);

    /// The tentpole equivalence: scheduled ≡ blind, module bytes and
    /// change totals, on arbitrary messy modules.
    fn scheduler_matches_blind_pipeline(seed in any::<u64>()) {
        let m = messy_module(seed);
        verify_module(&m).expect("generator must build valid modules");
        let mut blind = m.clone();
        let mut sched = m;
        let (blind_changes, invocations) = blind_pipeline(&mut blind, 4);
        let stats = scheduled_pipeline(&mut sched, 4);
        prop_assert_eq!(&sched, &blind);
        prop_assert_eq!(stats.changes, blind_changes);
        // Counter reconciliation: every (function, slot, round) pair is
        // accounted for exactly once.
        prop_assert_eq!(stats.ran + stats.skipped, invocations);
    }

    /// The scheduler must actually skip work on modules that converge
    /// before the round bound (any nonempty module that reaches a
    /// fixpoint executes a final all-clean round).
    fn scheduler_skips_on_convergence(seed in any::<u64>()) {
        let m = messy_module(seed);
        let mut sched = m;
        let stats = scheduled_pipeline(&mut sched, 4);
        if stats.rounds >= 2 {
            prop_assert!(stats.skipped > 0, "no skips in {stats:?}");
        }
    }
}

/// Pinned: a function that converges in round 1 is retired — all 13 slots
/// of round 2 are skipped for it, by counters, not timing.
#[test]
fn converged_function_is_skipped_in_round_two() {
    // One already-optimal function plus one messy one: the optimal
    // function runs everything clean in round 1 and must be retired for
    // every later round.
    let mut m = Module::new();
    let mut trivial = Function::new("trivial", vec![Ty::I64], Ty::I64);
    let e = trivial.entry();
    trivial.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Param(0)),
        },
    );
    m.add_func(trivial);
    let mut rng = Rng(0xfeed);
    m.add_func(messy_function(&mut rng, "messy", None));

    let mut blind = m.clone();
    let (blind_changes, invocations) = blind_pipeline(&mut blind, 4);
    let stats = scheduled_pipeline(&mut m, 4);
    assert_eq!(&m, &blind);
    assert_eq!(stats.changes, blind_changes);
    assert_eq!(stats.ran + stats.skipped, invocations);
    assert!(
        stats.rounds >= 2,
        "the messy function must force a second round: {stats:?}"
    );
    // The trivial function was converged at the start of every round
    // after the first.
    assert!(
        stats.retired >= stats.rounds - 1,
        "trivial function not retired: {stats:?}"
    );
    // Retirement means its 13 slots were skipped, so round 2 onward
    // contributes at least 13 skips per retired round.
    assert!(
        stats.skipped >= 13 * (stats.rounds - 1),
        "retired function still ran passes: {stats:?}"
    );
}

/// Pinned: counters and module bytes are independent of how many other
/// functions sit in the module (per-function scheduling state is
/// self-contained — the property the pipeline's jobs-invariance relies
/// on).
#[test]
fn per_function_counters_are_order_independent() {
    let mut rng = Rng(0xbead);
    let f0 = messy_function(&mut rng, "a", None);
    let f1 = messy_function(&mut rng, "b", None);

    // Optimize together (no calls between them → no interprocedural
    // coupling beyond the shared superstep, which finds no facts).
    let mut together = Module::new();
    together.add_func(f0.clone());
    together.add_func(f1.clone());
    let stats_together = scheduled_pipeline(&mut together, 4);

    // Optimize separately and sum.
    let (mut alone0, mut alone1) = (Module::new(), Module::new());
    alone0.add_func(f0);
    alone1.add_func(f1);
    let st0 = scheduled_pipeline(&mut alone0, 4);
    let st1 = scheduled_pipeline(&mut alone1, 4);

    assert_eq!(together.funcs[0], alone0.funcs[0]);
    assert_eq!(together.funcs[1], alone1.funcs[0]);
    assert_eq!(stats_together.changes, st0.changes + st1.changes);
}
