//! Pass robustness: every optimization pass, applied alone or repeatedly
//! in random-ish orders to real lifted+fenced modules, must keep the module
//! verifier-clean and preserve execution results.

use lasagne_lir::interp::{Machine, Val};
use lasagne_lir::verify::verify_module;
use lasagne_opt::{run_pass, PassKind};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::BinaryBuilder;
use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, Rm, SseOp, XmmRm};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};

/// A lifted module with loops, calls, FP, memory and fences — a workout
/// for every pass.
fn workout_module() -> lasagne_lir::Module {
    let mut bin = BinaryBuilder::new();

    // helper(x) = x*x + 1
    let mut a = Asm::new();
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::IMul2 {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::AluRmI {
        op: AluOp::Add,
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 1,
    });
    a.push(Inst::Ret);
    let helper = bin.next_function_addr();
    bin.add_function("helper", a.finish(helper).unwrap());

    // main(data, n): loop { acc += helper(data[i]); data[i] = acc; also some
    // FP and a spill }
    let mut a = Asm::new();
    let top = a.label();
    let done = a.label();
    a.push(Inst::Push { src: Gpr::Rbx });
    a.push(Inst::Push { src: Gpr::R12 });
    a.push(Inst::Push { src: Gpr::R13 });
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Reg(Gpr::R12),
        src: Gpr::Rdi,
    });
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Reg(Gpr::R13),
        src: Gpr::Rsi,
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rbx),
        imm: 0,
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 0,
    });
    // spill slot for acc
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
        src: Gpr::Rax,
    });
    a.bind(top);
    a.push(Inst::AluRRm {
        op: AluOp::Cmp,
        w: Width::W64,
        dst: Gpr::Rbx,
        src: Rm::Reg(Gpr::R13),
    });
    a.jcc(Cond::E, done);
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rdi,
        src: Rm::Mem(MemRef::base_index(Gpr::R12, Gpr::Rbx, 8, 0)),
    });
    a.call_abs(helper);
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rcx,
        src: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
    });
    a.push(Inst::AluRRm {
        op: AluOp::Add,
        w: Width::W64,
        dst: Gpr::Rcx,
        src: Rm::Reg(Gpr::Rax),
    });
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
        src: Gpr::Rcx,
    });
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base_index(Gpr::R12, Gpr::Rbx, 8, 0)),
        src: Gpr::Rcx,
    });
    a.push(Inst::AluRmI {
        op: AluOp::Add,
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rbx),
        imm: 1,
    });
    a.jmp(top);
    a.bind(done);
    // FP tail: rax = acc + (i64)((double)acc * 0.5)
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
    });
    a.push(Inst::CvtSi2F {
        prec: FpPrec::Double,
        iw: Width::W64,
        dst: Xmm(0),
        src: Rm::Reg(Gpr::Rax),
    });
    a.push(Inst::MovAbs {
        dst: Gpr::Rcx,
        imm: 0.5f64.to_bits(),
    });
    a.push(Inst::MovGprToXmm {
        w: Width::W64,
        dst: Xmm(1),
        src: Gpr::Rcx,
    });
    a.push(Inst::SseScalar {
        op: SseOp::Mul,
        prec: FpPrec::Double,
        dst: Xmm(0),
        src: XmmRm::Reg(Xmm(1)),
    });
    a.push(Inst::CvtF2Si {
        prec: FpPrec::Double,
        iw: Width::W64,
        dst: Gpr::Rcx,
        src: XmmRm::Reg(Xmm(0)),
    });
    a.push(Inst::AluRRm {
        op: AluOp::Add,
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rcx),
    });
    a.push(Inst::Pop { dst: Gpr::R13 });
    a.push(Inst::Pop { dst: Gpr::R12 });
    a.push(Inst::Pop { dst: Gpr::Rbx });
    a.push(Inst::Ret);
    let main = bin.next_function_addr();
    bin.add_function("main", a.finish(main).unwrap());

    let mut m = lasagne_lifter::lift_binary(&bin.finish()).unwrap();
    lasagne_refine::refine_module(&mut m);
    lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::StackAware);
    lasagne_fences::merge_fences_module(&mut m);
    m
}

trait AsmExt {
    fn call_abs(&mut self, addr: u64);
}
impl AsmExt for Asm {
    fn call_abs(&mut self, addr: u64) {
        self.push(Inst::Call {
            target: lasagne_x86::inst::Target::Abs(addr),
        });
    }
}

fn run(m: &lasagne_lir::Module) -> (u64, Vec<u64>) {
    let id = m.func_by_name("main").unwrap();
    let mut machine = Machine::new(m);
    for i in 0..12u64 {
        machine.mem.write_u64(0x4000_0000 + 8 * i, i + 1);
    }
    let r = machine
        .run(id, &[Val::B64(0x4000_0000), Val::B64(12)])
        .unwrap();
    let finals = (0..12u64)
        .map(|i| machine.mem.read_u64(0x4000_0000 + 8 * i))
        .collect();
    (r.ret.unwrap().bits(), finals)
}

#[test]
fn each_pass_alone_preserves_semantics() {
    let base = workout_module();
    let reference = run(&base);
    for pass in PassKind::ALL {
        let mut m = base.clone();
        run_pass(pass, &mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{} broke the verifier: {e:?}", pass.name()));
        assert_eq!(run(&m), reference, "{} changed behaviour", pass.name());
    }
}

#[test]
fn pass_pairs_preserve_semantics() {
    let base = workout_module();
    let reference = run(&base);
    for p1 in PassKind::ALL {
        for p2 in PassKind::ALL {
            let mut m = base.clone();
            run_pass(p1, &mut m);
            run_pass(p2, &mut m);
            verify_module(&m).unwrap_or_else(|e| panic!("{}+{}: {e:?}", p1.name(), p2.name()));
            assert_eq!(
                run(&m),
                reference,
                "{} then {} changed behaviour",
                p1.name(),
                p2.name()
            );
        }
    }
}

#[test]
fn repeated_pipeline_is_idempotent_on_size() {
    let mut m = workout_module();
    lasagne_opt::standard_pipeline(&mut m, 4);
    let first = m.inst_count();
    lasagne_opt::standard_pipeline(&mut m, 4);
    let second = m.inst_count();
    assert_eq!(first, second, "pipeline must reach a fixpoint");
}
