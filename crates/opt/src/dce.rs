//! Dead-code elimination: basic (`dce`) and aggressive (`adce`).

use lasagne_lir::analysis::Analyses;
use lasagne_lir::func::Function;
use lasagne_lir::inst::{InstId, Operand};

/// Basic DCE: removes unused, side-effect-free instructions to closure.
pub fn dce(f: &mut Function) -> usize {
    dce_with(f, &mut Analyses::new())
}

/// [`dce`] against a shared analysis cache: seeds a worklist from the
/// cached use counts instead of rebuilding them once per deletion round,
/// decrements counts in place as instructions die, and stores the
/// maintained vector back for the next pass.
///
/// The removed set is the unique maximal closure of pure instructions
/// transitively without uses — exactly what the old rebuild-per-round loop
/// computed — and the single order-preserving `retain` leaves the blocks
/// byte-identical to repeated per-round retains.
pub fn dce_with(f: &mut Function, an: &mut Analyses) -> usize {
    let mut counts = an.seed_use_counts(f);
    let mut dead = vec![false; f.insts.len()];
    let mut work: Vec<InstId> = Vec::new();
    for (_, id) in f.iter_insts() {
        if counts[id.0 as usize] == 0 && !f.inst(id).kind.has_side_effects() {
            work.push(id);
        }
    }
    let mut removed = 0;
    while let Some(id) = work.pop() {
        if dead[id.0 as usize] || counts[id.0 as usize] != 0 {
            continue;
        }
        dead[id.0 as usize] = true;
        removed += 1;
        // A dying instruction releases its operands; any that hit zero
        // uses join the worklist. (No underflow: an instruction is only
        // marked dead at zero uses, so every user was marked first.)
        let kind = f.inst(id).kind.clone();
        kind.for_each_operand(|op| {
            if let Operand::Inst(src) = op {
                counts[src.0 as usize] -= 1;
                if counts[src.0 as usize] == 0
                    && !dead[src.0 as usize]
                    && !f.inst(*src).kind.has_side_effects()
                {
                    work.push(*src);
                }
            }
        });
    }
    if removed > 0 {
        for b in f.block_ids() {
            f.block_mut(b).insts.retain(|i| !dead[i.0 as usize]);
        }
    }
    an.store_use_counts(counts);
    removed
}

/// [`adce`] against a shared analysis cache. The mark phase is already a
/// seeded worklist (roots → transitive operands), so the cache's only role
/// is bookkeeping: a removal invalidates the cached use counts (dead
/// instructions may have used live ones).
pub fn adce_with(f: &mut Function, an: &mut Analyses) -> usize {
    let removed = adce(f);
    if removed > 0 {
        an.note_insts_changed();
    }
    removed
}

/// Aggressive DCE: marks transitively live instructions from roots
/// (side-effecting instructions and terminator operands) and deletes
/// everything else — unlike [`dce`] this kills dead φ-cycles.
pub fn adce(f: &mut Function) -> usize {
    let n = f.insts.len();
    let mut live = vec![false; n];
    let mut work: Vec<InstId> = Vec::new();

    let mark = |op: &Operand, live: &mut Vec<bool>, work: &mut Vec<InstId>| {
        if let Operand::Inst(id) = op {
            if !live[id.0 as usize] {
                live[id.0 as usize] = true;
                work.push(*id);
            }
        }
    };

    for b in f.block_ids() {
        for id in &f.block(b).insts {
            if f.inst(*id).kind.has_side_effects() {
                if !live[id.0 as usize] {
                    live[id.0 as usize] = true;
                    work.push(*id);
                }
            }
        }
        f.block(b)
            .term
            .for_each_operand(|op| mark(op, &mut live, &mut work));
    }
    while let Some(id) = work.pop() {
        f.inst(id)
            .kind
            .for_each_operand(|op| mark(op, &mut live, &mut work));
    }

    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let before = f.block(b).insts.len();
        let keep: Vec<InstId> = f
            .block(b)
            .insts
            .iter()
            .copied()
            .filter(|i| live[i.0 as usize])
            .collect();
        removed += before - keep.len();
        f.block_mut(b).insts = keep;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{BinOp, InstKind, Operand, Terminator};
    use lasagne_lir::types::Ty;

    #[test]
    fn dce_removes_unused_chain() {
        let mut f = Function::new("f", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(1),
            },
        );
        let _b = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Inst(a),
                rhs: Operand::i64(2),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Param(0)),
            },
        );
        assert_eq!(dce(&mut f), 2);
        assert_eq!(f.live_inst_count(), 0);
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut f = Function::new("f", vec![Ty::Ptr(lasagne_lir::Pointee::I64)], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(1),
                order: lasagne_lir::inst::Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: lasagne_lir::inst::FenceKind::Fww,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert_eq!(dce(&mut f), 0);
        assert_eq!(f.live_inst_count(), 2);
    }

    #[test]
    fn adce_kills_phi_cycle() {
        // Dead φ-cycle: %p = phi [0, e], [%q, body]; %q = %p + 1 — unused.
        let mut f = Function::new("f", vec![Ty::I1], Ty::I64);
        let e = f.entry();
        let body = f.add_block();
        let exit = f.add_block();
        f.set_term(e, Terminator::Br { dest: body });
        let p = f.push(body, Ty::I64, InstKind::Phi { incoming: vec![] });
        let q = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(p),
                rhs: Operand::i64(1),
            },
        );
        f.inst_mut(p).kind = InstKind::Phi {
            incoming: vec![(e, Operand::i64(0)), (body, Operand::Inst(q))],
        };
        f.set_term(
            body,
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: body,
                if_false: exit,
            },
        );
        f.set_term(
            exit,
            Terminator::Ret {
                val: Some(Operand::i64(7)),
            },
        );

        // Plain DCE can't remove the mutually-referencing pair…
        let mut g = f.clone();
        assert_eq!(dce(&mut g), 0);
        // …aggressive DCE can.
        assert_eq!(adce(&mut f), 2);
        assert_eq!(f.live_inst_count(), 0);
    }
}
