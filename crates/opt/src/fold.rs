//! Constant folding helpers shared by `instcombine` and `sccp`.

use lasagne_lir::inst::{BinOp, CastOp, IPred, Operand};
use lasagne_lir::types::Ty;

fn mask(v: u64, ty: Ty) -> u64 {
    match ty.int_bits() {
        Some(64) | None => v,
        Some(b) => v & ((1u64 << b) - 1),
    }
}

fn sext(v: u64, bits: u32) -> i64 {
    let s = 64 - bits;
    ((v << s) as i64) >> s
}

/// Folds an integer binary operation over constants. Returns `None` for
/// division by zero (left to trap at runtime) and float ops.
pub fn fold_bin(op: BinOp, ty: Ty, a: u64, b: u64) -> Option<u64> {
    let bits = ty.int_bits()?;
    let (a, b) = (mask(a, ty), mask(b, ty));
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => {
            if b == 0 {
                return None;
            }
            a / b
        }
        BinOp::SDiv => {
            if b == 0 {
                return None;
            }
            sext(a, bits).wrapping_div(sext(b, bits)) as u64
        }
        BinOp::URem => {
            if b == 0 {
                return None;
            }
            a % b
        }
        BinOp::SRem => {
            if b == 0 {
                return None;
            }
            sext(a, bits).wrapping_rem(sext(b, bits)) as u64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 % bits),
        BinOp::LShr => a.wrapping_shr(b as u32 % bits),
        BinOp::AShr => (sext(a, bits) >> (b as u32 % bits)) as u64,
        _ => return None,
    };
    Some(mask(v, ty))
}

/// Folds an integer comparison over constants.
pub fn fold_icmp(pred: IPred, ty: Ty, a: u64, b: u64) -> bool {
    let bits = ty.int_bits().unwrap_or(64);
    let (a, b) = (mask(a, ty), mask(b, ty));
    let (sa, sb) = (sext(a, bits), sext(b, bits));
    match pred {
        IPred::Eq => a == b,
        IPred::Ne => a != b,
        IPred::Ult => a < b,
        IPred::Ule => a <= b,
        IPred::Ugt => a > b,
        IPred::Uge => a >= b,
        IPred::Slt => sa < sb,
        IPred::Sle => sa <= sb,
        IPred::Sgt => sa > sb,
        IPred::Sge => sa >= sb,
    }
}

/// Folds an integer-to-integer (or fp-involving, when computable) cast over
/// a constant operand.
pub fn fold_cast(op: CastOp, from: Ty, to: Ty, v: u64) -> Option<Operand> {
    let out = |val: u64| {
        Some(Operand::ConstInt {
            ty: to,
            val: mask(val, to),
        })
    };
    match op {
        CastOp::Trunc => out(v),
        CastOp::ZExt => out(mask(v, from)),
        CastOp::SExt => {
            let bits = from.int_bits()?;
            out(sext(mask(v, from), bits) as u64)
        }
        CastOp::FpToSi => {
            let x = if from == Ty::F32 {
                f64::from(f32::from_bits(v as u32))
            } else {
                f64::from_bits(v)
            };
            out((x as i64) as u64)
        }
        CastOp::SiToFp => {
            let bits = from.int_bits()?;
            let x = sext(mask(v, from), bits) as f64;
            if to == Ty::F32 {
                Some(Operand::ConstF32((x as f32).to_bits()))
            } else {
                Some(Operand::ConstF64(x.to_bits()))
            }
        }
        CastOp::FpExt => Some(Operand::ConstF64(
            f64::from(f32::from_bits(v as u32)).to_bits(),
        )),
        CastOp::FpTrunc => Some(Operand::ConstF32((f64::from_bits(v) as f32).to_bits())),
        // Pointer-involving casts of constants stay as-is.
        CastOp::BitCast | CastOp::IntToPtr | CastOp::PtrToInt => None,
    }
}

/// The constant value of an operand, if it is an integer constant.
pub fn const_int(op: &Operand) -> Option<(Ty, u64)> {
    match op {
        Operand::ConstInt { ty, val } => Some((*ty, *val)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_folds() {
        assert_eq!(fold_bin(BinOp::Add, Ty::I32, 0xFFFF_FFFF, 1), Some(0));
        assert_eq!(fold_bin(BinOp::Mul, Ty::I64, 6, 7), Some(42));
        assert_eq!(
            fold_bin(BinOp::SDiv, Ty::I32, (-6i32) as u32 as u64, 2),
            Some((-3i32) as u32 as u64)
        );
        assert_eq!(fold_bin(BinOp::UDiv, Ty::I64, 1, 0), None);
        assert_eq!(fold_bin(BinOp::AShr, Ty::I8, 0x80, 7), Some(0xFF));
    }

    #[test]
    fn icmp_folds() {
        assert!(fold_icmp(IPred::Slt, Ty::I8, 0x80, 0));
        assert!(!fold_icmp(IPred::Ult, Ty::I8, 0x80, 0));
        assert!(fold_icmp(IPred::Eq, Ty::I32, 0x1_0000_0005, 5));
    }

    #[test]
    fn cast_folds() {
        assert_eq!(
            fold_cast(CastOp::SExt, Ty::I8, Ty::I64, 0xFF),
            Some(Operand::ConstInt {
                ty: Ty::I64,
                val: u64::MAX
            })
        );
        assert_eq!(
            fold_cast(CastOp::ZExt, Ty::I8, Ty::I64, 0xFF),
            Some(Operand::ConstInt {
                ty: Ty::I64,
                val: 0xFF
            })
        );
        assert_eq!(
            fold_cast(CastOp::SiToFp, Ty::I64, Ty::F64, 2),
            Some(Operand::ConstF64(2.0f64.to_bits()))
        );
    }
}
