//! Loop-invariant code motion.
//!
//! Pure loop-invariant computations are hoisted to the loop header's
//! immediate dominator (safe to speculate). Loads are hoisted only when the
//! loop body contains no writes, calls, RMWs, or fences — LIMM permits
//! speculative load introduction (§7.2), and the no-write condition makes
//! the hoisted value coherent with every in-loop read. Hoisted duplicates
//! (the same invariant expression recomputed in several loop blocks) are
//! merged in the preheader, which is where LICM's static code-size wins
//! come from.

use lasagne_lir::analysis::find_loops;
use lasagne_lir::func::Function;
use lasagne_lir::inst::{InstId, InstKind, Operand, Ordering};
use lasagne_lir::BlockId;
use std::collections::BTreeSet;

/// Hoists loop-invariant instructions. Returns the number hoisted.
pub fn licm(f: &mut Function) -> usize {
    licm_with(f, &mut lasagne_lir::analysis::Analyses::new())
}

/// [`licm`] against a shared analysis cache: CFG and dominators come from
/// the cache (LICM moves instructions between blocks but never edits a
/// terminator target, so the cache stays valid across its own run).
pub fn licm_with(f: &mut Function, an: &mut lasagne_lir::analysis::Analyses) -> usize {
    let (cfg, doms) = an.cfg_and_doms(f);
    let loops = find_loops(cfg, doms);
    let mut hoisted = 0;

    for lp in loops {
        let Some(preheader) = doms.idom[lp.header.0 as usize] else {
            continue;
        };
        if lp.blocks.contains(&preheader) {
            continue;
        }
        let in_loop: BTreeSet<BlockId> = lp.blocks.iter().copied().collect();

        // May anything in the loop write memory or fence?
        let mut loop_writes = false;
        for b in &lp.blocks {
            for id in &f.block(*b).insts {
                match &f.inst(*id).kind {
                    InstKind::Store { .. }
                    | InstKind::AtomicRmw { .. }
                    | InstKind::CmpXchg { .. }
                    | InstKind::Call { .. }
                    | InstKind::Fence { .. } => loop_writes = true,
                    _ => {}
                }
            }
        }

        // Which instructions live in the loop?
        let mut def_in_loop: BTreeSet<InstId> = BTreeSet::new();
        for b in &lp.blocks {
            for id in &f.block(*b).insts {
                def_in_loop.insert(*id);
            }
        }

        // Iterate: an instruction is invariant if all operands are defined
        // outside the loop (or already hoisted).
        loop {
            let mut moved_this_round = 0;
            for b in lp.blocks.clone() {
                let ids: Vec<InstId> = f.block(b).insts.clone();
                for id in ids {
                    if !def_in_loop.contains(&id) {
                        continue;
                    }
                    let inst = f.inst(id);
                    let hoistable = match &inst.kind {
                        InstKind::Bin { .. }
                        | InstKind::ICmp { .. }
                        | InstKind::FCmp { .. }
                        | InstKind::Cast { .. }
                        | InstKind::Gep { .. }
                        | InstKind::Select { .. }
                        | InstKind::ExtractElement { .. }
                        | InstKind::InsertElement { .. } => true,
                        InstKind::Load {
                            order: Ordering::NotAtomic,
                            ..
                        } => !loop_writes,
                        _ => false,
                    };
                    if !hoistable {
                        continue;
                    }
                    let mut invariant = true;
                    inst.kind.for_each_operand(|op| {
                        if let Operand::Inst(d) = op {
                            if def_in_loop.contains(d) {
                                invariant = false;
                            }
                        }
                    });
                    if !invariant {
                        continue;
                    }
                    // Division can trap; do not speculate it.
                    if matches!(
                        inst.kind,
                        InstKind::Bin {
                            op: lasagne_lir::inst::BinOp::UDiv
                                | lasagne_lir::inst::BinOp::SDiv
                                | lasagne_lir::inst::BinOp::URem
                                | lasagne_lir::inst::BinOp::SRem,
                            ..
                        }
                    ) {
                        continue;
                    }
                    // Move: remove from its block, append to preheader
                    // (before the terminator position — block instruction
                    // lists exclude terminators, so a plain push suffices).
                    f.block_mut(b).insts.retain(|i| *i != id);
                    f.block_mut(preheader).insts.push(id);
                    def_in_loop.remove(&id);
                    moved_this_round += 1;
                }
            }
            hoisted += moved_this_round;
            if moved_this_round == 0 {
                break;
            }
        }
        // Merge duplicate hoisted expressions in the preheader.
        hoisted += dedup_block(f, preheader);
        let _ = in_loop;
    }
    hoisted
}

/// Local value numbering within one block: replaces later duplicates of a
/// pure expression with the first occurrence.
fn dedup_block(f: &mut Function, b: BlockId) -> usize {
    use std::collections::HashMap;
    let mut seen: HashMap<String, InstId> = HashMap::new();
    let ids: Vec<InstId> = f.block(b).insts.clone();
    let mut kill: Vec<InstId> = Vec::new();
    for id in ids {
        let inst = f.inst(id);
        let pure = matches!(
            inst.kind,
            InstKind::Bin { .. }
                | InstKind::ICmp { .. }
                | InstKind::FCmp { .. }
                | InstKind::Cast { .. }
                | InstKind::Gep { .. }
                | InstKind::Select { .. }
        );
        if !pure {
            continue;
        }
        let key = format!("{:?}|{:?}", inst.ty, inst.kind);
        match seen.get(&key) {
            Some(prev) => {
                let prev = *prev;
                f.replace_all_uses(id, Operand::Inst(prev));
                kill.push(id);
            }
            None => {
                seen.insert(key, id);
            }
        }
    }
    let n = kill.len();
    if n > 0 {
        f.block_mut(b).insts.retain(|i| !kill.contains(i));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{BinOp, IPred, Terminator};
    use lasagne_lir::types::{Pointee, Ty};

    /// while (i < n) { t = a*b; i += t }  — a*b hoists.
    #[test]
    fn hoists_invariant_arithmetic() {
        let mut f = Function::new("f", vec![Ty::I64, Ty::I64, Ty::I64], Ty::I64);
        let e = f.entry();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.set_term(e, Terminator::Br { dest: header });
        let phi = f.push(header, Ty::I64, InstKind::Phi { incoming: vec![] });
        let c = f.push(
            header,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Ult,
                lhs: Operand::Inst(phi),
                rhs: Operand::Param(0),
            },
        );
        f.set_term(
            header,
            Terminator::CondBr {
                cond: Operand::Inst(c),
                if_true: body,
                if_false: exit,
            },
        );
        let t = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Param(1),
                rhs: Operand::Param(2),
            },
        );
        let i2 = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(phi),
                rhs: Operand::Inst(t),
            },
        );
        f.set_term(body, Terminator::Br { dest: header });
        f.inst_mut(phi).kind = InstKind::Phi {
            incoming: vec![(e, Operand::i64(0)), (body, Operand::Inst(i2))],
        };
        f.set_term(
            exit,
            Terminator::Ret {
                val: Some(Operand::Inst(phi)),
            },
        );

        let n = licm(&mut f);
        assert_eq!(n, 1);
        assert!(
            f.block(e).insts.contains(&t),
            "mul should now be in the preheader"
        );
        assert!(!f.block(body).insts.contains(&t));
    }

    /// Loads hoist out of read-only loops but not out of loops with stores.
    #[test]
    fn load_hoisting_depends_on_loop_writes() {
        let build = |with_store: bool| {
            let mut f = Function::new(
                "f",
                vec![Ty::I64, Ty::Ptr(Pointee::I64), Ty::Ptr(Pointee::I64)],
                Ty::Void,
            );
            let e = f.entry();
            let header = f.add_block();
            let body = f.add_block();
            let exit = f.add_block();
            f.set_term(e, Terminator::Br { dest: header });
            let phi = f.push(header, Ty::I64, InstKind::Phi { incoming: vec![] });
            let c = f.push(
                header,
                Ty::I1,
                InstKind::ICmp {
                    pred: IPred::Ult,
                    lhs: Operand::Inst(phi),
                    rhs: Operand::Param(0),
                },
            );
            f.set_term(
                header,
                Terminator::CondBr {
                    cond: Operand::Inst(c),
                    if_true: body,
                    if_false: exit,
                },
            );
            let ld = f.push(
                body,
                Ty::I64,
                InstKind::Load {
                    ptr: Operand::Param(1),
                    order: Ordering::NotAtomic,
                },
            );
            if with_store {
                f.push(
                    body,
                    Ty::Void,
                    InstKind::Store {
                        ptr: Operand::Param(2),
                        val: Operand::Inst(ld),
                        order: Ordering::NotAtomic,
                    },
                );
            }
            let i2 = f.push(
                body,
                Ty::I64,
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Operand::Inst(phi),
                    rhs: Operand::Inst(ld),
                },
            );
            f.set_term(body, Terminator::Br { dest: header });
            f.inst_mut(phi).kind = InstKind::Phi {
                incoming: vec![(e, Operand::i64(0)), (body, Operand::Inst(i2))],
            };
            f.set_term(exit, Terminator::Ret { val: None });
            (f, ld)
        };
        let (mut ro, ld) = build(false);
        assert!(licm(&mut ro) >= 1);
        assert!(ro.block(ro.entry()).insts.contains(&ld));

        let (mut rw, ld2) = build(true);
        licm(&mut rw);
        assert!(
            !rw.block(rw.entry()).insts.contains(&ld2),
            "load must stay in writing loop"
        );
    }

    /// Division never hoists (may trap when the loop would not execute).
    #[test]
    fn division_not_speculated() {
        let mut f = Function::new("f", vec![Ty::I64, Ty::I64, Ty::I64], Ty::I64);
        let e = f.entry();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.set_term(e, Terminator::Br { dest: header });
        let phi = f.push(header, Ty::I64, InstKind::Phi { incoming: vec![] });
        let c = f.push(
            header,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Ult,
                lhs: Operand::Inst(phi),
                rhs: Operand::Param(0),
            },
        );
        f.set_term(
            header,
            Terminator::CondBr {
                cond: Operand::Inst(c),
                if_true: body,
                if_false: exit,
            },
        );
        let d = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::SDiv,
                lhs: Operand::Param(1),
                rhs: Operand::Param(2),
            },
        );
        let i2 = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(phi),
                rhs: Operand::Inst(d),
            },
        );
        f.set_term(body, Terminator::Br { dest: header });
        f.inst_mut(phi).kind = InstKind::Phi {
            incoming: vec![(e, Operand::i64(0)), (body, Operand::Inst(i2))],
        };
        f.set_term(
            exit,
            Terminator::Ret {
                val: Some(Operand::Inst(phi)),
            },
        );
        licm(&mut f);
        assert!(f.block(body).insts.contains(&d));
    }
}
