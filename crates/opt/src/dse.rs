//! Dead-store elimination, gated by the Figure 11b WAW rules.

use lasagne_fences::legality::{elim_adjacent, elim_fenced, Elim, Label};
use lasagne_lir::func::Function;
use lasagne_lir::inst::{FenceKind, InstId, InstKind, Operand, Ordering};

/// Eliminates overwritten non-atomic stores within basic blocks.
///
/// `store p, a; … ; store p, b` kills the first store when nothing between
/// them can read `p` (no loads, calls, or RMWs at all, conservatively) and
/// any intervening fences admit the W-after-W elimination of Figure 11b
/// (`Frm`/`Fww` do; `Fsc` does not).
pub fn dse(f: &mut Function) -> usize {
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        // Pending store per pointer key: (inst id, strongest fence since).
        use std::collections::HashMap;
        let mut pending: HashMap<String, (InstId, Option<FenceKind>)> = HashMap::new();
        let ids: Vec<InstId> = f.block(b).insts.clone();
        let mut kill: Vec<InstId> = Vec::new();
        for id in ids {
            match f.inst(id).kind.clone() {
                InstKind::Store {
                    ptr,
                    order: Ordering::NotAtomic,
                    ..
                } => {
                    let key = format!("{ptr:?}");
                    if let Some((prev, fence)) = pending.get(&key) {
                        let legal = match fence {
                            None => elim_adjacent(Label::Wna, Label::Wna) == Some(Elim::DropFirst),
                            Some(fk) => {
                                elim_fenced(Label::Wna, *fk, Label::Wna) == Some(Elim::DropFirst)
                            }
                        };
                        if legal {
                            kill.push(*prev);
                            removed += 1;
                        }
                    }
                    pending.insert(key, (id, None));
                }
                InstKind::Fence { kind } => {
                    for (_, fence) in pending.values_mut() {
                        *fence = Some(match fence {
                            None => kind,
                            Some(prev) => lasagne_fences::legality::merge_fence(*prev, kind),
                        });
                    }
                }
                k if k.touches_memory() => pending.clear(),
                _ => {}
            }
        }
        if !kill.is_empty() {
            f.block_mut(b).insts.retain(|i| !kill.contains(i));
        }
    }
    removed
}

/// Removes stores to allocas that are never loaded anywhere in the function
/// (and whose address never escapes) — common after register promotion.
pub fn dse_dead_slots(f: &mut Function) -> usize {
    let mut removed = 0;
    let allocas: Vec<InstId> = f
        .iter_insts()
        .filter(|(_, id)| matches!(f.inst(*id).kind, InstKind::Alloca { .. }))
        .map(|(_, id)| id)
        .collect();
    for slot in allocas {
        let this = Operand::Inst(slot);
        let mut only_stores = true;
        let mut stores: Vec<InstId> = Vec::new();
        for (_, id) in f.iter_insts() {
            let inst = f.inst(id);
            let mut used = false;
            inst.kind.for_each_operand(|op| {
                if *op == this {
                    used = true;
                }
            });
            if !used {
                continue;
            }
            match &inst.kind {
                InstKind::Store {
                    ptr,
                    val,
                    order: Ordering::NotAtomic,
                } if *ptr == this && *val != this => {
                    stores.push(id);
                }
                _ => {
                    only_stores = false;
                    break;
                }
            }
        }
        if only_stores && !stores.is_empty() {
            removed += stores.len();
            for b in f.block_ids().collect::<Vec<_>>() {
                f.block_mut(b).insts.retain(|i| !stores.contains(i));
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::Terminator;
    use lasagne_lir::types::{Pointee, Ty};

    #[test]
    fn overwritten_store_removed() {
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(2),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert_eq!(dse(&mut f), 1);
        assert_eq!(f.live_inst_count(), 1);
    }

    #[test]
    fn waw_through_fww_removed_but_not_through_fsc() {
        for (kind, expect) in [
            (FenceKind::Fww, 1),
            (FenceKind::Frm, 1),
            (FenceKind::Fsc, 0),
        ] {
            let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::Void);
            let e = f.entry();
            f.push(
                e,
                Ty::Void,
                InstKind::Store {
                    ptr: Operand::Param(0),
                    val: Operand::i64(1),
                    order: Ordering::NotAtomic,
                },
            );
            f.push(e, Ty::Void, InstKind::Fence { kind });
            f.push(
                e,
                Ty::Void,
                InstKind::Store {
                    ptr: Operand::Param(0),
                    val: Operand::i64(2),
                    order: Ordering::NotAtomic,
                },
            );
            f.set_term(e, Terminator::Ret { val: None });
            assert_eq!(dse(&mut f), expect, "fence {kind:?}");
        }
    }

    #[test]
    fn intervening_load_blocks() {
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(2),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        assert_eq!(dse(&mut f), 0);
    }

    #[test]
    fn dead_slot_stores_removed() {
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i64(2),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert_eq!(dse_dead_slots(&mut f), 2);
    }

    #[test]
    fn seqcst_store_not_touched() {
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(1),
                order: Ordering::SeqCst,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(2),
                order: Ordering::SeqCst,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert_eq!(dse(&mut f), 0);
    }
}
