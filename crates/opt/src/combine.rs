//! `instcombine` and `reassociate`: peephole algebraic simplification.
//!
//! These are the two biggest code-shrinkers on lifted code (Figure 17):
//! the lifter's width masks, flag materialisation, and address arithmetic
//! leave huge amounts of algebraically trivial code behind.

use crate::fold::{const_int, fold_bin, fold_cast, fold_icmp};
use lasagne_lir::analysis::Analyses;
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{BinOp, CastOp, InstId, InstKind, Operand};

/// One `instcombine` sweep over a function. Returns the number of
/// simplifications applied (run to fixpoint by the pipeline).
///
/// Simplified instructions are deleted on the spot (they are pure), which
/// keeps the sweep monotonic: the change count reaches zero at a fixpoint.
/// Like LLVM's InstCombine worklist, trivially dead pure instructions
/// encountered along the way are erased as well.
pub fn instcombine(m: &Module, f: &mut Function) -> usize {
    instcombine_with(m, f, &mut Analyses::new())
}

/// [`instcombine`] against a shared analysis cache: the erasure phase
/// seeds a worklist from the cached use counts (rebuilt only if the
/// simplify sweep mutated) instead of recomputing them once per deletion
/// round, and stores the maintained vector back for the next pass.
pub fn instcombine_with(m: &Module, f: &mut Function, an: &mut Analyses) -> usize {
    let mut changed = 0;
    let mut dead: Vec<InstId> = Vec::new();
    let ids: Vec<InstId> = f.iter_insts().map(|(_, id)| id).collect();
    for id in ids {
        if let Some(rep) = simplify(m, f, id) {
            // Never replace an instruction with itself (possible via
            // `x + 0` where the operand aliases the result id after a
            // previous rewrite).
            if rep == Operand::Inst(id) {
                continue;
            }
            f.replace_all_uses(id, rep);
            dead.push(id);
            changed += 1;
        }
    }
    if !dead.is_empty() {
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).insts.retain(|i| !dead.contains(i));
        }
        an.note_insts_changed();
    }
    // Dead-instruction erasure (InstCombine's `eraseInstFromFunction`) —
    // same transitive closure as `dce` but never erasing allocas. The
    // worklist computes the identical maximal set the old
    // rebuild-counts-per-round loop removed, in one retain.
    let erasable = |f: &Function, id: InstId| {
        !f.inst(id).kind.has_side_effects() && !matches!(f.inst(id).kind, InstKind::Alloca { .. })
    };
    let mut counts = an.seed_use_counts(f);
    let mut erased = vec![false; f.insts.len()];
    let mut work: Vec<InstId> = Vec::new();
    for (_, id) in f.iter_insts() {
        if counts[id.0 as usize] == 0 && erasable(f, id) {
            work.push(id);
        }
    }
    let mut removed = 0;
    while let Some(id) = work.pop() {
        if erased[id.0 as usize] || counts[id.0 as usize] != 0 {
            continue;
        }
        erased[id.0 as usize] = true;
        removed += 1;
        let kind = f.inst(id).kind.clone();
        kind.for_each_operand(|op| {
            if let Operand::Inst(src) = op {
                counts[src.0 as usize] -= 1;
                if counts[src.0 as usize] == 0 && !erased[src.0 as usize] && erasable(f, *src) {
                    work.push(*src);
                }
            }
        });
    }
    if removed > 0 {
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).insts.retain(|i| !erased[i.0 as usize]);
        }
        changed += removed;
    }
    an.store_use_counts(counts);
    changed
}

/// Computes a replacement operand for `id`, if it simplifies.
fn simplify(m: &Module, f: &Function, id: InstId) -> Option<Operand> {
    let inst = f.inst(id);
    let ty = inst.ty;
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            // Constant folding.
            if let (Some((_, a)), Some((_, b))) = (const_int(lhs), const_int(rhs)) {
                if let Some(v) = fold_bin(*op, ty, a, b) {
                    return Some(Operand::ConstInt { ty, val: v });
                }
            }
            // Canonical algebraic identities.
            let czero = |o: &Operand| const_int(o).is_some_and(|(_, v)| v == 0);
            let cone = |o: &Operand| const_int(o).is_some_and(|(t, v)| v == 1 && t == ty);
            let call_ones = |o: &Operand| {
                const_int(o).is_some_and(|(t, v)| {
                    v == t
                        .int_bits()
                        .map_or(0, |b| if b == 64 { u64::MAX } else { (1 << b) - 1 })
                })
            };
            match op {
                BinOp::Add
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Shl
                | BinOp::LShr
                | BinOp::AShr
                | BinOp::Sub => {
                    if czero(rhs) {
                        return Some(*lhs);
                    }
                    if czero(lhs) && matches!(op, BinOp::Add | BinOp::Or | BinOp::Xor) {
                        return Some(*rhs);
                    }
                }
                BinOp::Mul => {
                    if cone(rhs) {
                        return Some(*lhs);
                    }
                    if cone(lhs) {
                        return Some(*rhs);
                    }
                    if czero(rhs) || czero(lhs) {
                        return Some(Operand::ConstInt { ty, val: 0 });
                    }
                }
                BinOp::And => {
                    if call_ones(rhs) {
                        return Some(*lhs);
                    }
                    if call_ones(lhs) {
                        return Some(*rhs);
                    }
                    if czero(rhs) || czero(lhs) {
                        return Some(Operand::ConstInt { ty, val: 0 });
                    }
                }
                _ => {}
            }
            // x ⊕ x patterns.
            if lhs == rhs {
                match op {
                    BinOp::Xor | BinOp::Sub => return Some(Operand::ConstInt { ty, val: 0 }),
                    BinOp::And | BinOp::Or => return Some(*lhs),
                    _ => {}
                }
            }
            None
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            if let (Some((t, a)), Some((_, b))) = (const_int(lhs), const_int(rhs)) {
                return Some(Operand::bool(fold_icmp(*pred, t, a, b)));
            }
            None
        }
        InstKind::Cast { op, val } => {
            let from = m.operand_ty(f, val);
            if let Some((_, v)) = const_int(val) {
                if let Some(c) = fold_cast(*op, from, ty, v) {
                    return Some(c);
                }
            }
            match val {
                Operand::ConstF64(bits) if *op == CastOp::FpTrunc => {
                    return Some(Operand::ConstF32((f64::from_bits(*bits) as f32).to_bits()));
                }
                Operand::ConstF32(bits) if *op == CastOp::FpExt => {
                    return Some(Operand::ConstF64(
                        f64::from(f32::from_bits(*bits)).to_bits(),
                    ));
                }
                _ => {}
            }
            // Cast-of-cast chains.
            if let Operand::Inst(src) = val {
                let src_inst = f.inst(*src);
                if let InstKind::Cast {
                    op: src_op,
                    val: orig,
                } = &src_inst.kind
                {
                    let orig_ty = m.operand_ty(f, orig);
                    match (src_op, op) {
                        // trunc(zext x) or trunc(sext x) back to the original type.
                        (CastOp::ZExt | CastOp::SExt, CastOp::Trunc) if orig_ty == ty => {
                            return Some(*orig);
                        }
                        // zext(zext x) etc. collapse when the outer produces
                        // the same type as a single cast would.
                        (CastOp::BitCast, CastOp::BitCast) if orig_ty == ty => {
                            return Some(*orig);
                        }
                        (CastOp::PtrToInt, CastOp::IntToPtr) if orig_ty == ty => {
                            return Some(*orig);
                        }
                        (CastOp::IntToPtr, CastOp::PtrToInt) if orig_ty == ty => {
                            return Some(*orig);
                        }
                        _ => {}
                    }
                }
            }
            // bitcast to identical type is a no-op.
            if *op == CastOp::BitCast && from == ty {
                return Some(*val);
            }
            None
        }
        InstKind::Select {
            cond,
            if_true,
            if_false,
        } => {
            if let Some((_, c)) = const_int(cond) {
                return Some(if c & 1 != 0 { *if_true } else { *if_false });
            }
            if if_true == if_false {
                return Some(*if_true);
            }
            None
        }
        InstKind::Gep { base, offset, .. } => {
            // gep p, 0 is p (same address, possibly different pointee type —
            // only fold when the types agree).
            if const_int(offset).is_some_and(|(_, v)| v == 0) && m.operand_ty(f, base) == ty {
                return Some(*base);
            }
            None
        }
        _ => None,
    }
}

/// `reassociate`: rebalances chains of the same associative operation so
/// constants combine: `(x + c1) + c2 → x + (c1+c2)`.
pub fn reassociate(m: &Module, f: &mut Function) -> usize {
    let _ = m;
    let mut changed = 0;
    let ids: Vec<InstId> = f.iter_insts().map(|(_, id)| id).collect();
    for id in ids {
        let InstKind::Bin { op, lhs, rhs } = f.inst(id).kind.clone() else {
            continue;
        };
        if !matches!(
            op,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        ) {
            continue;
        }
        // Normalise: constant on the right.
        let (x, c2) = match (const_int(&lhs), const_int(&rhs)) {
            (None, Some(_)) => (lhs, rhs),
            (Some(_), None) => (rhs, lhs),
            _ => continue,
        };
        let Operand::Inst(inner_id) = x else { continue };
        let InstKind::Bin {
            op: inner_op,
            lhs: il,
            rhs: ir,
        } = f.inst(inner_id).kind.clone()
        else {
            continue;
        };
        if inner_op != op {
            continue;
        }
        let (y, c1) = match (const_int(&il), const_int(&ir)) {
            (None, Some(_)) => (il, ir),
            (Some(_), None) => (ir, il),
            _ => continue,
        };
        let ty = f.inst(id).ty;
        let (_, c1v) = const_int(&c1).unwrap();
        let (_, c2v) = const_int(&c2).unwrap();
        let Some(folded) = fold_bin(op, ty, c1v, c2v) else {
            continue;
        };
        f.inst_mut(id).kind = InstKind::Bin {
            op,
            lhs: y,
            rhs: Operand::ConstInt { ty, val: folded },
        };
        changed += 1;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{IPred, Terminator};
    use lasagne_lir::types::Ty;

    fn with_entry(ret: Ty) -> (Module, Function) {
        (
            Module::new(),
            Function::new("t", vec![Ty::I64, Ty::I64], ret),
        )
    }

    #[test]
    fn folds_constants() {
        let (m, mut f) = with_entry(Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::i64(40),
                rhs: Operand::i64(2),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(a)),
            },
        );
        assert_eq!(instcombine(&m, &mut f), 1);
        match f.block(e).term {
            Terminator::Ret { val: Some(v) } => assert_eq!(v.as_const_int(), Some(42)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn removes_identities() {
        let (m, mut f) = with_entry(Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(0),
            },
        );
        let b = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Inst(a),
                rhs: Operand::i64(1),
            },
        );
        let c = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::And,
                lhs: Operand::Inst(b),
                rhs: Operand::i64(-1),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(c)),
            },
        );
        while instcombine(&m, &mut f) > 0 {}
        match f.block(e).term {
            Terminator::Ret {
                val: Some(Operand::Param(0)),
            } => {}
            ref t => panic!("expected direct param return, got {t:?}"),
        }
    }

    #[test]
    fn xor_self_is_zero() {
        let (m, mut f) = with_entry(Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: Operand::Param(0),
                rhs: Operand::Param(0),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(a)),
            },
        );
        assert_eq!(instcombine(&m, &mut f), 1);
    }

    #[test]
    fn collapses_cast_pairs() {
        let (m, mut f) = with_entry(Ty::I64);
        let e = f.entry();
        let t = f.push(
            e,
            Ty::I32,
            InstKind::Cast {
                op: CastOp::Trunc,
                val: Operand::Param(0),
            },
        );
        let z = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::ZExt,
                val: Operand::Inst(t),
            },
        );
        let t2 = f.push(
            e,
            Ty::I32,
            InstKind::Cast {
                op: CastOp::Trunc,
                val: Operand::Inst(z),
            },
        );
        let z2 = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::ZExt,
                val: Operand::Inst(t2),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(z2)),
            },
        );
        // trunc(zext t) → t, then the outer zext(t) duplicates z (left for GVN).
        assert!(instcombine(&m, &mut f) >= 1);
        assert!(matches!(f.inst(t2).kind, InstKind::Cast { .. }));
    }

    #[test]
    fn folds_icmp_and_select() {
        let (m, mut f) = with_entry(Ty::I64);
        let e = f.entry();
        let c = f.push(
            e,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Slt,
                lhs: Operand::i64(-5),
                rhs: Operand::i64(3),
            },
        );
        let s = f.push(
            e,
            Ty::I64,
            InstKind::Select {
                cond: Operand::Inst(c),
                if_true: Operand::i64(1),
                if_false: Operand::i64(2),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(s)),
            },
        );
        while instcombine(&m, &mut f) > 0 {}
        match f.block(e).term {
            Terminator::Ret { val: Some(v) } => assert_eq!(v.as_const_int(), Some(1)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn reassociates_constant_chains() {
        let (m, mut f) = with_entry(Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(16),
            },
        );
        let b = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(a),
                rhs: Operand::i64(-8),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(b)),
            },
        );
        assert_eq!(reassociate(&m, &mut f), 1);
        match &f.inst(b).kind {
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs,
            } => {
                assert_eq!(rhs.as_const_int(), Some(8));
            }
            k => panic!("unexpected {k:?}"),
        }
    }
}
