//! LLVM-style optimization passes over LIR, kept sound for concurrent code
//! by the LIMM legality rules of `lasagne-fences` (paper §7.2).
//!
//! The pass set is exactly the one the paper's Figure 17 evaluates on the
//! lifted kmeans program: `instcombine`, `dce`, `adce`, `licm`,
//! `reassociate`, `gvn`, `mem2reg`, `sroa`, `sccp`, `ipsccp` and `dse`.
//! Passes that move or remove memory operations (`gvn`'s load forwarding,
//! `dse`, `licm`) consult the Figure 11 tables before acting, which is what
//! makes running them after fence placement legal.
//!
//! # Example
//!
//! ```
//! use lasagne_lir::func::{Function, Module};
//! use lasagne_lir::inst::{BinOp, InstKind, Operand, Terminator};
//! use lasagne_lir::types::Ty;
//! use lasagne_opt::{run_pass, PassKind};
//!
//! let mut m = Module::new();
//! let mut f = Function::new("f", vec![Ty::I64], Ty::I64);
//! let e = f.entry();
//! let a = f.push(e, Ty::I64, InstKind::Bin {
//!     op: BinOp::Add, lhs: Operand::Param(0), rhs: Operand::i64(0),
//! });
//! f.set_term(e, Terminator::Ret { val: Some(Operand::Inst(a)) });
//! m.add_func(f);
//!
//! run_pass(PassKind::InstCombine, &mut m);
//! run_pass(PassKind::Dce, &mut m);
//! assert_eq!(m.inst_count(), 0, "x + 0 folded away");
//! ```

#![warn(missing_docs)]

pub mod combine;
pub mod dce;
pub mod dse;
pub mod fold;
pub mod gvn;
pub mod licm;
pub mod mem;
pub mod sccp;
pub mod sched;

use lasagne_lir::func::{Function, Module};
use lasagne_lir::types::Ty;
pub use sched::{Analyses, FuncState, PassEffect, SchedStats};

/// The optimization passes of Figure 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Peephole algebraic simplification + constant folding.
    InstCombine,
    /// Basic dead-code elimination.
    Dce,
    /// Aggressive dead-code elimination.
    Adce,
    /// Loop-invariant code motion.
    Licm,
    /// Reassociation of constant chains.
    Reassociate,
    /// Global value numbering + legality-gated load forwarding.
    Gvn,
    /// Promotion of memory slots to SSA.
    Mem2Reg,
    /// Scalar replacement of aggregates.
    Sroa,
    /// Sparse conditional constant propagation.
    Sccp,
    /// Interprocedural SCCP.
    IpSccp,
    /// Dead-store elimination (Figure 11b WAW rules).
    Dse,
}

impl PassKind {
    /// All passes, in the order Figure 17 lists them.
    pub const ALL: [PassKind; 11] = [
        PassKind::InstCombine,
        PassKind::Dce,
        PassKind::Adce,
        PassKind::Licm,
        PassKind::Reassociate,
        PassKind::Gvn,
        PassKind::Mem2Reg,
        PassKind::Sroa,
        PassKind::Sccp,
        PassKind::IpSccp,
        PassKind::Dse,
    ];

    /// Whether the pass has an interprocedural component that must run
    /// with exclusive access to the whole module (a serial barrier in the
    /// parallel pipeline driver). Only `ipsccp` qualifies; every other
    /// pass mutates one function at a time and reads the module solely for
    /// operand typing, so it may run on distinct functions concurrently.
    pub fn is_interprocedural(self) -> bool {
        matches!(self, PassKind::IpSccp)
    }

    /// The LLVM pass name used in the paper's Figure 17.
    pub fn name(self) -> &'static str {
        match self {
            PassKind::InstCombine => "instcombine",
            PassKind::Dce => "dce",
            PassKind::Adce => "adce",
            PassKind::Licm => "licm",
            PassKind::Reassociate => "reassociate",
            PassKind::Gvn => "gvn",
            PassKind::Mem2Reg => "mem2reg",
            PassKind::Sroa => "sroa",
            PassKind::Sccp => "sccp",
            PassKind::IpSccp => "ipsccp",
            PassKind::Dse => "dse",
        }
    }
}

/// Runs one pass over a whole module. Returns the number of changes made.
pub fn run_pass(kind: PassKind, m: &mut Module) -> usize {
    // Interprocedural component first (ipsccp), then the per-function
    // half over every function. For ipsccp that propagates the discovered
    // constants locally afterwards, as LLVM does.
    let mut total = 0;
    if kind.is_interprocedural() {
        total += sccp::ipsccp(m);
    }
    total + for_each_function(m, |mm, f| run_pass_on_function(kind, mm, f))
}

/// Runs the per-function half of one pass on a single function. Returns
/// the number of changes made.
///
/// For local passes this *is* the whole pass; for [`PassKind::IpSccp`] it
/// is the local constant-propagation cleanup that follows the
/// interprocedural analysis (which only [`run_pass`] performs). The
/// function reads `m` solely for operand typing — never for other function
/// bodies — so the pipeline driver may invoke it on distinct functions
/// concurrently with results identical to any serial order.
pub fn run_pass_on_function(kind: PassKind, m: &Module, f: &mut Function) -> usize {
    run_pass_on_function_eff(kind, m, f, &mut Analyses::new()).changes
}

/// [`run_pass_on_function`] reporting a full [`PassEffect`] and running
/// against a shared per-function analysis cache `an`.
///
/// Every arm upholds the scheduler's soundness invariant — **a clean
/// effect means the pass made zero mutations** — and keeps `an` honest:
/// passes that maintain the cached use counts incrementally (`dce`,
/// `instcombine`'s erasure) store them back, everything else notes the
/// class of state it invalidated. Only sccp can change control flow, so
/// only its arm ever drops the cached CFG/dominators.
pub fn run_pass_on_function_eff(
    kind: PassKind,
    m: &Module,
    f: &mut Function,
    an: &mut Analyses,
) -> PassEffect {
    match kind {
        PassKind::IpSccp | PassKind::Sccp => sccp::sccp_eff(m, f, an),
        PassKind::InstCombine => PassEffect::insts(combine::instcombine_with(m, f, an)),
        PassKind::Dce => PassEffect::insts(dce::dce_with(f, an)),
        PassKind::Adce => PassEffect::insts(dce::adce_with(f, an)),
        PassKind::Licm => {
            let n = licm::licm_with(f, an);
            if n > 0 {
                an.note_insts_changed();
            }
            PassEffect::insts(n)
        }
        PassKind::Reassociate => {
            let n = combine::reassociate(m, f);
            if n > 0 {
                an.note_insts_changed();
            }
            PassEffect::insts(n)
        }
        PassKind::Gvn => {
            let n = gvn::gvn_with(m, f, an) + gvn::load_elim(f);
            if n > 0 {
                an.note_insts_changed();
            }
            PassEffect::insts(n)
        }
        PassKind::Mem2Reg => {
            let n = mem::mem2reg(f);
            if n > 0 {
                an.note_insts_changed();
            }
            PassEffect::insts(n)
        }
        // LLVM's SROA both splits and promotes; mirror that.
        PassKind::Sroa => {
            let n = mem::sroa(f);
            if n > 0 {
                mem::mem2reg(f);
                an.note_insts_changed();
            }
            PassEffect::insts(n)
        }
        PassKind::Dse => {
            let n = dse::dse(f) + dse::dse_dead_slots(f);
            if n > 0 {
                an.note_insts_changed();
            }
            PassEffect::insts(n)
        }
    }
}

fn for_each_function(
    m: &mut Module,
    mut pass: impl FnMut(&Module, &mut Function) -> usize,
) -> usize {
    let mut total = 0;
    for fi in 0..m.funcs.len() {
        let mut f = std::mem::replace(&mut m.funcs[fi], Function::new("", vec![], Ty::Void));
        total += pass(m, &mut f);
        m.funcs[fi] = f;
    }
    total
}

/// The 13 pass slots of one optimization round, in pipeline order. Shared
/// by [`standard_pipeline`], [`blind_pipeline`], and `lasagne::pipeline`'s
/// fused driver (whose `pass_list()` cache key is derived from it — the
/// order is load-bearing for warm-cache compatibility).
pub const OPT_ORDER: [PassKind; 13] = [
    PassKind::Mem2Reg,
    PassKind::Sroa,
    PassKind::Mem2Reg,
    PassKind::InstCombine,
    PassKind::Reassociate,
    PassKind::InstCombine,
    PassKind::Sccp,
    PassKind::IpSccp,
    PassKind::Gvn,
    PassKind::Licm,
    PassKind::Dse,
    PassKind::Adce,
    PassKind::Dce,
];

/// The standard optimization pipeline ("Opt" in the paper's Figure 12):
/// iterates the full pass set until a fixpoint (bounded at `max_rounds`).
/// Returns the total number of changes.
///
/// Since the change-driven scheduler landed this is a shim over
/// [`scheduled_pipeline`]; the module bytes and change total are identical
/// to the old blind driver (see [`blind_pipeline`], kept as the oracle).
pub fn standard_pipeline(m: &mut Module, max_rounds: usize) -> usize {
    scheduled_pipeline(m, max_rounds).changes
}

/// The change-driven optimization pipeline: the same 13 slots per round as
/// [`blind_pipeline`], but each (function, pass) pair runs only while
/// dirty (see [`sched`]), analyses are cached per function across passes,
/// and converged functions skip whole rounds plus their final `compact()`.
///
/// Byte-identical to [`blind_pipeline`] by construction: a skipped pair is
/// one whose rerun would provably mutate nothing and report 0 changes, so
/// per-round change sums — and therefore the round count, the fixpoint,
/// and the final module — are the blind driver's exactly.
pub fn scheduled_pipeline(m: &mut Module, max_rounds: usize) -> SchedStats {
    let mut states: Vec<FuncState> = m.funcs.iter().map(|_| FuncState::new()).collect();
    let mut st = SchedStats::default();
    for _ in 0..max_rounds {
        st.rounds += 1;
        st.retired += states.iter().filter(|s| s.is_converged()).count() as u64;
        let mut round = 0usize;
        for p in OPT_ORDER {
            if p.is_interprocedural() {
                // The ipSCCP superstep (gather → join → apply), exactly as
                // `sccp::ipsccp` runs it; a function that received
                // substitutions is externally mutated and must be fully
                // reconsidered.
                let mut summaries: Vec<sccp::CallSummary> =
                    m.funcs.iter().map(sccp::summarize_calls).collect();
                let param_counts: Vec<usize> = m.funcs.iter().map(|f| f.params.len()).collect();
                let new = sccp::ipsccp_join(&param_counts, &mut summaries, &mut Vec::new());
                for (target, f) in m.funcs.iter_mut().enumerate() {
                    let subs = sccp::apply_ipsccp_facts(f, target as u32, &new);
                    if subs > 0 {
                        states[target].note_external_change();
                    }
                    round += subs;
                }
            }
            for fi in 0..m.funcs.len() {
                if !states[fi].should_run(p) {
                    st.skipped += 1;
                    continue;
                }
                st.ran += 1;
                let mut f =
                    std::mem::replace(&mut m.funcs[fi], Function::new("", vec![], Ty::Void));
                let eff = run_pass_on_function_eff(p, m, &mut f, &mut states[fi].analyses);
                m.funcs[fi] = f;
                states[fi].note_ran(p, &eff);
                round += eff.changes;
            }
        }
        st.changes += round;
        if round == 0 {
            break;
        }
    }
    for f in &mut m.funcs {
        if f.is_compacted() {
            st.compact_skipped += 1;
        } else {
            f.compact();
            st.compacted += 1;
        }
    }
    st
}

/// The pre-scheduler driver, verbatim: every pass over every function
/// every round until a whole-round fixpoint, then unconditional
/// compaction. Kept as the byte-identity oracle for the change-driven
/// scheduler (the qc suite pins `scheduled_pipeline` against it) and for
/// counter reconciliation. Returns `(total changes, pass invocations)` —
/// the invocation count is what `ran + skipped` must equal.
pub fn blind_pipeline(m: &mut Module, max_rounds: usize) -> (usize, u64) {
    let mut total = 0;
    let mut invocations = 0u64;
    for _ in 0..max_rounds {
        let mut round = 0;
        for p in OPT_ORDER {
            invocations += m.funcs.len() as u64;
            round += run_pass(p, m);
        }
        total += round;
        if round == 0 {
            break;
        }
    }
    for f in &mut m.funcs {
        f.compact();
    }
    (total, invocations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{BinOp, InstKind, Operand, Ordering, Terminator};
    use lasagne_lir::interp::{Machine, Val};
    use lasagne_lir::types::Pointee;
    use lasagne_lir::verify::verify_module;

    /// Build a deliberately messy function and check the pipeline shrinks it
    /// without changing behaviour.
    fn messy_module() -> (Module, lasagne_lir::FuncId) {
        let mut m = Module::new();
        let mut f = Function::new("messy", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        // Slot traffic that mem2reg should kill.
        let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        let v = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(slot),
                order: Ordering::NotAtomic,
            },
        );
        // Identity chains instcombine should kill.
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(v),
                rhs: Operand::i64(0),
            },
        );
        let b = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Inst(a),
                rhs: Operand::i64(1),
            },
        );
        // Redundant pair gvn should kill.
        let c1 = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(b),
                rhs: Operand::i64(5),
            },
        );
        let c2 = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(b),
                rhs: Operand::i64(5),
            },
        );
        let s = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(c1),
                rhs: Operand::Inst(c2),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(s)),
            },
        );
        let id = m.add_func(f);
        (m, id)
    }

    #[test]
    fn pipeline_shrinks_and_preserves_semantics() {
        let (mut m, id) = messy_module();
        let before = m.inst_count();
        let mut machine = Machine::new(&m);
        let expect = machine.run(id, &[Val::B64(10)]).unwrap().ret;

        standard_pipeline(&mut m, 4);
        verify_module(&m).unwrap();
        let after = m.inst_count();
        assert!(after < before, "pipeline should shrink {before} -> {after}");

        let mut machine = Machine::new(&m);
        assert_eq!(machine.run(id, &[Val::B64(10)]).unwrap().ret, expect);
        // (10+5)*2 = 30
        assert_eq!(expect, Some(Val::B64(30)));
    }

    #[test]
    fn pipeline_on_lifted_code() {
        use lasagne_x86::asm::Asm;
        use lasagne_x86::binary::BinaryBuilder;
        use lasagne_x86::inst::{AluOp, Inst, MemRef, Rm};
        use lasagne_x86::reg::{Cond, Gpr, Width};

        // Loop summing memory: for(i=0;i<n;i++) acc += data[i]
        let mut bin = BinaryBuilder::new();
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 0,
        });
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rcx),
            imm: 0,
        });
        a.bind(top);
        a.push(Inst::AluRRm {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Gpr::Rcx,
            src: Rm::Reg(Gpr::Rsi),
        });
        a.jcc(Cond::E, done);
        a.push(Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rcx, 8, 0)),
        });
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rcx),
            imm: 1,
        });
        a.jmp(top);
        a.bind(done);
        a.push(Inst::Ret);
        let addr = bin.next_function_addr();
        bin.add_function("sum", a.finish(addr).unwrap());
        let mut m = lasagne_lifter::lift_binary(&bin.finish()).unwrap();

        let id = m.func_by_name("sum").unwrap();
        // Write some data into the heap and sum it, before and after.
        let run = |m: &Module| {
            let mut machine = Machine::new(m);
            for i in 0..10u64 {
                machine
                    .mem
                    .write_u64(lasagne_lir::interp::HEAP_BASE + 8 * i, i * i);
            }
            machine
                .run(
                    id,
                    &[Val::B64(lasagne_lir::interp::HEAP_BASE), Val::B64(10)],
                )
                .unwrap()
        };
        let before_result = run(&m);
        let before_count = m.inst_count();

        standard_pipeline(&mut m, 4);
        verify_module(&m).unwrap();

        let after_result = run(&m);
        assert_eq!(after_result.ret, before_result.ret);
        assert_eq!(
            after_result.ret,
            Some(Val::B64((0..10).map(|i| i * i).sum()))
        );
        assert!(
            m.inst_count() * 2 < before_count,
            "optimizer should halve lifted code: {} -> {}",
            before_count,
            m.inst_count()
        );
        // And the optimized version executes fewer instructions.
        assert!(after_result.stats.insts < before_result.stats.insts);
    }

    #[test]
    fn fences_survive_optimization() {
        // Place fences, optimize hard, and check the fences are still there.
        let mut m = Module::new();
        let mut f = Function::new(
            "f",
            vec![Ty::Ptr(Pointee::I64), Ty::Ptr(Pointee::I64)],
            Ty::I64,
        );
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(1),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        m.add_func(f);
        lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::Naive);
        let before = lasagne_fences::count_fences(&m);
        standard_pipeline(&mut m, 4);
        let after = lasagne_fences::count_fences(&m);
        assert_eq!(before, after, "optimization must not drop fences");
    }
}
