//! Global value numbering + redundant-load elimination.
//!
//! Pure expressions are numbered over the dominator tree; repeated
//! computations are replaced by their dominating occurrence. Memory
//! redundancy (read-after-read, read-after-write) is eliminated *within
//! blocks only*, gated by the Figure 11b legality rules from
//! `lasagne-fences` so that fences between accesses are respected.

use lasagne_fences::legality::{elim_adjacent, elim_fenced, Label};
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{FenceKind, InstId, InstKind, Operand};
use lasagne_lir::BlockId;
use std::collections::HashMap;

/// A hashable key for pure instructions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(lasagne_lir::inst::BinOp, OpKey, OpKey),
    ICmp(lasagne_lir::inst::IPred, OpKey, OpKey),
    FCmp(lasagne_lir::inst::FPred, OpKey, OpKey),
    Cast(lasagne_lir::inst::CastOp, lasagne_lir::Ty, OpKey),
    Gep(OpKey, OpKey, u64),
    Select(OpKey, OpKey, OpKey),
    Extract(OpKey, u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKey {
    Inst(u32),
    Param(u32),
    CInt(u64, lasagne_lir::Ty),
    CF32(u32),
    CF64(u64),
    Global(u32),
    Func(u32),
    Undef,
}

fn op_key(op: &Operand) -> OpKey {
    match op {
        Operand::Inst(i) => OpKey::Inst(i.0),
        Operand::Param(p) => OpKey::Param(*p),
        Operand::ConstInt { ty, val } => OpKey::CInt(*val, *ty),
        Operand::ConstF32(b) => OpKey::CF32(*b),
        Operand::ConstF64(b) => OpKey::CF64(*b),
        Operand::Global(g) => OpKey::Global(g.0),
        Operand::Func(f) => OpKey::Func(f.0),
        Operand::Undef(_) => OpKey::Undef,
    }
}

fn key_of(kind: &InstKind, ty: lasagne_lir::Ty) -> Option<Key> {
    Some(match kind {
        InstKind::Bin { op, lhs, rhs } => {
            // Canonicalise commutative operands.
            let (a, b) = (op_key(lhs), op_key(rhs));
            if op.commutative() && format!("{b:?}") < format!("{a:?}") {
                Key::Bin(*op, b, a)
            } else {
                Key::Bin(*op, a, b)
            }
        }
        InstKind::ICmp { pred, lhs, rhs } => Key::ICmp(*pred, op_key(lhs), op_key(rhs)),
        InstKind::FCmp { pred, lhs, rhs } => Key::FCmp(*pred, op_key(lhs), op_key(rhs)),
        InstKind::Cast { op, val } => Key::Cast(*op, ty, op_key(val)),
        InstKind::Gep {
            base,
            offset,
            elem_size,
        } => Key::Gep(op_key(base), op_key(offset), *elem_size),
        InstKind::Select {
            cond,
            if_true,
            if_false,
        } => Key::Select(op_key(cond), op_key(if_true), op_key(if_false)),
        InstKind::ExtractElement { vec, idx } => Key::Extract(op_key(vec), *idx),
        _ => return None,
    })
}

/// Runs GVN over a function. Returns the number of instructions replaced.
pub fn gvn(m: &Module, f: &mut Function) -> usize {
    gvn_with(m, f, &mut lasagne_lir::analysis::Analyses::new())
}

/// [`gvn`] against a shared analysis cache: the CFG and dominator tree —
/// the pass's whole per-call rebuild cost — come from the cache, which is
/// valid across every pass except sccp's branch folds (GVN itself only
/// rewrites instructions, never terminator targets, so the cache survives
/// its own run too).
pub fn gvn_with(m: &Module, f: &mut Function, an: &mut lasagne_lir::analysis::Analyses) -> usize {
    let _ = m;
    let (_, doms) = an.cfg_and_doms(f);

    // Walk the dominator tree depth-first, scoping the value table.
    let mut dom_children: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for b in f.block_ids() {
        if let Some(d) = doms.idom[b.0 as usize] {
            dom_children[d.0 as usize].push(b);
        }
    }

    let mut replaced = 0;
    // (block, table snapshot) stack; tables are persistent maps simulated by
    // cloning (fine at our function sizes).
    let mut stack: Vec<(BlockId, HashMap<Key, InstId>)> = vec![(BlockId(0), HashMap::new())];
    while let Some((b, mut table)) = stack.pop() {
        replaced += number_block(f, b, &mut table);
        for &c in &dom_children[b.0 as usize] {
            stack.push((c, table.clone()));
        }
    }
    replaced
}

fn number_block(f: &mut Function, b: BlockId, table: &mut HashMap<Key, InstId>) -> usize {
    let mut replaced = 0;
    let ids: Vec<InstId> = f.block(b).insts.clone();
    let mut kill: Vec<InstId> = Vec::new();
    for id in ids {
        let inst = f.inst(id);
        let Some(key) = key_of(&inst.kind, inst.ty) else {
            continue;
        };
        match table.get(&key) {
            Some(prev) => {
                let prev = *prev;
                f.replace_all_uses(id, Operand::Inst(prev));
                kill.push(id);
                replaced += 1;
            }
            None => {
                table.insert(key, id);
            }
        }
    }
    if !kill.is_empty() {
        f.block_mut(b).insts.retain(|i| !kill.contains(i));
    }
    replaced
}

/// Redundant load elimination within blocks, honouring Figure 11b.
///
/// Tracks, per pointer SSA value, the most recent load result or stored
/// value; an intervening store/RMW/call to *any* pointer invalidates the
/// whole table (no alias analysis); fences invalidate according to the
/// fenced-elimination rules.
pub fn load_elim(f: &mut Function) -> usize {
    let mut replaced = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        // Available value per pointer: (value operand, producing label,
        // fence seen since (strongest first)).
        #[derive(Clone)]
        struct Avail {
            val: Operand,
            label: Label,
            fence: Option<FenceKind>,
        }
        let mut avail: HashMap<OpKey, Avail> = HashMap::new();
        let ids: Vec<InstId> = f.block(b).insts.clone();
        let mut kill: Vec<InstId> = Vec::new();
        for id in ids {
            let kind = f.inst(id).kind.clone();
            match &kind {
                InstKind::Load {
                    ptr,
                    order: lasagne_lir::inst::Ordering::NotAtomic,
                } => {
                    let k = op_key(ptr);
                    if let Some(a) = avail.get(&k) {
                        let ok = match a.fence {
                            None => elim_adjacent(a.label, Label::Rna).is_some(),
                            Some(fk) => elim_fenced(a.label, fk, Label::Rna).is_some(),
                        };
                        if ok {
                            f.replace_all_uses(id, a.val);
                            kill.push(id);
                            replaced += 1;
                            continue;
                        }
                    }
                    avail.insert(
                        k,
                        Avail {
                            val: Operand::Inst(id),
                            label: Label::Rna,
                            fence: None,
                        },
                    );
                }
                InstKind::Store {
                    ptr,
                    val,
                    order: lasagne_lir::inst::Ordering::NotAtomic,
                } => {
                    // A store to one pointer may alias others: drop
                    // everything except this pointer's entry.
                    let k = op_key(ptr);
                    avail.clear();
                    avail.insert(
                        k,
                        Avail {
                            val: *val,
                            label: Label::Wna,
                            fence: None,
                        },
                    );
                }
                InstKind::Fence { kind: fk } => {
                    for a in avail.values_mut() {
                        a.fence = Some(match a.fence {
                            None => *fk,
                            Some(prev) => lasagne_fences::legality::merge_fence(prev, *fk),
                        });
                    }
                }
                k if k.touches_memory() => {
                    avail.clear();
                }
                _ => {}
            }
        }
        if !kill.is_empty() {
            f.block_mut(b).insts.retain(|i| !kill.contains(i));
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{BinOp, Ordering, Terminator};
    use lasagne_lir::types::{Pointee, Ty};

    #[test]
    fn gvn_dedups_pure_expressions() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::Param(1),
            },
        );
        let b = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::Param(1),
            },
        );
        let c = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Inst(a),
                rhs: Operand::Inst(b),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(c)),
            },
        );
        assert_eq!(gvn(&m, &mut f), 1);
        let _ = &mut m;
        match &f.inst(c).kind {
            InstKind::Bin { lhs, rhs, .. } => assert_eq!(lhs, rhs),
            _ => unreachable!(),
        }
    }

    #[test]
    fn gvn_commutative_canonicalisation() {
        let m = Module::new();
        let mut f = Function::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::Param(1),
            },
        );
        let b = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(1),
                rhs: Operand::Param(0),
            },
        );
        let c = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Sub,
                lhs: Operand::Inst(a),
                rhs: Operand::Inst(b),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(c)),
            },
        );
        assert_eq!(gvn(&m, &mut f), 1, "a+b and b+a must value-number equal");
    }

    #[test]
    fn gvn_respects_dominance() {
        // Same expression in two sibling branches must NOT be deduped.
        let m = Module::new();
        let mut f = Function::new("f", vec![Ty::I1, Ty::I64], Ty::I64);
        let e = f.entry();
        let t = f.add_block();
        let el = f.add_block();
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: t,
                if_false: el,
            },
        );
        let a = f.push(
            t,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(1),
                rhs: Operand::i64(1),
            },
        );
        f.set_term(
            t,
            Terminator::Ret {
                val: Some(Operand::Inst(a)),
            },
        );
        let b = f.push(
            el,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(1),
                rhs: Operand::i64(1),
            },
        );
        f.set_term(
            el,
            Terminator::Ret {
                val: Some(Operand::Inst(b)),
            },
        );
        assert_eq!(gvn(&m, &mut f), 0);
    }

    #[test]
    fn load_elim_raw() {
        // store p, v; x = load p  ⇒ x = v
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64), Ty::I64], Ty::I64);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::Param(1),
                order: Ordering::NotAtomic,
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        assert_eq!(load_elim(&mut f), 1);
        match f.block(e).term {
            Terminator::Ret {
                val: Some(Operand::Param(1)),
            } => {}
            ref t => panic!("load not forwarded: {t:?}"),
        }
    }

    #[test]
    fn load_elim_rar_through_frm() {
        // x = load p; Frm; y = load p ⇒ y = x (F-RAR with o = rm is legal).
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
        let e = f.entry();
        let x = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Frm,
            },
        );
        let y = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        let s = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(x),
                rhs: Operand::Inst(y),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(s)),
            },
        );
        assert_eq!(load_elim(&mut f), 1);
    }

    #[test]
    fn load_elim_blocked_by_fsc_after_read() {
        // x = load p; Fsc; y = load p — F-RAR with Fsc is NOT in Figure 11b.
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
        let e = f.entry();
        let x = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fsc,
            },
        );
        let y = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        let s = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(x),
                rhs: Operand::Inst(y),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(s)),
            },
        );
        assert_eq!(load_elim(&mut f), 0);
    }

    #[test]
    fn load_elim_raw_through_fww() {
        // store p, v; Fww; x = load p ⇒ x = v (F-RAW with τ = ww).
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64), Ty::I64], Ty::I64);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::Param(1),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        assert_eq!(load_elim(&mut f), 1);
    }

    #[test]
    fn load_elim_raw_blocked_by_frm() {
        // store p, v; Frm; x = load p — F-RAW with Frm is NOT legal.
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64), Ty::I64], Ty::I64);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::Param(1),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Frm,
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        assert_eq!(load_elim(&mut f), 0);
    }

    #[test]
    fn load_elim_invalidated_by_other_store() {
        let mut f = Function::new(
            "f",
            vec![Ty::Ptr(Pointee::I64), Ty::Ptr(Pointee::I64)],
            Ty::I64,
        );
        let e = f.entry();
        let x = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(1),
                val: Operand::i64(0),
                order: Ordering::NotAtomic,
            },
        );
        let y = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        let s = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(x),
                rhs: Operand::Inst(y),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(s)),
            },
        );
        assert_eq!(
            load_elim(&mut f),
            0,
            "potentially aliasing store blocks reuse"
        );
    }
}
