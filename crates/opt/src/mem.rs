//! `mem2reg` (alloca promotion, re-exported from `lasagne-lir`) and a
//! scalar-replacement pass (`sroa`) that splits multi-field allocas — the
//! lifter's 16-byte XMM slots in particular — into independently promotable
//! scalar slots.

use lasagne_lir::func::Function;
use lasagne_lir::inst::{CastOp, InstId, InstKind, Operand, Ordering};
use lasagne_lir::types::{Pointee, Ty};
use std::collections::BTreeMap;

/// Promotes all eligible allocas to SSA (the classic `mem2reg`).
pub fn mem2reg(f: &mut Function) -> usize {
    lasagne_lir::ssa::promote_allocas(f, |_, _| true)
}

/// One access to an alloca at a constant byte offset.
struct Access {
    /// The load/store instruction.
    inst: InstId,
    /// The pointer-producing instruction feeding it (bitcast or gep+bitcast
    /// chain head) — rewritten to point at the split slot.
    ptr_inst: InstId,
    offset: u64,
    size: u64,
    pointee: Pointee,
}

/// Describes how an alloca's pointer flows to an access:
/// `alloca → [gep const]? → bitcast → load/store`.
fn classify_access(f: &Function, slot: InstId, mem_inst: InstId, ptr: &Operand) -> Option<Access> {
    let Operand::Inst(p0) = ptr else { return None };
    // Unwrap one bitcast.
    let (pointee, after_cast) = match &f.inst(*p0).kind {
        InstKind::Cast {
            op: CastOp::BitCast,
            val: Operand::Inst(v),
        } => {
            let pe = f.inst(*p0).ty.pointee()?;
            (pe, *v)
        }
        InstKind::Gep { .. } | InstKind::Alloca { .. } => {
            let pe = f.inst(*p0).ty.pointee()?;
            (pe, *p0)
        }
        _ => return None,
    };
    // Then either the alloca itself or a constant-offset gep from it.
    let offset = if after_cast == slot {
        0
    } else {
        match &f.inst(after_cast).kind {
            InstKind::Gep {
                base: Operand::Inst(b),
                offset,
                elem_size,
            } if *b == slot => offset.as_const_int()? * *elem_size,
            _ => return None,
        }
    };
    Some(Access {
        inst: mem_inst,
        ptr_inst: *p0,
        offset,
        size: pointee.size(),
        pointee,
    })
}

/// Splits allocas whose every use is a fixed-offset scalar access into one
/// alloca per disjoint byte range. Returns the number of allocas split.
pub fn sroa(f: &mut Function) -> usize {
    let slots: Vec<(InstId, u64)> = f
        .iter_insts()
        .filter_map(|(_, id)| match f.inst(id).kind {
            InstKind::Alloca { size } => Some((id, size)),
            _ => None,
        })
        .collect();

    let mut split = 0;
    for (slot, size) in slots {
        // Gather all uses; every use must be (transitively) a classified
        // scalar access.
        let mut accesses: Vec<Access> = Vec::new();
        let mut ok = true;
        // Intermediate pointer instructions (geps/bitcasts) rooted at slot.
        let mut derived: Vec<InstId> = vec![slot];
        // First collect derived pointers.
        for (_, id) in f.iter_insts() {
            match &f.inst(id).kind {
                InstKind::Gep {
                    base: Operand::Inst(b),
                    offset,
                    ..
                } if *b == slot && offset.as_const_int().is_some() => {
                    derived.push(id);
                }
                InstKind::Cast {
                    op: CastOp::BitCast,
                    val: Operand::Inst(v),
                } if derived.contains(v) => {
                    derived.push(id);
                }
                _ => {}
            }
        }
        // Then check all uses of slot/derived.
        for (_, id) in f.iter_insts() {
            let inst = f.inst(id);
            let mut touches = false;
            inst.kind.for_each_operand(|op| {
                if let Operand::Inst(i) = op {
                    if derived.contains(i) {
                        touches = true;
                    }
                }
            });
            if !touches {
                continue;
            }
            match &inst.kind {
                InstKind::Load {
                    ptr,
                    order: Ordering::NotAtomic,
                } => match classify_access(f, slot, id, ptr) {
                    Some(a) => accesses.push(a),
                    None => {
                        ok = false;
                        break;
                    }
                },
                InstKind::Store {
                    ptr,
                    val,
                    order: Ordering::NotAtomic,
                } => {
                    // The value stored must not be the pointer itself.
                    let mut escapes = false;
                    if let Operand::Inst(v) = val {
                        if derived.contains(v) {
                            escapes = true;
                        }
                    }
                    if escapes {
                        ok = false;
                        break;
                    }
                    match classify_access(f, slot, id, ptr) {
                        Some(a) => accesses.push(a),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                // Derived pointer computations are fine.
                InstKind::Gep { .. }
                | InstKind::Cast {
                    op: CastOp::BitCast,
                    ..
                } => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || accesses.is_empty() {
            continue;
        }
        // Partition into byte ranges; all accesses to a range must agree on
        // (offset, size) exactly (no partial overlap).
        let mut ranges: BTreeMap<u64, (u64, Pointee)> = BTreeMap::new();
        let mut consistent = true;
        for a in &accesses {
            if a.offset + a.size > size {
                consistent = false;
                break;
            }
            match ranges.get(&a.offset) {
                None => {
                    ranges.insert(a.offset, (a.size, a.pointee));
                }
                Some((s, _)) if *s == a.size => {}
                _ => {
                    consistent = false;
                    break;
                }
            }
        }
        // No overlaps between distinct ranges.
        let keys: Vec<u64> = ranges.keys().copied().collect();
        for w in keys.windows(2) {
            if w[0] + ranges[&w[0]].0 > w[1] {
                consistent = false;
            }
        }
        if !consistent || ranges.len() < 2 {
            continue;
        }

        // Create one alloca per range, right where the original lives.
        let mut new_slots: BTreeMap<u64, InstId> = BTreeMap::new();
        let (slot_block, slot_pos) = {
            let mut found = None;
            for b in f.block_ids() {
                if let Some(p) = f.block(b).insts.iter().position(|i| *i == slot) {
                    found = Some((b, p));
                    break;
                }
            }
            match found {
                Some(x) => x,
                None => continue,
            }
        };
        for (off, (sz, pe)) in &ranges {
            let id = f.insert(
                slot_block,
                slot_pos,
                Ty::Ptr(*pe),
                InstKind::Alloca { size: *sz },
            );
            new_slots.insert(*off, id);
        }
        // Rewrite each access: point the memory op directly at the new slot
        // (bitcast if the access pointee differs from the slot pointee).
        for a in &accesses {
            let ns = new_slots[&a.offset];
            let slot_ty = f.inst(ns).ty;
            let want_ty = Ty::Ptr(a.pointee);
            let ptr_op = if slot_ty == want_ty {
                Operand::Inst(ns)
            } else {
                // Reuse the old pointer instruction as the bitcast.
                f.inst_mut(a.ptr_inst).kind = InstKind::Cast {
                    op: CastOp::BitCast,
                    val: Operand::Inst(ns),
                };
                f.inst_mut(a.ptr_inst).ty = want_ty;
                Operand::Inst(a.ptr_inst)
            };
            match &mut f.inst_mut(a.inst).kind {
                InstKind::Load { ptr, .. } | InstKind::Store { ptr, .. } => *ptr = ptr_op,
                _ => unreachable!(),
            }
        }
        split += 1;
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::func::Module;
    use lasagne_lir::inst::Terminator;
    use lasagne_lir::verify::verify_module;

    /// A 16-byte slot accessed as two distinct f64 halves (the lifter's XMM
    /// slot shape) splits into two 8-byte slots, then promotes.
    #[test]
    fn splits_xmm_style_slot() {
        let mut f = Function::new("f", vec![Ty::F64, Ty::F64], Ty::F64);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 16 });
        // low half
        let lo_ptr = f.push(
            e,
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: Operand::Inst(slot),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(lo_ptr),
                val: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        // high half
        let hi = f.push(
            e,
            Ty::Ptr(Pointee::I8),
            InstKind::Gep {
                base: Operand::Inst(slot),
                offset: Operand::i64(8),
                elem_size: 1,
            },
        );
        let hi_ptr = f.push(
            e,
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: Operand::Inst(hi),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(hi_ptr),
                val: Operand::Param(1),
                order: Ordering::NotAtomic,
            },
        );
        // read back the low half
        let lo_ptr2 = f.push(
            e,
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: Operand::Inst(slot),
            },
        );
        let l = f.push(
            e,
            Ty::F64,
            InstKind::Load {
                ptr: Operand::Inst(lo_ptr2),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );

        assert_eq!(sroa(&mut f), 1);
        crate::dce::dce(&mut f);
        let promoted = mem2reg(&mut f);
        assert!(promoted >= 2, "split slots should promote, got {promoted}");

        let mut m = Module::new();
        let id = m.add_func(f);
        verify_module(&m).unwrap();
        let mut machine = lasagne_lir::interp::Machine::new(&m);
        let r = machine
            .run(
                id,
                &[
                    lasagne_lir::interp::Val::B64(1.5f64.to_bits()),
                    lasagne_lir::interp::Val::B64(9.0f64.to_bits()),
                ],
            )
            .unwrap();
        assert_eq!(r.ret.unwrap().f64(), 1.5);
    }

    /// Overlapping accesses (0..8 and 4..12) block splitting.
    #[test]
    fn overlap_blocks_sroa() {
        let mut f = Function::new("f", vec![Ty::F64], Ty::Void);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 16 });
        let p0 = f.push(
            e,
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: Operand::Inst(slot),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(p0),
                val: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        let g = f.push(
            e,
            Ty::Ptr(Pointee::I8),
            InstKind::Gep {
                base: Operand::Inst(slot),
                offset: Operand::i64(4),
                elem_size: 1,
            },
        );
        let p1 = f.push(
            e,
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: Operand::Inst(g),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(p1),
                val: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert_eq!(sroa(&mut f), 0);
    }

    /// An escaping pointer blocks splitting.
    #[test]
    fn escape_blocks_sroa() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 16 });
        let p = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(slot),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(p)),
            },
        );
        assert_eq!(sroa(&mut f), 0);
    }
}
