//! Conditional constant propagation (`sccp`) and its interprocedural
//! extension (`ipsccp`), plus unreachable-block cleanup.

use crate::fold::{const_int, fold_bin, fold_cast, fold_icmp};
use crate::sched::PassEffect;
use lasagne_lir::analysis::Analyses;
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{Callee, InstKind, Operand, Terminator};

/// Folds constants (and constant conditions into unconditional branches)
/// and removes unreachable blocks, fixing φ-nodes — constant propagation
/// only, unlike `instcombine`, which also rewrites algebraic identities.
pub fn sccp(m: &Module, f: &mut Function) -> usize {
    sccp_eff(m, f, &mut Analyses::new()).changes
}

/// [`sccp`] reporting a full [`PassEffect`] against a shared analysis
/// cache. The effect flags are the scheduler's ground truth, so they cover
/// mutations the legacy change count never did: the unreachable-block
/// cleanup rewrites terminators to `Unreachable` and prunes φ-incomings
/// even on iterations whose reported count is zero.
pub fn sccp_eff(m: &Module, f: &mut Function, an: &mut Analyses) -> PassEffect {
    let mut eff = PassEffect::clean();
    loop {
        let folds = const_fold(m, f);
        if folds > 0 {
            eff.changed_insts = true;
            an.note_insts_changed();
        }
        // Fold constant conditional branches.
        let mut br = 0;
        for b in f.block_ids().collect::<Vec<_>>() {
            if let Terminator::CondBr {
                cond,
                if_true,
                if_false,
            } = f.block(b).term.clone()
            {
                if let Some((_, c)) = const_int(&cond) {
                    let dest = if c & 1 != 0 { if_true } else { if_false };
                    f.set_term(b, Terminator::Br { dest });
                    br += 1;
                } else if if_true == if_false {
                    f.set_term(b, Terminator::Br { dest: if_true });
                    br += 1;
                }
            }
        }
        if br > 0 {
            eff.changed_cfg = true;
            an.note_cfg_changed();
        }
        let (dropped, pruned) = remove_unreachable_with(f, an);
        if pruned {
            // Terminators were rewritten to Unreachable and φ-incomings
            // pruned — possibly with `dropped == 0` (already-empty dead
            // blocks). The cache note happens inside
            // `remove_unreachable_with`.
            eff.changed_insts = true;
            eff.changed_cfg = true;
        }
        eff.changes += folds + br + dropped;
        if folds + br + dropped == 0 {
            return eff;
        }
    }
}

/// Constant-folds instructions whose operands are all constants, deleting
/// the folded instruction. Returns the number of folds.
fn const_fold(m: &Module, f: &mut Function) -> usize {
    let mut changed = 0;
    let mut dead: Vec<lasagne_lir::InstId> = Vec::new();
    let ids: Vec<lasagne_lir::InstId> = f.iter_insts().map(|(_, id)| id).collect();
    for id in ids {
        let inst = f.inst(id);
        let ty = inst.ty;
        let rep = match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => match (const_int(lhs), const_int(rhs)) {
                (Some((_, a)), Some((_, b))) => {
                    fold_bin(*op, ty, a, b).map(|v| Operand::ConstInt { ty, val: v })
                }
                _ => None,
            },
            InstKind::ICmp { pred, lhs, rhs } => match (const_int(lhs), const_int(rhs)) {
                (Some((t, a)), Some((_, b))) => Some(Operand::bool(fold_icmp(*pred, t, a, b))),
                _ => None,
            },
            InstKind::Cast { op, val } => {
                let from = m.operand_ty(f, val);
                const_int(val).and_then(|(_, v)| fold_cast(*op, from, ty, v))
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => const_int(cond).map(|(_, c)| if c & 1 != 0 { *if_true } else { *if_false }),
            _ => None,
        };
        if let Some(rep) = rep {
            f.replace_all_uses(id, rep);
            dead.push(id);
            changed += 1;
        }
    }
    if !dead.is_empty() {
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).insts.retain(|i| !dead.contains(i));
        }
    }
    changed
}

/// Deletes blocks unreachable from the entry, pruning φ-incomings that
/// reference them. Returns the number of instructions dropped.
pub fn remove_unreachable(f: &mut Function) -> usize {
    remove_unreachable_with(f, &mut Analyses::new()).0
}

/// [`remove_unreachable`] against a shared analysis cache. Returns
/// `(instructions dropped, any mutation)` — the second component is true
/// whenever the function was touched at all, which the dropped count alone
/// does not capture (emptying an already-empty dead block still rewrites
/// its terminator and triggers φ pruning).
pub fn remove_unreachable_with(f: &mut Function, an: &mut Analyses) -> (usize, bool) {
    // Reachability snapshot from the (fresh-or-cached) CFG; like the
    // original single-shot computation, the snapshot deliberately predates
    // this call's own mutations.
    let reach: Vec<bool> = {
        let cfg = an.cfg(f);
        (0..f.blocks.len())
            .map(|b| cfg.reachable(lasagne_lir::BlockId(b as u32)))
            .collect()
    };
    let mut dropped = 0;
    let mut any = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        if !reach[b.0 as usize] && !f.block(b).insts.is_empty() {
            dropped += f.block(b).insts.len();
            f.block_mut(b).insts.clear();
            f.set_term(b, Terminator::Unreachable);
            any = true;
        } else if !reach[b.0 as usize] && !matches!(f.block(b).term, Terminator::Unreachable) {
            f.set_term(b, Terminator::Unreachable);
            any = true;
        }
    }
    if any {
        // Prune φ inputs from now-unreachable predecessors.
        for bid in f.block_ids().collect::<Vec<_>>() {
            let ids = f.block(bid).insts.clone();
            for id in ids {
                if let InstKind::Phi { incoming } = &mut f.inst_mut(id).kind {
                    incoming.retain(|(p, _)| reach[p.0 as usize]);
                }
            }
        }
        lasagne_lir::ssa::prune_trivial_phis(f);
        an.note_cfg_changed();
    }
    (dropped, any)
}

/// One interprocedural constant-propagation decision: parameter `param` of
/// function `func` was unanimously passed `value` at every call site, so its
/// uses were replaced by `value` inside the callee.
///
/// These are the `ipsccp` lattice facts the translation cache folds into a
/// function's key — a cached entry must be invalidated when a fact it
/// consumed changes, and the facts derive from *other* functions' call
/// sites, not from the callee's own bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpsccpFact {
    /// Index of the function whose parameter was substituted.
    pub func: u32,
    /// Parameter index.
    pub param: u32,
    /// The unanimous constant.
    pub value: Operand,
}

/// Interprocedural SCCP: when every call site of a function passes the same
/// constant for a parameter, the parameter's uses are replaced by that
/// constant inside the callee. (`main`-like roots — functions with no call
/// sites — are left untouched.)
pub fn ipsccp(m: &mut Module) -> usize {
    ipsccp_logged(m, &mut Vec::new())
}

/// [`ipsccp_logged`] recording each lattice transition into `ctx`: the
/// `opt.ipsccp.facts` / `opt.ipsccp.substitutions` counters plus (when
/// tracing is enabled) a `lattice-fact` instant event per newly discovered
/// fact — a parameter dropping from ⊤ (unknown) to a constant. Produces
/// the exact same module, facts, and count as [`ipsccp_logged`].
pub fn ipsccp_traced(
    m: &mut Module,
    facts: &mut Vec<IpsccpFact>,
    ctx: &lasagne_trace::TraceCtx,
) -> usize {
    let before = facts.len();
    let subs = ipsccp_logged(m, facts);
    ctx.add("opt.ipsccp.facts", (facts.len() - before) as u64);
    ctx.add("opt.ipsccp.substitutions", subs as u64);
    if ctx.is_enabled() {
        for fact in &facts[before..] {
            ctx.instant(
                "opt",
                "lattice-fact",
                vec![
                    (
                        "func",
                        lasagne_trace::ArgVal::from(m.funcs[fact.func as usize].name.as_str()),
                    ),
                    ("param", lasagne_trace::ArgVal::from(fact.param as u64)),
                    (
                        "value",
                        lasagne_trace::ArgVal::from(format!("{:?}", fact.value)),
                    ),
                ],
            );
        }
    }
    subs
}

/// [`ipsccp`], additionally appending every substitution decision to
/// `facts`. A decision is logged even when the callee no longer uses the
/// parameter (zero textual substitutions): the decision itself depends on
/// the other functions' call sites, which is what cache invalidation needs
/// to observe.
///
/// Structured as a superstep — parallel-friendly gather of per-function
/// [`CallSummary`] snapshots, a serial [`ipsccp_join`] that replays the
/// lattice decisions (including the intra-invocation cascade) over those
/// frozen summaries, and an [`apply_ipsccp_facts`] substitution phase that
/// is independent per function. The driver in `lasagne::pipeline` runs the
/// gather and apply phases on its worker pool; this serial entry point runs
/// the identical phases inline and produces the identical module, facts,
/// and substitution count.
pub fn ipsccp_logged(m: &mut Module, facts: &mut Vec<IpsccpFact>) -> usize {
    let mut summaries: Vec<CallSummary> = m.funcs.iter().map(summarize_calls).collect();
    let param_counts: Vec<usize> = m.funcs.iter().map(|f| f.params.len()).collect();
    let new = ipsccp_join(&param_counts, &mut summaries, facts);
    let mut changed = 0;
    for (target, f) in m.funcs.iter_mut().enumerate() {
        changed += apply_ipsccp_facts(f, target as u32, &new);
    }
    changed
}

/// Frozen snapshot of everything `ipsccp` reads from one function's body:
/// its direct call sites (callee plus the full argument vector, in
/// instruction order) and every [`Operand::Func`] reference it holds
/// (address-taken uses, including function-valued call arguments).
///
/// Summaries are the superstep's communication medium — the parallel gather
/// phase produces one per function against the frozen module, and the
/// serial join phase decides lattice facts from summaries alone, never
/// touching function bodies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CallSummary {
    /// `(callee, args)` for every direct call, in instruction order.
    pub calls: Vec<(lasagne_lir::FuncId, Vec<Operand>)>,
    /// Functions whose address this function takes (one entry per use).
    pub func_refs: Vec<lasagne_lir::FuncId>,
}

/// Superstep gather phase: summarise one function's call sites and
/// address-taken function references. Reads only `f`; safe to run for all
/// functions concurrently.
pub fn summarize_calls(f: &Function) -> CallSummary {
    let mut s = CallSummary::default();
    for (_, id) in f.iter_insts() {
        let inst = f.inst(id);
        inst.kind.for_each_operand(|op| {
            if let Operand::Func(id) = op {
                s.func_refs.push(*id);
            }
        });
        if let InstKind::Call {
            callee: Callee::Func(c),
            args,
        } = &inst.kind
        {
            s.calls.push((*c, args.clone()));
        }
    }
    s
}

/// Superstep join phase (serial): replay the interprocedural lattice
/// decisions over the frozen summaries, in the same `(target, param)`
/// order the original single-threaded loop used. When a parameter is
/// decided, the target's *own* summary is rewritten in place
/// (`Param(pi)` → constant in its outgoing call arguments) so the
/// intra-invocation cascade — a substitution inside function *t* turning a
/// call argument of a later target constant — is reproduced exactly.
///
/// Newly decided facts are appended to `facts` and also returned, in
/// decision order, for the apply phase.
pub fn ipsccp_join(
    param_counts: &[usize],
    summaries: &mut [CallSummary],
    facts: &mut Vec<IpsccpFact>,
) -> Vec<IpsccpFact> {
    let mut new_facts = Vec::new();
    for (target, &nparams) in param_counts.iter().enumerate() {
        let target_id = lasagne_lir::FuncId(target as u32);
        for pi in 0..nparams {
            // Merge the argument at every direct call site; also require
            // the function's address is never taken (no Operand::Func use).
            let mut seen: Option<Operand> = None;
            let mut consistent = true;
            let mut any_call = false;
            let mut address_taken = false;
            for s in summaries.iter() {
                if s.func_refs.contains(&target_id) {
                    address_taken = true;
                }
                for (callee, args) in &s.calls {
                    if *callee == target_id {
                        any_call = true;
                        let a = args[pi];
                        if !matches!(
                            a,
                            Operand::ConstInt { .. } | Operand::ConstF32(_) | Operand::ConstF64(_)
                        ) {
                            consistent = false;
                        } else {
                            match seen {
                                None => seen = Some(a),
                                Some(s) if s == a => {}
                                _ => consistent = false,
                            }
                        }
                    }
                }
            }
            if !any_call || !consistent || address_taken {
                continue;
            }
            let Some(c) = seen else { continue };
            let fact = IpsccpFact {
                func: target as u32,
                param: pi as u32,
                value: c,
            };
            facts.push(fact);
            new_facts.push(fact);
            // Cascade: the body substitution (deferred to the apply phase)
            // would turn `Param(pi)` constant inside the target's own call
            // arguments, which can unblock decisions for later targets.
            // Reflect it in the summary now, where later iterations read.
            for (_, args) in &mut summaries[target].calls {
                for a in args.iter_mut() {
                    if *a == Operand::Param(pi as u32) {
                        *a = c;
                    }
                }
            }
        }
    }
    new_facts
}

/// Superstep apply phase: substitute the decided constants into one
/// function's body, counting textual replacements. `facts` is the full
/// decision list from [`ipsccp_join`]; only entries for `target` apply.
/// Touches only `f`, and substitutions for different functions never
/// interact (the substituted values are constants, never parameters), so
/// the apply phase is safe to run for all functions concurrently and
/// produces the same bodies and counts as interleaved serial substitution.
pub fn apply_ipsccp_facts(f: &mut Function, target: u32, facts: &[IpsccpFact]) -> usize {
    let mut subs = 0;
    for fact in facts.iter().filter(|fact| fact.func == target) {
        let c = fact.value;
        let pi = fact.param;
        for inst in &mut f.insts {
            inst.kind.for_each_operand_mut(|op| {
                if *op == Operand::Param(pi) {
                    *op = c;
                    subs += 1;
                }
            });
        }
        for b in 0..f.blocks.len() {
            f.blocks[b].term.for_each_operand_mut(|op| {
                if *op == Operand::Param(pi) {
                    *op = c;
                    subs += 1;
                }
            });
        }
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{BinOp, IPred, InstKind, Operand, Terminator};
    use lasagne_lir::types::Ty;

    #[test]
    fn folds_constant_branch_and_removes_dead_block() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry();
        let t = f.add_block();
        let el = f.add_block();
        let c = f.push(
            e,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Eq,
                lhs: Operand::i64(1),
                rhs: Operand::i64(1),
            },
        );
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Inst(c),
                if_true: t,
                if_false: el,
            },
        );
        f.set_term(
            t,
            Terminator::Ret {
                val: Some(Operand::i64(10)),
            },
        );
        let dead = f.push(
            el,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::i64(1),
                rhs: Operand::i64(2),
            },
        );
        f.set_term(
            el,
            Terminator::Ret {
                val: Some(Operand::Inst(dead)),
            },
        );
        m.add_func(f);

        let mut f = m.funcs.remove(0);
        assert!(sccp(&m, &mut f) > 0);
        assert!(matches!(f.block(e).term, Terminator::Br { .. }));
        assert!(f.block(el).insts.is_empty(), "unreachable block emptied");
    }

    #[test]
    fn ipsccp_propagates_unanimous_constant() {
        let mut m = Module::new();
        let mut callee = Function::new("callee", vec![Ty::I64], Ty::I64);
        let e = callee.entry();
        let v = callee.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Param(0),
                rhs: Operand::i64(2),
            },
        );
        callee.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(v)),
            },
        );
        let callee_id = m.add_func(callee);

        let mut caller = Function::new("caller", vec![], Ty::I64);
        let e = caller.entry();
        let c1 = caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(21)],
            },
        );
        let c2 = caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(21)],
            },
        );
        let s = caller.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(c1),
                rhs: Operand::Inst(c2),
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(s)),
            },
        );
        m.add_func(caller);

        assert!(ipsccp(&mut m) > 0);
        // The callee's multiply now has a constant operand.
        let f = &m.funcs[0];
        let has_const = f.iter_insts().any(|(_, id)| {
            matches!(&f.inst(id).kind, InstKind::Bin { lhs, .. } if lhs.as_const_int() == Some(21))
        });
        assert!(has_const);
    }

    #[test]
    fn ipsccp_blocked_by_differing_args() {
        let mut m = Module::new();
        let mut callee = Function::new("callee", vec![Ty::I64], Ty::I64);
        let e = callee.entry();
        callee.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Param(0)),
            },
        );
        let callee_id = m.add_func(callee);

        let mut caller = Function::new("caller", vec![], Ty::I64);
        let e = caller.entry();
        caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(1)],
            },
        );
        let c2 = caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(2)],
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(c2)),
            },
        );
        m.add_func(caller);

        assert_eq!(ipsccp(&mut m), 0);
    }

    /// The original single-threaded `ipsccp_logged` loop, kept verbatim as
    /// the oracle the superstep decomposition must match bit for bit.
    fn ipsccp_serial_reference(m: &mut Module, facts: &mut Vec<IpsccpFact>) -> usize {
        let mut changed = 0;
        let nfuncs = m.funcs.len();
        for target in 0..nfuncs {
            let target_id = lasagne_lir::FuncId(target as u32);
            let nparams = m.funcs[target].params.len();
            for pi in 0..nparams {
                let mut seen: Option<Operand> = None;
                let mut consistent = true;
                let mut any_call = false;
                let mut address_taken = false;
                for f in &m.funcs {
                    for (_, id) in f.iter_insts() {
                        let inst = f.inst(id);
                        inst.kind.for_each_operand(|op| {
                            if *op == Operand::Func(target_id) {
                                address_taken = true;
                            }
                        });
                        if let InstKind::Call {
                            callee: Callee::Func(c),
                            args,
                        } = &inst.kind
                        {
                            if *c == target_id {
                                any_call = true;
                                let a = args[pi];
                                if !matches!(
                                    a,
                                    Operand::ConstInt { .. }
                                        | Operand::ConstF32(_)
                                        | Operand::ConstF64(_)
                                ) {
                                    consistent = false;
                                } else {
                                    match seen {
                                        None => seen = Some(a),
                                        Some(s) if s == a => {}
                                        _ => consistent = false,
                                    }
                                }
                            }
                        }
                    }
                }
                if !any_call || !consistent || address_taken {
                    continue;
                }
                let Some(c) = seen else { continue };
                facts.push(IpsccpFact {
                    func: target as u32,
                    param: pi as u32,
                    value: c,
                });
                let f = &mut m.funcs[target];
                let mut subs = 0;
                for inst in &mut f.insts {
                    inst.kind.for_each_operand_mut(|op| {
                        if *op == Operand::Param(pi as u32) {
                            *op = c;
                            subs += 1;
                        }
                    });
                }
                for b in 0..f.blocks.len() {
                    f.blocks[b].term.for_each_operand_mut(|op| {
                        if *op == Operand::Param(pi as u32) {
                            *op = c;
                            subs += 1;
                        }
                    });
                }
                changed += subs;
            }
        }
        changed
    }

    /// A module with an intra-invocation cascade: `top` calls `mid(7)`,
    /// and `mid` forwards its own parameter as the argument to `leaf` —
    /// so the decision for `leaf` only becomes possible after the
    /// substitution into `mid` turns that forwarded argument constant.
    /// (`mid` and `leaf` are added before `top` so the cascade flows
    /// toward a *higher* function index, as the serial loop requires.)
    fn cascade_module() -> Module {
        let mut m = Module::new();
        let mut mid = Function::new("mid", vec![Ty::I64], Ty::I64);
        let e = mid.entry();
        // Placeholder callee id: leaf is added right after mid (index 1).
        let leaf_id = lasagne_lir::FuncId(1);
        let call = mid.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(leaf_id),
                args: vec![Operand::Param(0)],
            },
        );
        mid.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(call)),
            },
        );
        let mid_id = m.add_func(mid);

        let mut leaf = Function::new("leaf", vec![Ty::I64], Ty::I64);
        let e = leaf.entry();
        let v = leaf.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(1),
            },
        );
        leaf.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(v)),
            },
        );
        assert_eq!(m.add_func(leaf), leaf_id);

        let mut top = Function::new("top", vec![], Ty::I64);
        let e = top.entry();
        let call = top.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(mid_id),
                args: vec![Operand::i64(7)],
            },
        );
        top.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(call)),
            },
        );
        m.add_func(top);
        m
    }

    #[test]
    fn superstep_cascades_through_forwarded_params() {
        let mut m = cascade_module();
        let mut facts = Vec::new();
        let subs = ipsccp_logged(&mut m, &mut facts);
        // mid.param0 = 7 (decided first), then leaf.param0 = 7 via the
        // now-constant forwarded argument inside mid.
        assert_eq!(
            facts,
            vec![
                IpsccpFact {
                    func: 0,
                    param: 0,
                    value: Operand::i64(7)
                },
                IpsccpFact {
                    func: 1,
                    param: 0,
                    value: Operand::i64(7)
                },
            ]
        );
        assert_eq!(subs, 2, "one textual substitution in each callee");
    }

    #[test]
    fn superstep_matches_serial_reference_exactly() {
        for build in [cascade_module as fn() -> Module, || {
            // The unanimous-constant module from the test above.
            let mut m = Module::new();
            let mut callee = Function::new("callee", vec![Ty::I64, Ty::I64], Ty::I64);
            let e = callee.entry();
            let v = callee.push(
                e,
                Ty::I64,
                InstKind::Bin {
                    op: BinOp::Mul,
                    lhs: Operand::Param(0),
                    rhs: Operand::Param(1),
                },
            );
            callee.set_term(
                e,
                Terminator::Ret {
                    val: Some(Operand::Inst(v)),
                },
            );
            let callee_id = m.add_func(callee);
            let mut caller = Function::new("caller", vec![], Ty::I64);
            let e = caller.entry();
            let c1 = caller.push(
                e,
                Ty::I64,
                InstKind::Call {
                    callee: Callee::Func(callee_id),
                    args: vec![Operand::i64(21), Operand::i64(3)],
                },
            );
            let c2 = caller.push(
                e,
                Ty::I64,
                InstKind::Call {
                    callee: Callee::Func(callee_id),
                    args: vec![Operand::i64(21), Operand::i64(4)],
                },
            );
            let s = caller.push(
                e,
                Ty::I64,
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Operand::Inst(c1),
                    rhs: Operand::Inst(c2),
                },
            );
            caller.set_term(
                e,
                Terminator::Ret {
                    val: Some(Operand::Inst(s)),
                },
            );
            m.add_func(caller);
            m
        }] {
            let mut serial = build();
            let mut phased = serial.clone();
            let mut serial_facts = Vec::new();
            let mut phased_facts = Vec::new();
            let serial_subs = ipsccp_serial_reference(&mut serial, &mut serial_facts);
            let phased_subs = ipsccp_logged(&mut phased, &mut phased_facts);
            assert_eq!(serial_facts, phased_facts, "fact streams diverged");
            assert_eq!(serial_subs, phased_subs, "substitution counts diverged");
            assert_eq!(serial, phased, "modules diverged");
        }
    }

    #[test]
    fn ipsccp_blocked_when_address_taken() {
        let mut m = Module::new();
        let mut callee = Function::new("callee", vec![Ty::I64], Ty::I64);
        let e = callee.entry();
        callee.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Param(0)),
            },
        );
        let callee_id = m.add_func(callee);

        let mut caller = Function::new("caller", vec![], Ty::I64);
        let e = caller.entry();
        caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(1)],
            },
        );
        // Address escapes (e.g. pthread_create-style).
        let fp = caller.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: lasagne_lir::inst::CastOp::PtrToInt,
                val: Operand::Func(callee_id),
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(fp)),
            },
        );
        m.add_func(caller);

        assert_eq!(ipsccp(&mut m), 0);
    }
}
