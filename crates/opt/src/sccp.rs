//! Conditional constant propagation (`sccp`) and its interprocedural
//! extension (`ipsccp`), plus unreachable-block cleanup.

use crate::fold::{const_int, fold_bin, fold_cast, fold_icmp};
use lasagne_lir::analysis::Cfg;
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{Callee, InstKind, Operand, Terminator};

/// Folds constants (and constant conditions into unconditional branches)
/// and removes unreachable blocks, fixing φ-nodes — constant propagation
/// only, unlike `instcombine`, which also rewrites algebraic identities.
pub fn sccp(m: &Module, f: &mut Function) -> usize {
    let mut changed = 0;
    loop {
        let mut round = const_fold(m, f);
        // Fold constant conditional branches.
        for b in f.block_ids().collect::<Vec<_>>() {
            if let Terminator::CondBr {
                cond,
                if_true,
                if_false,
            } = f.block(b).term.clone()
            {
                if let Some((_, c)) = const_int(&cond) {
                    let dest = if c & 1 != 0 { if_true } else { if_false };
                    f.set_term(b, Terminator::Br { dest });
                    round += 1;
                } else if if_true == if_false {
                    f.set_term(b, Terminator::Br { dest: if_true });
                    round += 1;
                }
            }
        }
        round += remove_unreachable(f);
        changed += round;
        if round == 0 {
            return changed;
        }
    }
}

/// Constant-folds instructions whose operands are all constants, deleting
/// the folded instruction. Returns the number of folds.
fn const_fold(m: &Module, f: &mut Function) -> usize {
    let mut changed = 0;
    let mut dead: Vec<lasagne_lir::InstId> = Vec::new();
    let ids: Vec<lasagne_lir::InstId> = f.iter_insts().map(|(_, id)| id).collect();
    for id in ids {
        let inst = f.inst(id);
        let ty = inst.ty;
        let rep = match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => match (const_int(lhs), const_int(rhs)) {
                (Some((_, a)), Some((_, b))) => {
                    fold_bin(*op, ty, a, b).map(|v| Operand::ConstInt { ty, val: v })
                }
                _ => None,
            },
            InstKind::ICmp { pred, lhs, rhs } => match (const_int(lhs), const_int(rhs)) {
                (Some((t, a)), Some((_, b))) => Some(Operand::bool(fold_icmp(*pred, t, a, b))),
                _ => None,
            },
            InstKind::Cast { op, val } => {
                let from = m.operand_ty(f, val);
                const_int(val).and_then(|(_, v)| fold_cast(*op, from, ty, v))
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => const_int(cond).map(|(_, c)| if c & 1 != 0 { *if_true } else { *if_false }),
            _ => None,
        };
        if let Some(rep) = rep {
            f.replace_all_uses(id, rep);
            dead.push(id);
            changed += 1;
        }
    }
    if !dead.is_empty() {
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).insts.retain(|i| !dead.contains(i));
        }
    }
    changed
}

/// Deletes blocks unreachable from the entry, pruning φ-incomings that
/// reference them. Returns the number of instructions dropped.
pub fn remove_unreachable(f: &mut Function) -> usize {
    let cfg = Cfg::compute(f);
    let mut dropped = 0;
    let mut any = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        if !cfg.reachable(b) && !f.block(b).insts.is_empty() {
            dropped += f.block(b).insts.len();
            f.block_mut(b).insts.clear();
            f.set_term(b, Terminator::Unreachable);
            any = true;
        } else if !cfg.reachable(b) && !matches!(f.block(b).term, Terminator::Unreachable) {
            f.set_term(b, Terminator::Unreachable);
            any = true;
        }
    }
    if any {
        // Prune φ inputs from now-unreachable predecessors.
        for bid in f.block_ids().collect::<Vec<_>>() {
            let ids = f.block(bid).insts.clone();
            for id in ids {
                if let InstKind::Phi { incoming } = &mut f.inst_mut(id).kind {
                    incoming.retain(|(p, _)| cfg.reachable(*p));
                }
            }
        }
        lasagne_lir::ssa::prune_trivial_phis(f);
    }
    dropped
}

/// One interprocedural constant-propagation decision: parameter `param` of
/// function `func` was unanimously passed `value` at every call site, so its
/// uses were replaced by `value` inside the callee.
///
/// These are the `ipsccp` lattice facts the translation cache folds into a
/// function's key — a cached entry must be invalidated when a fact it
/// consumed changes, and the facts derive from *other* functions' call
/// sites, not from the callee's own bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpsccpFact {
    /// Index of the function whose parameter was substituted.
    pub func: u32,
    /// Parameter index.
    pub param: u32,
    /// The unanimous constant.
    pub value: Operand,
}

/// Interprocedural SCCP: when every call site of a function passes the same
/// constant for a parameter, the parameter's uses are replaced by that
/// constant inside the callee. (`main`-like roots — functions with no call
/// sites — are left untouched.)
pub fn ipsccp(m: &mut Module) -> usize {
    ipsccp_logged(m, &mut Vec::new())
}

/// [`ipsccp_logged`] recording each lattice transition into `ctx`: the
/// `opt.ipsccp.facts` / `opt.ipsccp.substitutions` counters plus (when
/// tracing is enabled) a `lattice-fact` instant event per newly discovered
/// fact — a parameter dropping from ⊤ (unknown) to a constant. Produces
/// the exact same module, facts, and count as [`ipsccp_logged`].
pub fn ipsccp_traced(
    m: &mut Module,
    facts: &mut Vec<IpsccpFact>,
    ctx: &lasagne_trace::TraceCtx,
) -> usize {
    let before = facts.len();
    let subs = ipsccp_logged(m, facts);
    ctx.add("opt.ipsccp.facts", (facts.len() - before) as u64);
    ctx.add("opt.ipsccp.substitutions", subs as u64);
    if ctx.is_enabled() {
        for fact in &facts[before..] {
            ctx.instant(
                "opt",
                "lattice-fact",
                vec![
                    (
                        "func",
                        lasagne_trace::ArgVal::from(m.funcs[fact.func as usize].name.as_str()),
                    ),
                    ("param", lasagne_trace::ArgVal::from(fact.param as u64)),
                    (
                        "value",
                        lasagne_trace::ArgVal::from(format!("{:?}", fact.value)),
                    ),
                ],
            );
        }
    }
    subs
}

/// [`ipsccp`], additionally appending every substitution decision to
/// `facts`. A decision is logged even when the callee no longer uses the
/// parameter (zero textual substitutions): the decision itself depends on
/// the other functions' call sites, which is what cache invalidation needs
/// to observe.
pub fn ipsccp_logged(m: &mut Module, facts: &mut Vec<IpsccpFact>) -> usize {
    let mut changed = 0;
    let nfuncs = m.funcs.len();
    for target in 0..nfuncs {
        let target_id = lasagne_lir::FuncId(target as u32);
        let nparams = m.funcs[target].params.len();
        for pi in 0..nparams {
            // Gather the argument at every direct call site; also require
            // the function's address is never taken (no Operand::Func use).
            let mut seen: Option<Operand> = None;
            let mut consistent = true;
            let mut any_call = false;
            let mut address_taken = false;
            for f in &m.funcs {
                for (_, id) in f.iter_insts() {
                    let inst = f.inst(id);
                    inst.kind.for_each_operand(|op| {
                        if *op == Operand::Func(target_id) {
                            address_taken = true;
                        }
                    });
                    if let InstKind::Call {
                        callee: Callee::Func(c),
                        args,
                    } = &inst.kind
                    {
                        if *c == target_id {
                            any_call = true;
                            let a = args[pi];
                            if !matches!(
                                a,
                                Operand::ConstInt { .. }
                                    | Operand::ConstF32(_)
                                    | Operand::ConstF64(_)
                            ) {
                                consistent = false;
                            } else {
                                match seen {
                                    None => seen = Some(a),
                                    Some(s) if s == a => {}
                                    _ => consistent = false,
                                }
                            }
                        }
                    }
                }
            }
            if !any_call || !consistent || address_taken {
                continue;
            }
            let Some(c) = seen else { continue };
            facts.push(IpsccpFact {
                func: target as u32,
                param: pi as u32,
                value: c,
            });
            // Substitute inside the callee.
            let f = &mut m.funcs[target];
            let mut subs = 0;
            for inst in &mut f.insts {
                inst.kind.for_each_operand_mut(|op| {
                    if *op == Operand::Param(pi as u32) {
                        *op = c;
                        subs += 1;
                    }
                });
            }
            for b in 0..f.blocks.len() {
                f.blocks[b].term.for_each_operand_mut(|op| {
                    if *op == Operand::Param(pi as u32) {
                        *op = c;
                        subs += 1;
                    }
                });
            }
            changed += subs;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{BinOp, IPred, InstKind, Operand, Terminator};
    use lasagne_lir::types::Ty;

    #[test]
    fn folds_constant_branch_and_removes_dead_block() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry();
        let t = f.add_block();
        let el = f.add_block();
        let c = f.push(
            e,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Eq,
                lhs: Operand::i64(1),
                rhs: Operand::i64(1),
            },
        );
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Inst(c),
                if_true: t,
                if_false: el,
            },
        );
        f.set_term(
            t,
            Terminator::Ret {
                val: Some(Operand::i64(10)),
            },
        );
        let dead = f.push(
            el,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::i64(1),
                rhs: Operand::i64(2),
            },
        );
        f.set_term(
            el,
            Terminator::Ret {
                val: Some(Operand::Inst(dead)),
            },
        );
        m.add_func(f);

        let mut f = m.funcs.remove(0);
        assert!(sccp(&m, &mut f) > 0);
        assert!(matches!(f.block(e).term, Terminator::Br { .. }));
        assert!(f.block(el).insts.is_empty(), "unreachable block emptied");
    }

    #[test]
    fn ipsccp_propagates_unanimous_constant() {
        let mut m = Module::new();
        let mut callee = Function::new("callee", vec![Ty::I64], Ty::I64);
        let e = callee.entry();
        let v = callee.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Param(0),
                rhs: Operand::i64(2),
            },
        );
        callee.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(v)),
            },
        );
        let callee_id = m.add_func(callee);

        let mut caller = Function::new("caller", vec![], Ty::I64);
        let e = caller.entry();
        let c1 = caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(21)],
            },
        );
        let c2 = caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(21)],
            },
        );
        let s = caller.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(c1),
                rhs: Operand::Inst(c2),
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(s)),
            },
        );
        m.add_func(caller);

        assert!(ipsccp(&mut m) > 0);
        // The callee's multiply now has a constant operand.
        let f = &m.funcs[0];
        let has_const = f.iter_insts().any(|(_, id)| {
            matches!(&f.inst(id).kind, InstKind::Bin { lhs, .. } if lhs.as_const_int() == Some(21))
        });
        assert!(has_const);
    }

    #[test]
    fn ipsccp_blocked_by_differing_args() {
        let mut m = Module::new();
        let mut callee = Function::new("callee", vec![Ty::I64], Ty::I64);
        let e = callee.entry();
        callee.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Param(0)),
            },
        );
        let callee_id = m.add_func(callee);

        let mut caller = Function::new("caller", vec![], Ty::I64);
        let e = caller.entry();
        caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(1)],
            },
        );
        let c2 = caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(2)],
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(c2)),
            },
        );
        m.add_func(caller);

        assert_eq!(ipsccp(&mut m), 0);
    }

    #[test]
    fn ipsccp_blocked_when_address_taken() {
        let mut m = Module::new();
        let mut callee = Function::new("callee", vec![Ty::I64], Ty::I64);
        let e = callee.entry();
        callee.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Param(0)),
            },
        );
        let callee_id = m.add_func(callee);

        let mut caller = Function::new("caller", vec![], Ty::I64);
        let e = caller.entry();
        caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::i64(1)],
            },
        );
        // Address escapes (e.g. pthread_create-style).
        let fp = caller.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: lasagne_lir::inst::CastOp::PtrToInt,
                val: Operand::Func(callee_id),
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(fp)),
            },
        );
        m.add_func(caller);

        assert_eq!(ipsccp(&mut m), 0);
    }
}
