//! Change-driven pass scheduling.
//!
//! The blind fixpoint driver reruns all 13 pipeline slots over every
//! function every round until a whole-round fixpoint. Most of that work is
//! provably idle: a pass that ran clean on a function stays clean until
//! some *other* pass that can feed it new opportunities mutates the
//! function. This module tracks exactly that, per function × pass:
//!
//! * [`PassEffect`] — what a pass invocation did to a function, with
//!   mutation flags decoupled from the reported change count (a pass may
//!   mutate without counting, e.g. sccp's φ pruning; it must never count
//!   without mutating... it may, but never mutate while reporting clean).
//! * [`feeds`] — the static pass→pass invalidation matrix: `feeds(p, q)`
//!   says a non-clean run of `p` can expose new work for `q`.
//! * [`FuncState`] — per-function dirty bits over the 11 [`PassKind`]s
//!   plus the function's lazily maintained [`Analyses`] cache.
//! * [`SchedStats`] — counters proving the scheduler skips work
//!   (`ran + skipped` reconciles exactly with the blind driver's
//!   invocation count, and all counters are jobs-invariant).
//!
//! Soundness argument for byte-identity with the blind driver: a (function,
//! pass) pair is skipped only if the pass previously ran *clean* (zero
//! mutation) on that function and no pass with a `feeds` edge into it has
//! mutated the function since. By the matrix's correctness, rerunning the
//! pass would mutate nothing and report 0 changes — so the round's change
//! sum, the round count, and the final module bytes all match the blind
//! driver exactly. Scheduling decisions depend only on per-function pass
//! results, never on cross-function timing, so counters are identical at
//! any `--jobs` value.

use crate::PassKind;
pub use lasagne_lir::analysis::Analyses;

/// Number of distinct passes ([`PassKind::ALL`]).
pub const NPASS: usize = 11;

/// Position of `k` in [`PassKind::ALL`] (the matrix row/column order).
pub fn pass_index(k: PassKind) -> usize {
    PassKind::ALL
        .iter()
        .position(|p| *p == k)
        .expect("every PassKind appears in ALL")
}

/// What one pass invocation did to one function.
///
/// `changes` is the legacy reported change count (what the `usize` API
/// returns); the flags are the scheduler's ground truth. The invariant each
/// pass must uphold: **if `is_clean()` the pass made zero mutations** —
/// the function is byte-identical to its state before the call. The
/// converse need not hold (a pass may mutate more than it counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassEffect {
    /// Reported change count (legacy `usize` return).
    pub changes: usize,
    /// Instructions were added, removed, or rewritten.
    pub changed_insts: bool,
    /// A terminator target changed (branch folded, block unreachable).
    pub changed_cfg: bool,
}

impl PassEffect {
    /// No changes, no mutation.
    pub fn clean() -> PassEffect {
        PassEffect::default()
    }

    /// An instruction-level effect: `n` reported changes, instructions
    /// mutated iff `n > 0`, CFG untouched.
    pub fn insts(n: usize) -> PassEffect {
        PassEffect {
            changes: n,
            changed_insts: n > 0,
            changed_cfg: false,
        }
    }

    /// True iff the pass is known to have made zero mutations.
    pub fn is_clean(&self) -> bool {
        !self.changed_insts && !self.changed_cfg
    }
}

/// Static invalidation matrix: can a non-clean run of `src` expose new
/// opportunities for `dst` on the same function?
///
/// Rows err conservative (`true`) unless there is an argument for `false`.
/// The arguments, per `false` row (see ARCHITECTURE.md "Optimization
/// scheduling" for the full table):
///
/// * **Dce / Adce** only delete instructions with zero uses (resp. no
///   transitive side-effecting use). Deletion cannot create constants to
///   fold (`InstCombine`, `Reassociate`, `Sccp`/`IpSccp`), cannot make a
///   loop-invariant computation appear (`Licm`), and cannot change which
///   scalars dominate (`Gvn` numbering keys never mention use counts) —
///   but deleting a load/store *use* of an alloca can make a slot
///   promotable (`Mem2Reg`, `Sroa`) and can kill the last load between two
///   stores (`Dse`), and `Gvn`'s `load_elim` availability walk sees the
///   deleted memory ops, so those edges stay `true`. Self-edges are
///   `false`: both run an internal fixpoint to closure.
/// * **Licm** moves instructions between blocks and LVN-dedups the
///   preheader — value-level rewrites (`true` into the dead-value passes,
///   `Gvn`, `Dse` via reordered memory ops, `InstCombine`, and itself) but
///   it never changes an alloca use's *kind* (`Mem2Reg`/`Sroa` classify
///   use shapes, which moves preserve; dedup replaces a duplicate with an
///   identical original, leaving shapes intact), creates no constants
///   (`Sccp`), and cannot make `(x∘c1)∘c2` match when it didn't
///   (`Reassociate` — a dedup swaps one instruction id for an identical
///   instruction).
/// * **Reassociate** rewrites `(x∘c1)∘c2` in place to `x∘(c1∘c2)` — pure
///   scalar restructuring: no memory ops touched (`Mem2Reg`, `Sroa`, `Dse`
///   stay clean), no constants materialize that sccp's lattice could use
///   that `InstCombine` wouldn't fold first, but the freed inner value can
///   become dead (`Dce`/`Adce`) and the new shape re-keys `Gvn` and chains
///   for another `InstCombine`/`Reassociate`/`Licm` look.
/// * **Dse** deletes dead stores and dead-slot accesses: deletion can
///   unblock promotion (a deleted store may have been the one storing an
///   alloca's pointer *as a value*, so `Mem2Reg` and `Sroa` stay `true`)
///   and feeds the dead-value passes, `Gvn`'s availability walk, `Licm`'s
///   loop-writes check, and itself — but it creates no scalar structure
///   (`Reassociate`, `Sccp` stay `false`).
///
/// If a future pass invalidates these arguments, flip the edge to `true`;
/// the qc byte-identity suite (`sched_equiv.rs`) is the enforcement.
pub fn feeds(src: PassKind, dst: PassKind) -> bool {
    use PassKind::*;
    match src {
        // Structural rewriters: assume worst case.
        InstCombine | Gvn | Mem2Reg | Sroa | Sccp | IpSccp => true,
        Dce | Adce => matches!(dst, Gvn | Mem2Reg | Sroa | Dse),
        Licm => matches!(dst, InstCombine | Dce | Adce | Licm | Gvn | Dse),
        Reassociate => matches!(dst, InstCombine | Dce | Adce | Licm | Reassociate | Gvn),
        Dse => matches!(
            dst,
            InstCombine | Dce | Adce | Licm | Gvn | Mem2Reg | Sroa | Dse
        ),
    }
}

/// Per-function scheduling state: which passes must still run, plus the
/// function's analysis cache.
#[derive(Debug, Default)]
pub struct FuncState {
    dirty: [bool; NPASS],
    /// Lazily built analyses, threaded through every pass invocation on
    /// this function and invalidated by reported effects.
    pub analyses: Analyses,
}

impl FuncState {
    /// Fresh state: every pass is dirty (must run at least once).
    pub fn new() -> FuncState {
        FuncState {
            dirty: [true; NPASS],
            analyses: Analyses::new(),
        }
    }

    /// Whether pass `p` has pending work on this function.
    pub fn should_run(&self, p: PassKind) -> bool {
        self.dirty[pass_index(p)]
    }

    /// Records that `p` ran with effect `eff`: clears `p`'s dirty bit
    /// (and its twin's — `Sccp` and `IpSccp` dispatch to the same
    /// per-function computation, so either run discharges both), then
    /// re-dirties every pass `q` with `feeds(p, q)` if the run mutated.
    pub fn note_ran(&mut self, p: PassKind, eff: &PassEffect) {
        self.dirty[pass_index(p)] = false;
        match p {
            PassKind::Sccp => self.dirty[pass_index(PassKind::IpSccp)] = false,
            PassKind::IpSccp => self.dirty[pass_index(PassKind::Sccp)] = false,
            _ => {}
        }
        if !eff.is_clean() {
            for (qi, q) in PassKind::ALL.iter().enumerate() {
                if feeds(p, *q) {
                    self.dirty[qi] = true;
                }
            }
            // A mutating pass never discharges itself unless its own
            // self-edge is false (Dce/Adce run to internal fixpoint).
        }
    }

    /// An external mutation (ipSCCP fact substitution) touched the
    /// function: everything must be reconsidered, and cached analyses are
    /// stale.
    pub fn note_external_change(&mut self) {
        self.dirty = [true; NPASS];
        self.analyses.invalidate_all();
    }

    /// Whether every pass has run clean: the function is converged and
    /// whole rounds over it can be skipped.
    pub fn is_converged(&self) -> bool {
        self.dirty.iter().all(|d| !d)
    }
}

/// Scheduler counters. All are jobs-invariant (scheduling depends only on
/// per-function results) and reconcile with the blind driver:
/// `ran + skipped == 13 × nfuncs × rounds`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Total reported changes (the legacy `standard_pipeline` return).
    pub changes: usize,
    /// (function, pass-slot) pairs actually executed.
    pub ran: u64,
    /// (function, pass-slot) pairs skipped as provably clean.
    pub skipped: u64,
    /// Function-rounds fully skipped because the function was converged
    /// at round start.
    pub retired: u64,
    /// Rounds executed (matches the blind driver's round count).
    pub rounds: u64,
    /// Functions compacted at pipeline end.
    pub compacted: u64,
    /// Functions whose `compact()` was skipped as a provable no-op.
    pub compact_skipped: u64,
}

/// Number of changes-per-invocation histogram buckets
/// (see [`hist_bucket`]).
pub const HIST_BUCKETS: usize = 5;

/// Maps a pass invocation's reported change count to its histogram
/// bucket: `0`, `1`, `2–3`, `4–7`, `≥8`.
pub fn hist_bucket(changes: usize) -> usize {
    match changes {
        0 => 0,
        1 => 1,
        2..=3 => 2,
        4..=7 => 3,
        _ => 4,
    }
}

impl SchedStats {
    /// Accumulates `other` into `self` (for merging per-shard stats).
    pub fn merge(&mut self, other: &SchedStats) {
        self.changes += other.changes;
        self.ran += other.ran;
        self.skipped += other.skipped;
        self.retired += other.retired;
        self.rounds = self.rounds.max(other.rounds);
        self.compacted += other.compacted;
        self.compact_skipped += other.compact_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_index_covers_all() {
        for (i, p) in PassKind::ALL.iter().enumerate() {
            assert_eq!(pass_index(*p), i);
        }
    }

    #[test]
    fn clean_run_clears_dirty_bit() {
        let mut st = FuncState::new();
        assert!(st.should_run(PassKind::Dce));
        st.note_ran(PassKind::Dce, &PassEffect::clean());
        assert!(!st.should_run(PassKind::Dce));
    }

    #[test]
    fn sccp_and_ipsccp_are_twins() {
        let mut st = FuncState::new();
        st.note_ran(PassKind::Sccp, &PassEffect::clean());
        assert!(!st.should_run(PassKind::IpSccp));
        let mut st = FuncState::new();
        st.note_ran(PassKind::IpSccp, &PassEffect::clean());
        assert!(!st.should_run(PassKind::Sccp));
    }

    #[test]
    fn mutation_redirties_fed_passes_only() {
        let mut st = FuncState::new();
        // Run everything clean first.
        for p in PassKind::ALL {
            st.note_ran(p, &PassEffect::clean());
        }
        assert!(st.is_converged());
        // A mutating Dce re-dirties exactly its fed set.
        st.note_ran(PassKind::Dce, &PassEffect::insts(1));
        for q in PassKind::ALL {
            assert_eq!(
                st.should_run(q),
                feeds(PassKind::Dce, q),
                "dirty({q:?}) after mutating Dce"
            );
        }
    }

    #[test]
    fn dce_self_edge_is_false_structural_rewriters_worst_case() {
        assert!(!feeds(PassKind::Dce, PassKind::Dce));
        assert!(!feeds(PassKind::Adce, PassKind::Adce));
        for q in PassKind::ALL {
            assert!(feeds(PassKind::InstCombine, q));
            assert!(feeds(PassKind::Sccp, q));
            assert!(feeds(PassKind::Gvn, q));
            assert!(feeds(PassKind::Mem2Reg, q));
            assert!(feeds(PassKind::Sroa, q));
            assert!(feeds(PassKind::IpSccp, q));
        }
    }

    #[test]
    fn sccp_and_ipsccp_matrix_columns_match() {
        // note_ran clears both twins at once, which is only sound if every
        // row dirties them in lockstep.
        for p in PassKind::ALL {
            assert_eq!(
                feeds(p, PassKind::Sccp),
                feeds(p, PassKind::IpSccp),
                "{p:?}"
            );
        }
    }

    #[test]
    fn external_change_dirties_everything() {
        let mut st = FuncState::new();
        for p in PassKind::ALL {
            st.note_ran(p, &PassEffect::clean());
        }
        st.note_external_change();
        for p in PassKind::ALL {
            assert!(st.should_run(p));
        }
    }
}
