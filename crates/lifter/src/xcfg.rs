//! Machine-level CFG reconstruction (paper §4, "CFG Construction").
//!
//! Decodes a function's byte range into instructions and rebuilds basic
//! blocks from branch targets — the `MCInst → MachineInstr` step of the
//! mctoll pipeline Figure 4 describes.

use lasagne_x86::decode::{decode_all, Decoded};
use lasagne_x86::inst::{Inst, Target};
use std::collections::BTreeSet;

/// Errors during machine-level CFG reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// Decoding failed.
    Decode(lasagne_x86::DecodeError),
    /// A branch targets an address outside the function.
    BranchOutOfFunction {
        /// Branch instruction address.
        at: u64,
        /// Target address.
        target: u64,
    },
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfgError::Decode(e) => write!(f, "decode error: {e}"),
            CfgError::BranchOutOfFunction { at, target } => {
                write!(f, "branch at {at:#x} leaves the function (to {target:#x})")
            }
        }
    }
}

impl std::error::Error for CfgError {}

impl From<lasagne_x86::DecodeError> for CfgError {
    fn from(e: lasagne_x86::DecodeError) -> CfgError {
        CfgError::Decode(e)
    }
}

/// A machine basic block.
#[derive(Debug, Clone)]
pub struct XBlock {
    /// Address of the first instruction.
    pub start: u64,
    /// Instructions, terminator (if any) included as the last element.
    pub insts: Vec<Decoded>,
    /// Successor block start addresses, in branch order
    /// (`[taken, fallthrough]` for conditional jumps).
    pub succs: Vec<u64>,
}

/// A function-level machine CFG.
#[derive(Debug, Clone)]
pub struct XCfg {
    /// Entry address.
    pub entry: u64,
    /// Blocks sorted by start address.
    pub blocks: Vec<XBlock>,
}

impl XCfg {
    /// Index of the block starting at `addr`.
    pub fn block_index(&self, addr: u64) -> Option<usize> {
        self.blocks.iter().position(|b| b.start == addr)
    }
}

/// Reconstructs the CFG of one function from its machine code.
///
/// `base` is the address of `bytes[0]` (the function entry).
///
/// # Errors
///
/// Fails on undecodable bytes or branches that leave the function body.
/// Unconditional jumps to *other functions* are accepted as tail calls
/// when `is_call_target(t)` holds (see [`build_xcfg_with`]); the plain
/// [`build_xcfg`] rejects them.
pub fn build_xcfg(bytes: &[u8], base: u64) -> Result<XCfg, CfgError> {
    build_xcfg_with(bytes, base, |_| false)
}

/// [`build_xcfg`] with a predicate identifying addresses that are valid
/// tail-call targets (entry points of other functions or extern stubs).
/// A `jmp` to such an address terminates its block like a `ret`; the
/// translator lowers it as call-then-return (one of the paper's §4 mctoll
/// contributions).
///
/// # Errors
///
/// See [`build_xcfg`].
pub fn build_xcfg_with(
    bytes: &[u8],
    base: u64,
    is_call_target: impl Fn(u64) -> bool,
) -> Result<XCfg, CfgError> {
    let decoded = decode_all(bytes, base)?;
    let end = base + bytes.len() as u64;

    // Pass 1: leaders = entry, branch targets, instruction after a terminator.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(base);
    for d in &decoded {
        match d.inst {
            Inst::Jmp {
                target: Target::Abs(t),
            }
            | Inst::Jcc {
                target: Target::Abs(t),
                ..
            } => {
                if t < base || t >= end {
                    let tail_call = matches!(d.inst, Inst::Jmp { .. }) && is_call_target(t);
                    if !tail_call {
                        return Err(CfgError::BranchOutOfFunction {
                            at: d.addr,
                            target: t,
                        });
                    }
                    leaders.insert(d.addr + d.len as u64);
                    continue;
                }
                leaders.insert(t);
                leaders.insert(d.addr + d.len as u64);
            }
            Inst::Ret | Inst::Ud2 | Inst::Jmp { .. } => {
                leaders.insert(d.addr + d.len as u64);
            }
            _ => {}
        }
    }
    leaders.retain(|l| *l < end);

    // Pass 2: slice instruction stream into blocks.
    let mut blocks: Vec<XBlock> = Vec::new();
    let mut cur: Option<XBlock> = None;
    for d in decoded {
        if leaders.contains(&d.addr) {
            if let Some(b) = cur.take() {
                blocks.push(b);
            }
            cur = Some(XBlock {
                start: d.addr,
                insts: Vec::new(),
                succs: Vec::new(),
            });
        }
        let b = cur.as_mut().expect("instruction before entry leader");
        b.insts.push(d);
    }
    if let Some(b) = cur.take() {
        blocks.push(b);
    }

    // Pass 3: successor edges.
    let starts: Vec<u64> = blocks.iter().map(|b| b.start).collect();
    for b in &mut blocks {
        let last = b.insts.last().expect("empty block");
        let next = last.addr + last.len as u64;
        match last.inst {
            Inst::Jmp {
                target: Target::Abs(t),
            } => {
                if t >= base && t < end {
                    b.succs.push(t);
                }
                // Out-of-function: a tail call, no intra-function successor.
            }
            Inst::Jcc {
                cc: _,
                target: Target::Abs(t),
            } => {
                b.succs.push(t);
                if next < end {
                    b.succs.push(next);
                }
            }
            Inst::Ret
            | Inst::Ud2
            | Inst::Jmp {
                target: Target::Indirect(_),
            } => {}
            _ => {
                // Fallthrough into the next leader.
                if next < end && starts.contains(&next) {
                    b.succs.push(next);
                }
            }
        }
    }

    Ok(XCfg {
        entry: base,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_x86::asm::Asm;
    use lasagne_x86::inst::{AluOp, Inst, Rm};
    use lasagne_x86::reg::{Cond, Gpr, Width};

    /// Simple counted loop: entry, loop body, exit.
    fn loop_bytes(base: u64) -> Vec<u8> {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 10,
        });
        a.bind(top);
        a.push(Inst::AluRmI {
            op: AluOp::Sub,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.jcc(Cond::Ne, top);
        a.jmp(done);
        a.bind(done);
        a.push(Inst::Ret);
        a.finish(base).unwrap()
    }

    #[test]
    fn loop_cfg_shape() {
        let base = 0x40_1000;
        let cfg = build_xcfg(&loop_bytes(base), base).unwrap();
        assert_eq!(cfg.entry, base);
        // entry block, loop block, jmp block, ret block
        assert_eq!(cfg.blocks.len(), 4);
        let loop_block = &cfg.blocks[1];
        assert_eq!(loop_block.succs.len(), 2);
        assert_eq!(loop_block.succs[0], loop_block.start, "back edge to itself");
    }

    #[test]
    fn straightline_single_block() {
        let mut a = Asm::new();
        a.push(Inst::Nop);
        a.push(Inst::Nop);
        a.push(Inst::Ret);
        let bytes = a.finish(0).unwrap();
        let cfg = build_xcfg(&bytes, 0).unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert_eq!(cfg.blocks[0].insts.len(), 3);
    }

    #[test]
    fn out_of_function_branch_rejected() {
        let mut v = Vec::new();
        lasagne_x86::encode(
            &Inst::Jmp {
                target: lasagne_x86::inst::Target::Abs(0x9999),
            },
            0x100,
            &mut v,
        )
        .unwrap();
        let err = build_xcfg(&v, 0x100).unwrap_err();
        assert!(matches!(err, CfgError::BranchOutOfFunction { .. }));
    }

    #[test]
    fn fallthrough_edge() {
        // cmp; jcc over one instruction; fallthrough block must link onward.
        let mut a = Asm::new();
        let skip = a.label();
        a.push(Inst::Test {
            w: Width::W64,
            a: Rm::Reg(Gpr::Rdi),
            b: Gpr::Rdi,
        });
        a.jcc(Cond::E, skip);
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.bind(skip);
        a.push(Inst::Ret);
        let bytes = a.finish(0x2000).unwrap();
        let cfg = build_xcfg(&bytes, 0x2000).unwrap();
        assert_eq!(cfg.blocks.len(), 3);
        // middle block falls through to the ret block
        assert_eq!(cfg.blocks[1].succs, vec![cfg.blocks[2].start]);
    }
}
