//! Function type discovery (paper §4.1).
//!
//! Derives each function's parameter list and return type from the System-V
//! calling convention: parameter registers that are live at entry become
//! parameters; a return register (`RAX`/`XMM0`) that is defined on every
//! path to every `ret` becomes the return type. SSE register types are
//! derived from the instructions using them (scalar single/double vs packed,
//! §4.1 "Type Discovery").

use crate::liveness::{self, RegSet};
use crate::xcfg::XCfg;
use lasagne_lir::types::Ty;
use lasagne_x86::inst::{FpPrec, Inst, Target, XmmRm};
use lasagne_x86::reg::{Gpr, Xmm};
use std::collections::BTreeMap;

/// A discovered function signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncType {
    /// Parameter types: integer parameters first, then SSE parameters
    /// (the paper's §4.2.1 parameter-ordering assumption).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

impl FuncType {
    /// Signature with no parameters returning void.
    pub fn void() -> FuncType {
        FuncType {
            params: vec![],
            ret: Ty::Void,
        }
    }

    /// Number of integer parameters (passed in `RDI, RSI, …`).
    pub fn int_param_count(&self) -> usize {
        self.params
            .iter()
            .filter(|t| !t.is_float() && !t.is_vector())
            .count()
    }

    /// Number of SSE parameters (passed in `XMM0, XMM1, …`).
    pub fn sse_param_count(&self) -> usize {
        self.params.len() - self.int_param_count()
    }

    /// The registers a call to a function of this type reads.
    pub fn arg_regs(&self) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in Gpr::PARAMS.iter().take(self.int_param_count()) {
            s.add_gpr(*r);
        }
        for x in Xmm::PARAMS.iter().take(self.sse_param_count()) {
            s.add_xmm(*x);
        }
        s
    }
}

/// Known signatures by address: populated with extern (PLT stub) signatures
/// up front and with discovered function types as discovery proceeds
/// bottom-up over the call graph.
#[derive(Debug, Clone, Default)]
pub struct SigTable {
    map: BTreeMap<u64, FuncType>,
}

impl SigTable {
    /// Empty table.
    pub fn new() -> SigTable {
        SigTable::default()
    }

    /// Registers the signature of the code at `addr`.
    pub fn insert(&mut self, addr: u64, ty: FuncType) {
        self.map.insert(addr, ty);
    }

    /// Signature lookup.
    pub fn get(&self, addr: u64) -> Option<&FuncType> {
        self.map.get(&addr)
    }
}

/// Scans the function for the first instruction that tells us how an XMM
/// register is interpreted (scalar single/double or packed), per §4.1.
fn xmm_type(cfg: &XCfg, x: Xmm) -> Ty {
    for b in &cfg.blocks {
        for d in &b.insts {
            let ty = match d.inst {
                Inst::SseScalar { prec, dst, src, .. } | Inst::MovssLoad { prec, dst, src } => {
                    if dst == x || src == XmmRm::Reg(x) {
                        Some(scalar_ty(prec))
                    } else {
                        None
                    }
                }
                Inst::CvtF2F { to, dst, src } => {
                    // The destination has precision `to`; the source has the
                    // opposite precision.
                    if dst == x {
                        Some(scalar_ty(to))
                    } else if src == XmmRm::Reg(x) {
                        Some(scalar_ty(match to {
                            FpPrec::Double => FpPrec::Single,
                            FpPrec::Single => FpPrec::Double,
                        }))
                    } else {
                        None
                    }
                }
                Inst::MovssStore { prec, src, .. } => {
                    if src == x {
                        Some(scalar_ty(prec))
                    } else {
                        None
                    }
                }
                Inst::Ucomis { prec, a, b } => {
                    if a == x || b == XmmRm::Reg(x) {
                        Some(scalar_ty(prec))
                    } else {
                        None
                    }
                }
                Inst::CvtF2Si { prec, src, .. } => {
                    if src == XmmRm::Reg(x) {
                        Some(scalar_ty(prec))
                    } else {
                        None
                    }
                }
                Inst::SsePacked { prec, dst, src, .. } => {
                    if dst == x || src == XmmRm::Reg(x) {
                        Some(if prec == FpPrec::Double {
                            Ty::V2F64
                        } else {
                            Ty::V4F32
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(t) = ty {
                return t;
            }
        }
    }
    Ty::F64
}

fn scalar_ty(p: FpPrec) -> Ty {
    if p == FpPrec::Double {
        Ty::F64
    } else {
        Ty::F32
    }
}

/// Discovers the signature of the function whose machine CFG is `cfg`,
/// consulting `sigs` for the argument registers of direct callees.
pub fn discover(cfg: &XCfg, sigs: &SigTable) -> FuncType {
    // Parameter discovery: live-at-entry ∩ parameter registers (§4.1).
    // (analyze_with also consults `sigs` for tail-call jumps.)
    let lv = liveness::analyze_with(cfg, |target| {
        sigs.get(target).map_or(RegSet::EMPTY, FuncType::arg_regs)
    });
    let entry_idx = cfg.block_index(cfg.entry).unwrap_or(0);
    let live = lv.live_in[entry_idx];

    // The ABI assigns registers contiguously, so the parameter count is
    // the highest-indexed live parameter register plus one. (A longest
    // live *prefix* would be wrong: a function that ignores its first
    // parameter — live-in {RSI} but not {RDI} — still has two parameters,
    // and truncating the list would make RSI read undef after lifting.)
    let n_int = Gpr::PARAMS
        .iter()
        .rposition(|r| live.has_gpr(*r))
        .map_or(0, |i| i + 1);
    let n_sse = Xmm::PARAMS
        .iter()
        .rposition(|x| live.has_xmm(*x))
        .map_or(0, |i| i + 1);

    let mut params: Vec<Ty> = vec![Ty::I64; n_int];
    for x in Xmm::PARAMS.iter().take(n_sse) {
        params.push(xmm_type(cfg, *x));
    }

    // Return discovery: forward must-define over RAX / XMM0 (§4.1 "Return
    // Type Discovery"): the return register must be defined on every path
    // into every exit block.
    let ret = ret_type(cfg, sigs);
    FuncType { params, ret }
}

fn ret_type(cfg: &XCfg, sigs: &SigTable) -> Ty {
    #[derive(Clone, Copy, PartialEq)]
    struct MustDef {
        rax: bool,
        xmm0: bool,
    }
    let n = cfg.blocks.len();
    // Per-block: does the block itself define rax/xmm0 (considering callee
    // return types for calls)?
    let mut block_def = vec![
        MustDef {
            rax: false,
            xmm0: false
        };
        n
    ];
    for (i, b) in cfg.blocks.iter().enumerate() {
        for d in &b.insts {
            match d.inst {
                Inst::Call {
                    target: Target::Abs(t),
                } => {
                    if let Some(sig) = sigs.get(t) {
                        if sig.ret.is_float() || sig.ret.is_vector() {
                            block_def[i].xmm0 = true;
                        } else if sig.ret != Ty::Void {
                            block_def[i].rax = true;
                        }
                    }
                }
                ref inst => {
                    let dfs = liveness::defs(inst);
                    if dfs.has_gpr(Gpr::Rax) {
                        block_def[i].rax = true;
                    }
                    if dfs.has_xmm(Xmm(0)) {
                        block_def[i].xmm0 = true;
                    }
                }
            }
        }
    }
    // Must-define dataflow: in = AND over preds of out; out = in OR block_def.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, b) in cfg.blocks.iter().enumerate() {
        for s in &b.succs {
            if let Some(j) = cfg.block_index(*s) {
                preds[j].push(i);
            }
        }
    }
    let entry_idx = cfg.block_index(cfg.entry).unwrap_or(0);
    let mut out = vec![
        MustDef {
            rax: true,
            xmm0: true
        };
        n
    ]; // ⊤ for iteration
    out[entry_idx] = block_def[entry_idx];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let inn = if i == entry_idx {
                MustDef {
                    rax: false,
                    xmm0: false,
                }
            } else if preds[i].is_empty() {
                MustDef {
                    rax: false,
                    xmm0: false,
                }
            } else {
                let mut acc = MustDef {
                    rax: true,
                    xmm0: true,
                };
                for &p in &preds[i] {
                    acc.rax &= out[p].rax;
                    acc.xmm0 &= out[p].xmm0;
                }
                acc
            };
            let new_out = MustDef {
                rax: inn.rax || block_def[i].rax,
                xmm0: inn.xmm0 || block_def[i].xmm0,
            };
            if new_out != out[i] {
                out[i] = new_out;
                changed = true;
            }
        }
    }
    // Exit blocks end in `ret` — or in a tail-call `jmp`, whose callee's
    // return defines the register.
    let mut all_rax = true;
    let mut all_xmm = true;
    let mut any_exit = false;
    for (i, b) in cfg.blocks.iter().enumerate() {
        match b.insts.last().map(|d| d.inst) {
            Some(Inst::Ret) => {
                any_exit = true;
                all_rax &= out[i].rax;
                all_xmm &= out[i].xmm0;
            }
            Some(Inst::Jmp {
                target: Target::Abs(t),
            }) if cfg.block_index(t).is_none() => {
                any_exit = true;
                let (mut rax, mut xmm) = (out[i].rax, out[i].xmm0);
                if let Some(sig) = sigs.get(t) {
                    if sig.ret.is_float() || sig.ret.is_vector() {
                        xmm = true;
                    } else if sig.ret != Ty::Void {
                        rax = true;
                    }
                }
                all_rax &= rax;
                all_xmm &= xmm;
            }
            _ => {}
        }
    }
    if !any_exit {
        return Ty::Void;
    }
    if all_xmm && !all_rax {
        // Only the FP register is consistently defined; derive its scalar
        // precision from how XMM0 is used.
        let t = xmm_type(cfg, Xmm(0));
        return if t == Ty::F32 { Ty::F32 } else { Ty::F64 };
    }
    if all_rax {
        return Ty::I64;
    }
    Ty::Void
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xcfg::build_xcfg;
    use lasagne_x86::asm::Asm;
    use lasagne_x86::inst::{AluOp, Inst, MemRef, Rm, SseOp};
    use lasagne_x86::reg::Width;

    fn discover_bytes(bytes: &[u8], base: u64) -> FuncType {
        let cfg = build_xcfg(bytes, base).unwrap();
        discover(&cfg, &SigTable::new())
    }

    #[test]
    fn two_int_params_int_return() {
        // f(rdi, rsi) = rdi + rsi
        let mut a = Asm::new();
        a.push(Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdi),
        });
        a.push(Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rsi),
        });
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.params, vec![Ty::I64, Ty::I64]);
        assert_eq!(t.ret, Ty::I64);
    }

    #[test]
    fn unused_leading_param_still_counted() {
        // f(rdi, rsi) = rsi — RDI is dead but RSI live, so the ABI still
        // assigned two integer parameter slots. Found by the three-way
        // differential oracle: the old longest-live-prefix rule discovered
        // zero parameters here and the lifted function read undef for RSI.
        let mut a = Asm::new();
        a.push(Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rsi),
        });
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.params, vec![Ty::I64, Ty::I64]);
        assert_eq!(t.ret, Ty::I64);
    }

    #[test]
    fn void_function() {
        // f(rdi): [rdi] = 1 (no return value)
        let mut a = Asm::new();
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Mem(MemRef::base(Gpr::Rdi)),
            imm: 1,
        });
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.params, vec![Ty::I64]);
        assert_eq!(t.ret, Ty::Void);
    }

    #[test]
    fn double_param_and_return() {
        // f(xmm0) = xmm0 + xmm0 (double)
        let mut a = Asm::new();
        a.push(Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(0)),
        });
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.params, vec![Ty::F64]);
        assert_eq!(t.ret, Ty::F64);
    }

    #[test]
    fn float_param_detected_as_single() {
        let mut a = Asm::new();
        a.push(Inst::SseScalar {
            op: SseOp::Mul,
            prec: FpPrec::Single,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(0)),
        });
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.params, vec![Ty::F32]);
    }

    #[test]
    fn mixed_params_int_first() {
        // f(rdi, xmm0): store xmm0 to [rdi]
        let mut a = Asm::new();
        a.push(Inst::MovssStore {
            prec: FpPrec::Double,
            dst: MemRef::base(Gpr::Rdi),
            src: Xmm(0),
        });
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.params, vec![Ty::I64, Ty::F64]);
        assert_eq!(t.ret, Ty::Void);
    }

    #[test]
    fn return_defined_on_all_paths() {
        // if (rdi) rax=1 else rax=2; ret  — returns i64
        let mut a = Asm::new();
        let els = a.label();
        let out = a.label();
        a.push(Inst::Test {
            w: Width::W64,
            a: Rm::Reg(Gpr::Rdi),
            b: Gpr::Rdi,
        });
        a.jcc(lasagne_x86::reg::Cond::E, els);
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.jmp(out);
        a.bind(els);
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 2,
        });
        a.bind(out);
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.ret, Ty::I64);
    }

    #[test]
    fn return_defined_on_one_path_only_is_void() {
        // if (rdi) rax=1; ret — not consistently defined ⇒ void
        let mut a = Asm::new();
        let out = a.label();
        a.push(Inst::Test {
            w: Width::W64,
            a: Rm::Reg(Gpr::Rdi),
            b: Gpr::Rdi,
        });
        a.jcc(lasagne_x86::reg::Cond::E, out);
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.bind(out);
        a.push(Inst::Ret);
        let t = discover_bytes(&a.finish(0).unwrap(), 0);
        assert_eq!(t.ret, Ty::Void);
    }

    #[test]
    fn callee_signature_informs_param_use() {
        // f(rdi): call g(rdi); ret — with g: (i64) -> i64 registered, only
        // rdi should be a parameter even though the call site exists.
        let mut sigs = SigTable::new();
        sigs.insert(
            0x5000,
            FuncType {
                params: vec![Ty::I64],
                ret: Ty::I64,
            },
        );
        let mut a = Asm::new();
        a.push(Inst::Call {
            target: Target::Abs(0x5000),
        });
        a.push(Inst::Ret);
        let bytes = a.finish(0).unwrap();
        let cfg = build_xcfg(&bytes, 0).unwrap();
        let t = discover(&cfg, &sigs);
        assert_eq!(t.params, vec![Ty::I64]);
        assert_eq!(t.ret, Ty::I64, "rax defined by g's return");
    }
}
