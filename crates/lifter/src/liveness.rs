//! Register use/def sets and live-variable analysis over the machine CFG.
//!
//! Used by function type discovery (paper §4.1): a System-V parameter
//! register that is live at function entry (read before written) is a
//! parameter.

use crate::xcfg::XCfg;
use lasagne_x86::inst::{Inst, MemRef, Rm, Target, XmmRm};
use lasagne_x86::reg::{Gpr, Xmm};

/// A set of machine registers (16 GPRs + 16 XMMs) as bitmasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet {
    /// GPR bits, indexed by encoding.
    pub gpr: u16,
    /// XMM bits, indexed by encoding.
    pub xmm: u16,
}

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet { gpr: 0, xmm: 0 };

    /// Adds a GPR.
    pub fn add_gpr(&mut self, r: Gpr) {
        self.gpr |= 1 << r.encoding();
    }

    /// Adds an XMM register.
    pub fn add_xmm(&mut self, x: Xmm) {
        self.xmm |= 1 << x.encoding();
    }

    /// Membership test for a GPR.
    pub fn has_gpr(self, r: Gpr) -> bool {
        self.gpr & (1 << r.encoding()) != 0
    }

    /// Membership test for an XMM register.
    pub fn has_xmm(self, x: Xmm) -> bool {
        self.xmm & (1 << x.encoding()) != 0
    }

    /// Set union.
    pub fn union(self, o: RegSet) -> RegSet {
        RegSet {
            gpr: self.gpr | o.gpr,
            xmm: self.xmm | o.xmm,
        }
    }

    /// Set difference.
    pub fn minus(self, o: RegSet) -> RegSet {
        RegSet {
            gpr: self.gpr & !o.gpr,
            xmm: self.xmm & !o.xmm,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.gpr == 0 && self.xmm == 0
    }
}

fn mem_uses(m: &MemRef, s: &mut RegSet) {
    if let Some(b) = m.base {
        s.add_gpr(b);
    }
    if let Some(i) = m.index {
        s.add_gpr(i);
    }
}

fn rm_uses(rm: &Rm, s: &mut RegSet) {
    match rm {
        Rm::Reg(r) => s.add_gpr(*r),
        Rm::Mem(m) => mem_uses(m, s),
    }
}

fn xrm_uses(rm: &XmmRm, s: &mut RegSet) {
    match rm {
        XmmRm::Reg(x) => s.add_xmm(*x),
        XmmRm::Mem(m) => mem_uses(m, s),
    }
}

/// Registers read by `inst` (memory operand address registers count as
/// reads).
pub fn uses(inst: &Inst) -> RegSet {
    let mut s = RegSet::EMPTY;
    match inst {
        Inst::MovRRm { src, .. } => rm_uses(src, &mut s),
        Inst::MovRmR { dst, src, .. } => {
            s.add_gpr(*src);
            if let Rm::Mem(m) = dst {
                mem_uses(m, &mut s);
            }
        }
        Inst::MovRmI { dst, .. } => {
            if let Rm::Mem(m) = dst {
                mem_uses(m, &mut s);
            }
        }
        Inst::MovAbs { .. } => {}
        Inst::MovZx { src, .. } | Inst::MovSx { src, .. } => rm_uses(src, &mut s),
        Inst::Lea { addr, .. } => mem_uses(addr, &mut s),
        Inst::AluRRm { dst, src, .. } => {
            s.add_gpr(*dst);
            rm_uses(src, &mut s);
        }
        Inst::AluRmR { dst, src, .. } => {
            s.add_gpr(*src);
            rm_uses(dst, &mut s);
        }
        Inst::AluRmI { dst, .. }
        | Inst::ShiftI { dst, .. }
        | Inst::Neg { dst, .. }
        | Inst::Not { dst, .. } => rm_uses(dst, &mut s),
        Inst::ShiftCl { dst, .. } => {
            s.add_gpr(Gpr::Rcx);
            rm_uses(dst, &mut s);
        }
        Inst::Test { a, b, .. } => {
            s.add_gpr(*b);
            rm_uses(a, &mut s);
        }
        Inst::TestI { a, .. } => rm_uses(a, &mut s),
        Inst::IMul2 { dst, src, .. } => {
            s.add_gpr(*dst);
            rm_uses(src, &mut s);
        }
        Inst::IMul3 { src, .. } => rm_uses(src, &mut s),
        Inst::MulDiv { src, .. } => {
            s.add_gpr(Gpr::Rax);
            s.add_gpr(Gpr::Rdx);
            rm_uses(src, &mut s);
        }
        Inst::Cqo { .. } => s.add_gpr(Gpr::Rax),
        Inst::Push { src } => {
            s.add_gpr(*src);
            s.add_gpr(Gpr::Rsp);
        }
        Inst::Pop { .. } => s.add_gpr(Gpr::Rsp),
        Inst::Jmp { target } | Inst::Call { target } => {
            if let Target::Indirect(r) = target {
                s.add_gpr(*r);
            }
            if matches!(inst, Inst::Call { .. }) {
                // Conservatively, calls read all parameter registers.
                for r in Gpr::PARAMS {
                    s.add_gpr(r);
                }
                for x in Xmm::PARAMS {
                    s.add_xmm(x);
                }
            }
        }
        // `ret` does NOT count as a use of RAX/XMM0 here: return-type
        // discovery is a separate must-define analysis (see `typedisc`), and
        // treating `ret` as a reader would make XMM0 spuriously live at
        // entry of every void function, inventing a float parameter.
        Inst::Jcc { .. } | Inst::Ret | Inst::Nop | Inst::Ud2 | Inst::Mfence => {}
        Inst::Setcc { dst, .. } => {
            if let Rm::Mem(m) = dst {
                mem_uses(m, &mut s);
            }
        }
        Inst::Cmovcc { dst, src, .. } => {
            s.add_gpr(*dst);
            rm_uses(src, &mut s);
        }
        Inst::MovssLoad { src, .. } => xrm_uses(src, &mut s),
        Inst::MovssStore { dst, src, .. } => {
            s.add_xmm(*src);
            mem_uses(dst, &mut s);
        }
        Inst::MovapsLoad { src, .. } => xrm_uses(src, &mut s),
        Inst::MovapsStore { dst, src, .. } => {
            s.add_xmm(*src);
            mem_uses(dst, &mut s);
        }
        Inst::MovXmmToGpr { src, .. } => s.add_xmm(*src),
        Inst::MovGprToXmm { src, .. } => s.add_gpr(*src),
        Inst::SseScalar { dst, src, .. } | Inst::SsePacked { dst, src, .. } => {
            s.add_xmm(*dst);
            xrm_uses(src, &mut s);
        }
        Inst::Xorps { dst, src } => {
            // xorps x, x is an idiomatic zeroing: no real use of x.
            if *src != XmmRm::Reg(*dst) {
                s.add_xmm(*dst);
                xrm_uses(src, &mut s);
            }
        }
        Inst::Ucomis { a, b, .. } => {
            s.add_xmm(*a);
            xrm_uses(b, &mut s);
        }
        Inst::CvtSi2F { src, .. } => rm_uses(src, &mut s),
        Inst::CvtF2Si { src, .. } | Inst::CvtF2F { src, .. } => xrm_uses(src, &mut s),
        Inst::LockCmpxchg { mem, src, .. } => {
            s.add_gpr(Gpr::Rax);
            s.add_gpr(*src);
            mem_uses(mem, &mut s);
        }
        Inst::LockXadd { mem, src, .. } | Inst::Xchg { mem, src, .. } => {
            s.add_gpr(*src);
            mem_uses(mem, &mut s);
        }
        Inst::LockAddI { mem, .. } => mem_uses(mem, &mut s),
    }
    s
}

/// Registers written by `inst`.
pub fn defs(inst: &Inst) -> RegSet {
    let mut s = RegSet::EMPTY;
    match inst {
        Inst::MovRRm { dst, .. }
        | Inst::MovZx { dst, .. }
        | Inst::MovSx { dst, .. }
        | Inst::Lea { dst, .. }
        | Inst::MovAbs { dst, .. }
        | Inst::IMul2 { dst, .. }
        | Inst::IMul3 { dst, .. }
        | Inst::Cmovcc { dst, .. } => s.add_gpr(*dst),
        Inst::MovRmR { dst, .. }
        | Inst::MovRmI { dst, .. }
        | Inst::AluRmI { dst, .. }
        | Inst::ShiftI { dst, .. }
        | Inst::ShiftCl { dst, .. }
        | Inst::Neg { dst, .. }
        | Inst::Not { dst, .. }
        | Inst::Setcc { dst, .. } => {
            if let Rm::Reg(r) = dst {
                s.add_gpr(*r);
            }
        }
        Inst::AluRRm { op, dst, .. } => {
            if op.writes_dst() {
                s.add_gpr(*dst);
            }
        }
        Inst::AluRmR { op, dst, .. } => {
            if op.writes_dst() {
                if let Rm::Reg(r) = dst {
                    s.add_gpr(*r);
                }
            }
        }
        Inst::MulDiv { .. } => {
            s.add_gpr(Gpr::Rax);
            s.add_gpr(Gpr::Rdx);
        }
        Inst::Cqo { .. } => s.add_gpr(Gpr::Rdx),
        Inst::Push { .. } => s.add_gpr(Gpr::Rsp),
        Inst::Pop { dst } => {
            s.add_gpr(*dst);
            s.add_gpr(Gpr::Rsp);
        }
        Inst::Call { .. } => {
            // System-V caller-saved registers are clobbered.
            for r in [
                Gpr::Rax,
                Gpr::Rcx,
                Gpr::Rdx,
                Gpr::Rsi,
                Gpr::Rdi,
                Gpr::R8,
                Gpr::R9,
                Gpr::R10,
                Gpr::R11,
            ] {
                s.add_gpr(r);
            }
            for x in 0..16 {
                s.add_xmm(Xmm(x));
            }
        }
        Inst::MovssLoad { dst, .. }
        | Inst::MovapsLoad { dst, .. }
        | Inst::SseScalar { dst, .. }
        | Inst::SsePacked { dst, .. }
        | Inst::Xorps { dst, .. }
        | Inst::CvtSi2F { dst, .. }
        | Inst::CvtF2F { dst, .. }
        | Inst::MovGprToXmm { dst, .. } => s.add_xmm(*dst),
        Inst::MovXmmToGpr { dst, .. } | Inst::CvtF2Si { dst, .. } => s.add_gpr(*dst),
        Inst::LockCmpxchg { .. } => s.add_gpr(Gpr::Rax),
        Inst::LockXadd { src, .. } | Inst::Xchg { src, .. } => s.add_gpr(*src),
        _ => {}
    }
    s
}

/// Per-block liveness results.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block (indexed like `XCfg::blocks`).
    pub live_in: Vec<RegSet>,
    /// Registers live on exit of each block.
    pub live_out: Vec<RegSet>,
}

/// Computes classic backward liveness over the machine CFG.
///
/// Calls are treated conservatively (reading every parameter register); use
/// [`analyze_with`] to supply precise per-callee argument registers.
pub fn analyze(cfg: &XCfg) -> Liveness {
    analyze_with(cfg, |_| {
        let mut s = RegSet::EMPTY;
        for r in Gpr::PARAMS {
            s.add_gpr(r);
        }
        for x in Xmm::PARAMS {
            s.add_xmm(x);
        }
        s
    })
}

/// Liveness with a callback giving the registers a direct call to `addr`
/// actually reads (derived from already-discovered callee signatures).
pub fn analyze_with(cfg: &XCfg, call_uses: impl Fn(u64) -> RegSet) -> Liveness {
    let n = cfg.blocks.len();
    // gen = used before defined in block; kill = defined in block.
    let mut gen = vec![RegSet::EMPTY; n];
    let mut kill = vec![RegSet::EMPTY; n];
    for (i, b) in cfg.blocks.iter().enumerate() {
        for d in &b.insts {
            let u = match d.inst {
                Inst::Call {
                    target: Target::Abs(t),
                } => call_uses(t),
                // A tail-call jmp reads the callee's argument registers.
                Inst::Jmp {
                    target: Target::Abs(t),
                } if cfg.blocks.iter().all(|b| b.start != t) => call_uses(t),
                _ => uses(&d.inst),
            };
            gen[i] = gen[i].union(u.minus(kill[i]));
            kill[i] = kill[i].union(defs(&d.inst));
        }
    }
    let index_of = |addr: u64| cfg.blocks.iter().position(|b| b.start == addr);
    let mut live_in = vec![RegSet::EMPTY; n];
    let mut live_out = vec![RegSet::EMPTY; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out = RegSet::EMPTY;
            for succ in &cfg.blocks[i].succs {
                if let Some(j) = index_of(*succ) {
                    out = out.union(live_in[j]);
                }
            }
            let inn = gen[i].union(out.minus(kill[i]));
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xcfg::build_xcfg;
    use lasagne_x86::asm::Asm;
    use lasagne_x86::inst::{AluOp, Inst, MemRef, Rm};
    use lasagne_x86::reg::{Cond, Width};

    #[test]
    fn use_def_basics() {
        let add = Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rcx, 8, 0)),
        };
        let u = uses(&add);
        assert!(u.has_gpr(Gpr::Rax) && u.has_gpr(Gpr::Rdi) && u.has_gpr(Gpr::Rcx));
        assert!(defs(&add).has_gpr(Gpr::Rax));

        let cmp = Inst::AluRRm {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rbx),
        };
        assert!(defs(&cmp).is_empty(), "cmp writes no registers");
    }

    #[test]
    fn xor_zero_idiom_has_no_use() {
        let x = Inst::Xorps {
            dst: Xmm(1),
            src: XmmRm::Reg(Xmm(1)),
        };
        assert!(uses(&x).is_empty());
        assert!(defs(&x).has_xmm(Xmm(1)));
    }

    #[test]
    fn param_register_live_at_entry() {
        // f(rdi): rax = rdi + 1; ret
        let mut a = Asm::new();
        a.push(Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdi),
        });
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.push(Inst::Ret);
        let bytes = a.finish(0).unwrap();
        let cfg = build_xcfg(&bytes, 0).unwrap();
        let lv = analyze(&cfg);
        assert!(lv.live_in[0].has_gpr(Gpr::Rdi));
        assert!(!lv.live_in[0].has_gpr(Gpr::Rsi));
    }

    #[test]
    fn liveness_through_loop() {
        // loop decrementing rdi, reading rsi inside the loop
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.push(Inst::AluRRm {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rsi),
        });
        a.push(Inst::AluRmI {
            op: AluOp::Sub,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rdi),
            imm: 1,
        });
        a.jcc(Cond::Ne, top);
        a.push(Inst::Ret);
        let bytes = a.finish(0).unwrap();
        let cfg = build_xcfg(&bytes, 0).unwrap();
        let lv = analyze(&cfg);
        assert!(lv.live_in[0].has_gpr(Gpr::Rsi));
        assert!(lv.live_in[0].has_gpr(Gpr::Rdi));
        assert!(lv.live_in[0].has_gpr(Gpr::Rax), "rax read before written");
    }
}
