//! Instruction translation: machine CFG → LIR (paper §4.2).
//!
//! The translator is maximally naive, as a lifter must be to stay correct:
//! every register lives in a write-through stack slot (`alloca`), every
//! flag-setting instruction eagerly materialises CF/PF/ZF/SF/OF, all memory
//! addresses are computed as 64-bit integer arithmetic and converted with
//! `inttoptr` right before each access, and the x86 stack is reconstructed
//! as a byte-array `alloca` (§4.2.3). The resulting bloat is deliberate —
//! it is what the paper's Figure 16/17 measure — and is cleaned up by SSA
//! promotion (for GPR slots, mirroring mctoll's SSA output), the refinement
//! rules (§5), and the optimizer.

use crate::typedisc::FuncType;
use crate::xcfg::XCfg;
use lasagne_lir::func::Function;
use lasagne_lir::inst::{
    BinOp, Callee, CastOp, ExternId, FPred, FenceKind, FuncId, GlobalId, IPred, InstId, InstKind,
    Operand, Ordering, RmwOp, Terminator,
};
use lasagne_lir::types::{Pointee, Ty};
use lasagne_lir::BlockId;
use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, MulDivOp, Rm, ShiftOp, SseOp, Target, XmmRm};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};
use std::collections::{BTreeMap, BTreeSet};

/// Errors produced during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// An instruction shape the translator does not support.
    Unsupported(String),
    /// A direct call targets an address with no known symbol.
    UnknownCallTarget {
        /// Call site.
        at: u64,
        /// Target address.
        target: u64,
    },
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Unsupported(s) => write!(f, "unsupported: {s}"),
            TranslateError::UnknownCallTarget { at, target } => {
                write!(f, "call at {at:#x} to unknown target {target:#x}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Symbol environment the translator resolves addresses against.
#[derive(Debug, Clone, Default)]
pub struct SymbolEnv {
    /// Function entry address → (id, signature).
    pub funcs: BTreeMap<u64, (FuncId, FuncType)>,
    /// Extern stub address → (id, signature, variadic).
    pub externs: BTreeMap<u64, (ExternId, FuncType, bool)>,
    /// Global ranges: (start, size, id).
    pub globals: Vec<(u64, u64, GlobalId)>,
}

impl SymbolEnv {
    fn global_at(&self, addr: u64) -> Option<(GlobalId, u64)> {
        self.globals
            .iter()
            .find(|(start, size, _)| addr >= *start && addr < start + size)
            .map(|(start, _, id)| (*id, addr - start))
    }
}

/// Flag indices in the flag-slot table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fl {
    Cf = 0,
    Pf = 1,
    Zf = 2,
    Sf = 3,
    Of = 4,
}

/// Options controlling translation.
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// Bytes reserved for the reconstructed stack array (§4.2.3).
    pub stack_size: u64,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions { stack_size: 4096 }
    }
}

/// Result of translating one function.
pub struct Translated {
    /// The produced LIR function (registers still in slots; call
    /// [`promote_registers`] to obtain mctoll-style SSA output).
    pub func: Function,
    /// Instruction ids of the GPR slot allocas (promotion candidates).
    pub gpr_slots: Vec<InstId>,
}

/// Promotes the translator's GPR and flag slots to SSA — the lifter's
/// equivalent of mctoll's SSA value tracking (mctoll models registers and
/// EFLAGS as values, not memory). XMM slots are intentionally left in
/// memory for the downstream `sroa`/`mem2reg` passes to find (Figure 17).
pub fn promote_registers(t: &mut Translated) {
    let set: BTreeSet<InstId> = t.gpr_slots.iter().copied().collect();
    lasagne_lir::ssa::promote_allocas(&mut t.func, |_, id| set.contains(&id));
}

struct Tr<'a> {
    f: Function,
    env: &'a SymbolEnv,
    cur: BlockId,
    gpr_slot: [Option<InstId>; 16],
    xmm_slot: [Option<InstId>; 16],
    flag_slot: [Option<InstId>; 5],
    sqrt_ext: ExternId,
    /// Parameter registers written so far (variadic-call heuristic, §4.2.1).
    written_params: BTreeSet<Gpr>,
    /// Last constant moved into AL/EAX (SSE-count for variadic calls).
    al_const: Option<u8>,
    opts: TranslateOptions,
    gpr_slot_ids: Vec<InstId>,
}

const PTR_I8: Ty = Ty::Ptr(Pointee::I8);

fn width_ty(w: Width) -> Ty {
    match w {
        Width::W8 => Ty::I8,
        Width::W16 => Ty::I16,
        Width::W32 => Ty::I32,
        Width::W64 => Ty::I64,
    }
}

fn width_pointee(w: Width) -> Pointee {
    match w {
        Width::W8 => Pointee::I8,
        Width::W16 => Pointee::I16,
        Width::W32 => Pointee::I32,
        Width::W64 => Pointee::I64,
    }
}

fn cint(w: Width, v: i64) -> Operand {
    Operand::ConstInt {
        ty: width_ty(w),
        val: (v as u64) & w.mask(),
    }
}

impl<'a> Tr<'a> {
    fn emit(&mut self, ty: Ty, kind: InstKind) -> Operand {
        Operand::Inst(self.f.push(self.cur, ty, kind))
    }

    fn emit_void(&mut self, kind: InstKind) {
        self.f.push(self.cur, Ty::Void, kind);
    }

    // ---- register slots -------------------------------------------------

    fn gpr_slot(&mut self, r: Gpr) -> Operand {
        Operand::Inst(self.gpr_slot[r.encoding() as usize].expect("slot not preallocated"))
    }

    fn read_gpr64(&mut self, r: Gpr) -> Operand {
        let slot = self.gpr_slot(r);
        self.emit(
            Ty::I64,
            InstKind::Load {
                ptr: slot,
                order: Ordering::NotAtomic,
            },
        )
    }

    fn read_gpr(&mut self, r: Gpr, w: Width) -> Operand {
        let v = self.read_gpr64(r);
        if w == Width::W64 {
            v
        } else {
            self.emit(
                width_ty(w),
                InstKind::Cast {
                    op: CastOp::Trunc,
                    val: v,
                },
            )
        }
    }

    fn write_gpr(&mut self, r: Gpr, w: Width, v: Operand) {
        let v64 = match w {
            Width::W64 => v,
            // 32-bit writes zero the upper half (x86 semantics).
            Width::W32 => self.emit(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::ZExt,
                    val: v,
                },
            ),
            // 8/16-bit writes preserve the upper bits.
            Width::W8 | Width::W16 => {
                let old = self.read_gpr64(r);
                let keep = self.emit(
                    Ty::I64,
                    InstKind::Bin {
                        op: BinOp::And,
                        lhs: old,
                        rhs: Operand::i64(!(w.mask() as i64)),
                    },
                );
                let z = self.emit(
                    Ty::I64,
                    InstKind::Cast {
                        op: CastOp::ZExt,
                        val: v,
                    },
                );
                self.emit(
                    Ty::I64,
                    InstKind::Bin {
                        op: BinOp::Or,
                        lhs: keep,
                        rhs: z,
                    },
                )
            }
        };
        let slot = self.gpr_slot(r);
        self.emit_void(InstKind::Store {
            ptr: slot,
            val: v64,
            order: Ordering::NotAtomic,
        });
        if Gpr::PARAMS.contains(&r) {
            self.written_params.insert(r);
        }
    }

    // ---- flags -----------------------------------------------------------

    fn flag_slot(&mut self, fl: Fl) -> Operand {
        Operand::Inst(self.flag_slot[fl as usize].expect("flag slot not preallocated"))
    }

    fn read_flag(&mut self, fl: Fl) -> Operand {
        let slot = self.flag_slot(fl);
        self.emit(
            Ty::I1,
            InstKind::Load {
                ptr: slot,
                order: Ordering::NotAtomic,
            },
        )
    }

    fn write_flag(&mut self, fl: Fl, v: Operand) {
        let slot = self.flag_slot(fl);
        self.emit_void(InstKind::Store {
            ptr: slot,
            val: v,
            order: Ordering::NotAtomic,
        });
    }

    fn write_flag_const(&mut self, fl: Fl, v: bool) {
        self.write_flag(fl, Operand::bool(v));
    }

    fn not1(&mut self, v: Operand) -> Operand {
        self.emit(
            Ty::I1,
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: v,
                rhs: Operand::bool(true),
            },
        )
    }

    /// ZF/SF/PF from a result (common to all flag groups).
    fn set_zsp(&mut self, res: Operand, w: Width) {
        let zf = self.emit(
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Eq,
                lhs: res,
                rhs: cint(w, 0),
            },
        );
        self.write_flag(Fl::Zf, zf);
        let sf = self.emit(
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Slt,
                lhs: res,
                rhs: cint(w, 0),
            },
        );
        self.write_flag(Fl::Sf, sf);
        // Parity of the low byte, computed with shift/xor reduction — one of
        // the "more than one LLVM instruction" expansions of §4.2.
        let b = if w == Width::W8 {
            res
        } else {
            self.emit(
                Ty::I8,
                InstKind::Cast {
                    op: CastOp::Trunc,
                    val: res,
                },
            )
        };
        let s4 = self.emit(
            Ty::I8,
            InstKind::Bin {
                op: BinOp::LShr,
                lhs: b,
                rhs: cint(Width::W8, 4),
            },
        );
        let x4 = self.emit(
            Ty::I8,
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: b,
                rhs: s4,
            },
        );
        let s2 = self.emit(
            Ty::I8,
            InstKind::Bin {
                op: BinOp::LShr,
                lhs: x4,
                rhs: cint(Width::W8, 2),
            },
        );
        let x2 = self.emit(
            Ty::I8,
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: x4,
                rhs: s2,
            },
        );
        let s1 = self.emit(
            Ty::I8,
            InstKind::Bin {
                op: BinOp::LShr,
                lhs: x2,
                rhs: cint(Width::W8, 1),
            },
        );
        let x1 = self.emit(
            Ty::I8,
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: x2,
                rhs: s1,
            },
        );
        let low = self.emit(
            Ty::I8,
            InstKind::Bin {
                op: BinOp::And,
                lhs: x1,
                rhs: cint(Width::W8, 1),
            },
        );
        let pf = self.emit(
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Eq,
                lhs: low,
                rhs: cint(Width::W8, 0),
            },
        );
        self.write_flag(Fl::Pf, pf);
    }

    fn set_flags_logic(&mut self, res: Operand, w: Width) {
        self.write_flag_const(Fl::Cf, false);
        self.write_flag_const(Fl::Of, false);
        self.set_zsp(res, w);
    }

    fn set_flags_add(&mut self, a: Operand, b: Operand, res: Operand, w: Width) {
        let cf = self.emit(
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Ult,
                lhs: res,
                rhs: a,
            },
        );
        self.write_flag(Fl::Cf, cf);
        let t1 = self.emit(
            width_ty(w),
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: a,
                rhs: res,
            },
        );
        let t2 = self.emit(
            width_ty(w),
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: b,
                rhs: res,
            },
        );
        let t3 = self.emit(
            width_ty(w),
            InstKind::Bin {
                op: BinOp::And,
                lhs: t1,
                rhs: t2,
            },
        );
        let of = self.emit(
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Slt,
                lhs: t3,
                rhs: cint(w, 0),
            },
        );
        self.write_flag(Fl::Of, of);
        self.set_zsp(res, w);
    }

    fn set_flags_sub(&mut self, a: Operand, b: Operand, res: Operand, w: Width) {
        let cf = self.emit(
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Ult,
                lhs: a,
                rhs: b,
            },
        );
        self.write_flag(Fl::Cf, cf);
        let t1 = self.emit(
            width_ty(w),
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: a,
                rhs: b,
            },
        );
        let t2 = self.emit(
            width_ty(w),
            InstKind::Bin {
                op: BinOp::Xor,
                lhs: a,
                rhs: res,
            },
        );
        let t3 = self.emit(
            width_ty(w),
            InstKind::Bin {
                op: BinOp::And,
                lhs: t1,
                rhs: t2,
            },
        );
        let of = self.emit(
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Slt,
                lhs: t3,
                rhs: cint(w, 0),
            },
        );
        self.write_flag(Fl::Of, of);
        self.set_zsp(res, w);
    }

    fn cond_value(&mut self, cc: Cond) -> Operand {
        match cc {
            Cond::O => self.read_flag(Fl::Of),
            Cond::No => {
                let v = self.read_flag(Fl::Of);
                self.not1(v)
            }
            Cond::B => self.read_flag(Fl::Cf),
            Cond::Ae => {
                let v = self.read_flag(Fl::Cf);
                self.not1(v)
            }
            Cond::E => self.read_flag(Fl::Zf),
            Cond::Ne => {
                let v = self.read_flag(Fl::Zf);
                self.not1(v)
            }
            Cond::Be => {
                let c = self.read_flag(Fl::Cf);
                let z = self.read_flag(Fl::Zf);
                self.emit(
                    Ty::I1,
                    InstKind::Bin {
                        op: BinOp::Or,
                        lhs: c,
                        rhs: z,
                    },
                )
            }
            Cond::A => {
                let c = self.read_flag(Fl::Cf);
                let z = self.read_flag(Fl::Zf);
                let o = self.emit(
                    Ty::I1,
                    InstKind::Bin {
                        op: BinOp::Or,
                        lhs: c,
                        rhs: z,
                    },
                );
                self.not1(o)
            }
            Cond::S => self.read_flag(Fl::Sf),
            Cond::Ns => {
                let v = self.read_flag(Fl::Sf);
                self.not1(v)
            }
            Cond::P => self.read_flag(Fl::Pf),
            Cond::Np => {
                let v = self.read_flag(Fl::Pf);
                self.not1(v)
            }
            Cond::L => {
                let s = self.read_flag(Fl::Sf);
                let o = self.read_flag(Fl::Of);
                self.emit(
                    Ty::I1,
                    InstKind::ICmp {
                        pred: IPred::Ne,
                        lhs: s,
                        rhs: o,
                    },
                )
            }
            Cond::Ge => {
                let s = self.read_flag(Fl::Sf);
                let o = self.read_flag(Fl::Of);
                self.emit(
                    Ty::I1,
                    InstKind::ICmp {
                        pred: IPred::Eq,
                        lhs: s,
                        rhs: o,
                    },
                )
            }
            Cond::Le => {
                let s = self.read_flag(Fl::Sf);
                let o = self.read_flag(Fl::Of);
                let ne = self.emit(
                    Ty::I1,
                    InstKind::ICmp {
                        pred: IPred::Ne,
                        lhs: s,
                        rhs: o,
                    },
                );
                let z = self.read_flag(Fl::Zf);
                self.emit(
                    Ty::I1,
                    InstKind::Bin {
                        op: BinOp::Or,
                        lhs: z,
                        rhs: ne,
                    },
                )
            }
            Cond::G => {
                let s = self.read_flag(Fl::Sf);
                let o = self.read_flag(Fl::Of);
                let eq = self.emit(
                    Ty::I1,
                    InstKind::ICmp {
                        pred: IPred::Eq,
                        lhs: s,
                        rhs: o,
                    },
                );
                let z = self.read_flag(Fl::Zf);
                let nz = self.not1(z);
                self.emit(
                    Ty::I1,
                    InstKind::Bin {
                        op: BinOp::And,
                        lhs: nz,
                        rhs: eq,
                    },
                )
            }
        }
    }

    // ---- addresses & memory ----------------------------------------------

    /// The i64 value of an absolute address, resolving symbols.
    fn symbol_value(&mut self, addr: u64) -> Operand {
        if let Some((gid, off)) = self.env.global_at(addr) {
            let p = self.emit(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: Operand::Global(gid),
                },
            );
            if off == 0 {
                p
            } else {
                self.emit(
                    Ty::I64,
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: p,
                        rhs: Operand::i64(off as i64),
                    },
                )
            }
        } else if let Some((fid, _)) = self.env.funcs.get(&addr) {
            self.emit(
                Ty::I64,
                InstKind::Cast {
                    op: CastOp::PtrToInt,
                    val: Operand::Func(*fid),
                },
            )
        } else {
            Operand::i64(addr as i64)
        }
    }

    /// Computes the effective address of a memory operand as an i64 value —
    /// raw integer arithmetic, exactly as the machine does (§5 motivates why
    /// this must later be refined back into pointer form).
    fn addr_value(&mut self, m: &MemRef) -> Operand {
        if m.rip_relative {
            return self.symbol_value(m.disp as u64);
        }
        let mut acc: Option<Operand> = m.base.map(|b| self.read_gpr64(b));
        if let Some(i) = m.index {
            let mut idx = self.read_gpr64(i);
            if m.scale > 1 {
                idx = self.emit(
                    Ty::I64,
                    InstKind::Bin {
                        op: BinOp::Mul,
                        lhs: idx,
                        rhs: Operand::i64(i64::from(m.scale)),
                    },
                );
            }
            acc = Some(match acc {
                Some(a) => self.emit(
                    Ty::I64,
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: a,
                        rhs: idx,
                    },
                ),
                None => idx,
            });
        }
        match (acc, m.disp) {
            (None, d) => self.symbol_value(d as u64),
            (Some(a), 0) => a,
            (Some(a), d) => self.emit(
                Ty::I64,
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: a,
                    rhs: Operand::i64(d),
                },
            ),
        }
    }

    fn mem_ptr(&mut self, m: &MemRef, pointee: Pointee) -> Operand {
        let a = self.addr_value(m);
        self.emit(
            Ty::Ptr(pointee),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: a,
            },
        )
    }

    fn load_mem(&mut self, m: &MemRef, w: Width) -> Operand {
        let p = self.mem_ptr(m, width_pointee(w));
        self.emit(
            width_ty(w),
            InstKind::Load {
                ptr: p,
                order: Ordering::NotAtomic,
            },
        )
    }

    fn store_mem(&mut self, m: &MemRef, w: Width, v: Operand) {
        let p = self.mem_ptr(m, width_pointee(w));
        self.emit_void(InstKind::Store {
            ptr: p,
            val: v,
            order: Ordering::NotAtomic,
        });
    }

    fn read_rm(&mut self, rm: &Rm, w: Width) -> Operand {
        match rm {
            Rm::Reg(r) => self.read_gpr(*r, w),
            Rm::Mem(m) => self.load_mem(m, w),
        }
    }

    fn write_rm(&mut self, rm: &Rm, w: Width, v: Operand) {
        match rm {
            Rm::Reg(r) => self.write_gpr(*r, w, v),
            Rm::Mem(m) => self.store_mem(m, w, v),
        }
    }

    // ---- XMM slots ---------------------------------------------------------

    fn xmm_slot(&mut self, x: Xmm) -> Operand {
        Operand::Inst(self.xmm_slot[x.encoding() as usize].expect("xmm slot not preallocated"))
    }

    fn xmm_ptr(&mut self, x: Xmm, pointee: Pointee, byte_off: u64) -> Operand {
        let slot = self.xmm_slot(x);
        let base = if byte_off == 0 {
            slot
        } else {
            self.emit(
                PTR_I8,
                InstKind::Gep {
                    base: slot,
                    offset: Operand::i64(byte_off as i64),
                    elem_size: 1,
                },
            )
        };
        self.emit(
            Ty::Ptr(pointee),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: base,
            },
        )
    }

    fn read_xmm_scalar(&mut self, x: Xmm, prec: FpPrec) -> Operand {
        let (pe, ty) = scalar_pt(prec);
        let p = self.xmm_ptr(x, pe, 0);
        self.emit(
            ty,
            InstKind::Load {
                ptr: p,
                order: Ordering::NotAtomic,
            },
        )
    }

    fn write_xmm_scalar(&mut self, x: Xmm, prec: FpPrec, v: Operand) {
        let (pe, _) = scalar_pt(prec);
        let p = self.xmm_ptr(x, pe, 0);
        self.emit_void(InstKind::Store {
            ptr: p,
            val: v,
            order: Ordering::NotAtomic,
        });
    }

    /// Zeroes bytes `from..16` of an XMM slot (movss/movsd load semantics).
    fn zero_xmm_upper(&mut self, x: Xmm, from: u64) {
        if from < 8 {
            let p = self.xmm_ptr(x, Pointee::I32, from);
            self.emit_void(InstKind::Store {
                ptr: p,
                val: Operand::i32(0),
                order: Ordering::NotAtomic,
            });
        }
        let p = self.xmm_ptr(x, Pointee::I64, 8);
        self.emit_void(InstKind::Store {
            ptr: p,
            val: Operand::i64(0),
            order: Ordering::NotAtomic,
        });
    }

    fn read_xmm_vec(&mut self, x: Xmm) -> Operand {
        let p = self.xmm_ptr(x, Pointee::V128, 0);
        self.emit(
            Ty::V2F64,
            InstKind::Load {
                ptr: p,
                order: Ordering::NotAtomic,
            },
        )
    }

    fn write_xmm_vec(&mut self, x: Xmm, v: Operand) {
        let p = self.xmm_ptr(x, Pointee::V128, 0);
        self.emit_void(InstKind::Store {
            ptr: p,
            val: v,
            order: Ordering::NotAtomic,
        });
    }

    fn read_xmmrm_scalar(&mut self, rm: &XmmRm, prec: FpPrec) -> Operand {
        match rm {
            XmmRm::Reg(x) => self.read_xmm_scalar(*x, prec),
            XmmRm::Mem(m) => {
                let (pe, ty) = scalar_pt(prec);
                let p = self.mem_ptr(m, pe);
                self.emit(
                    ty,
                    InstKind::Load {
                        ptr: p,
                        order: Ordering::NotAtomic,
                    },
                )
            }
        }
    }

    fn read_xmmrm_vec(&mut self, rm: &XmmRm) -> Operand {
        match rm {
            XmmRm::Reg(x) => self.read_xmm_vec(*x),
            XmmRm::Mem(m) => {
                let p = self.mem_ptr(m, Pointee::V128);
                self.emit(
                    Ty::V2F64,
                    InstKind::Load {
                        ptr: p,
                        order: Ordering::NotAtomic,
                    },
                )
            }
        }
    }
}

fn scalar_pt(prec: FpPrec) -> (Pointee, Ty) {
    match prec {
        FpPrec::Single => (Pointee::F32, Ty::F32),
        FpPrec::Double => (Pointee::F64, Ty::F64),
    }
}

fn sse_binop(op: SseOp) -> BinOp {
    match op {
        SseOp::Add => BinOp::FAdd,
        SseOp::Sub => BinOp::FSub,
        SseOp::Mul => BinOp::FMul,
        SseOp::Div => BinOp::FDiv,
        SseOp::Min => BinOp::FMin,
        SseOp::Max => BinOp::FMax,
        SseOp::Sqrt => BinOp::FAdd, // handled separately
    }
}

/// Translates one function.
///
/// `sqrt_extern` must be the module's declaration for `sqrt`, used to lift
/// `sqrtsd` (LIR has no sqrt instruction, matching how mctoll lowers it to
/// a libm call).
///
/// # Errors
///
/// Returns a [`TranslateError`] for unsupported instruction shapes or calls
/// to unknown targets.
pub fn translate_function(
    name: &str,
    cfg: &XCfg,
    fty: &FuncType,
    env: &SymbolEnv,
    sqrt_extern: ExternId,
    opts: TranslateOptions,
) -> Result<Translated, TranslateError> {
    let mut f = Function::new(name, fty.params.clone(), fty.ret);

    // One LIR block per machine block, plus the entry preamble (block 0).
    let mut block_map: BTreeMap<u64, BlockId> = BTreeMap::new();
    for b in &cfg.blocks {
        block_map.insert(b.start, f.add_block());
    }

    let mut tr = Tr {
        f,
        env,
        cur: BlockId(0),
        gpr_slot: [None; 16],
        xmm_slot: [None; 16],
        flag_slot: [None; 5],
        sqrt_ext: sqrt_extern,
        written_params: BTreeSet::new(),
        al_const: None,
        opts,
        gpr_slot_ids: Vec::new(),
    };

    // ---- preamble: allocas + parameter stores + stack setup ----
    tr.cur = BlockId(0);
    for r in Gpr::ALL {
        let id = tr.f.push(
            BlockId(0),
            Ty::Ptr(Pointee::I64),
            InstKind::Alloca { size: 8 },
        );
        tr.gpr_slot[r.encoding() as usize] = Some(id);
        tr.gpr_slot_ids.push(id);
    }
    for x in 0..16u8 {
        let id = tr.f.push(BlockId(0), PTR_I8, InstKind::Alloca { size: 16 });
        tr.xmm_slot[x as usize] = Some(id);
    }
    for fl in 0..5usize {
        let id = tr.f.push(
            BlockId(0),
            Ty::Ptr(Pointee::I8),
            InstKind::Alloca { size: 1 },
        );
        tr.flag_slot[fl] = Some(id);
        tr.gpr_slot_ids.push(id);
    }
    // Reconstructed stack (§4.2.3): an i8 array; RSP starts at its end.
    let stack = tr.f.push(
        BlockId(0),
        PTR_I8,
        InstKind::Alloca {
            size: tr.opts.stack_size,
        },
    );
    let sp_base = tr.emit(
        Ty::I64,
        InstKind::Cast {
            op: CastOp::PtrToInt,
            val: Operand::Inst(stack),
        },
    );
    let sp_top = tr.emit(
        Ty::I64,
        InstKind::Bin {
            op: BinOp::Add,
            lhs: sp_base,
            rhs: Operand::i64(opts.stack_size as i64),
        },
    );
    let rsp_slot = tr.gpr_slot(Gpr::Rsp);
    tr.emit_void(InstKind::Store {
        ptr: rsp_slot,
        val: sp_top,
        order: Ordering::NotAtomic,
    });

    // Parameters into their conventional registers.
    let mut int_idx = 0usize;
    let mut sse_idx = 0usize;
    for (pi, pty) in fty.params.iter().enumerate() {
        if pty.is_float() || pty.is_vector() {
            let x = Xmm::PARAMS[sse_idx];
            sse_idx += 1;
            match pty {
                Ty::F32 => tr.write_xmm_scalar(x, FpPrec::Single, Operand::Param(pi as u32)),
                Ty::F64 => tr.write_xmm_scalar(x, FpPrec::Double, Operand::Param(pi as u32)),
                _ => tr.write_xmm_vec(x, Operand::Param(pi as u32)),
            }
        } else {
            let r = Gpr::PARAMS[int_idx];
            int_idx += 1;
            let slot = tr.gpr_slot(r);
            tr.emit_void(InstKind::Store {
                ptr: slot,
                val: Operand::Param(pi as u32),
                order: Ordering::NotAtomic,
            });
            tr.written_params.insert(r);
        }
    }
    let entry_block = block_map[&cfg.entry];
    tr.f.set_term(BlockId(0), Terminator::Br { dest: entry_block });

    // ---- translate each machine block ----
    for xb in &cfg.blocks {
        tr.cur = block_map[&xb.start];
        tr.al_const = None;
        let mut terminated = false;
        for d in &xb.insts {
            if d.inst.is_terminator() {
                let term = tr.lower_terminator(&d.inst, xb, &block_map)?;
                let cur = tr.cur;
                tr.f.set_term(cur, term);
                terminated = true;
                break;
            }
            tr.lower(d.addr, &d.inst)?;
        }
        if !terminated {
            // Fallthrough.
            let next = xb.succs.first().copied().ok_or_else(|| {
                TranslateError::Unsupported(format!("block at {:#x} has no terminator", xb.start))
            })?;
            let cur = tr.cur;
            tr.f.set_term(
                cur,
                Terminator::Br {
                    dest: block_map[&next],
                },
            );
        }
    }

    Ok(Translated {
        func: tr.f,
        gpr_slots: tr.gpr_slot_ids,
    })
}

impl Tr<'_> {
    fn lower_terminator(
        &mut self,
        inst: &Inst,
        _xb: &crate::xcfg::XBlock,
        block_map: &BTreeMap<u64, BlockId>,
    ) -> Result<Terminator, TranslateError> {
        Ok(match inst {
            Inst::Jmp {
                target: Target::Abs(t),
            } => {
                if let Some(dest) = block_map.get(t) {
                    Terminator::Br { dest: *dest }
                } else {
                    // Tail call: call the target, forward its return value.
                    self.lower_call(0, &Target::Abs(*t))?;
                    let val = match self.f.ret {
                        Ty::Void => None,
                        Ty::F64 => Some(self.read_xmm_scalar(Xmm(0), FpPrec::Double)),
                        Ty::F32 => Some(self.read_xmm_scalar(Xmm(0), FpPrec::Single)),
                        _ => Some(self.read_gpr64(Gpr::Rax)),
                    };
                    Terminator::Ret { val }
                }
            }
            Inst::Jcc {
                cc,
                target: Target::Abs(t),
            } => {
                let cond = self.cond_value(*cc);
                let next = _xb.succs.get(1).copied().ok_or_else(|| {
                    TranslateError::Unsupported("jcc with no fallthrough".to_string())
                })?;
                Terminator::CondBr {
                    cond,
                    if_true: block_map[t],
                    if_false: block_map[&next],
                }
            }
            Inst::Ret => {
                let val = match self.f.ret {
                    Ty::Void => None,
                    Ty::F64 => Some(self.read_xmm_scalar(Xmm(0), FpPrec::Double)),
                    Ty::F32 => Some(self.read_xmm_scalar(Xmm(0), FpPrec::Single)),
                    _ => Some(self.read_gpr64(Gpr::Rax)),
                };
                Terminator::Ret { val }
            }
            Inst::Ud2 => Terminator::Unreachable,
            Inst::Jmp {
                target: Target::Indirect(_),
            } => {
                return Err(TranslateError::Unsupported(
                    "indirect jump (jump tables not supported)".to_string(),
                ))
            }
            other => return Err(TranslateError::Unsupported(format!("terminator {other}"))),
        })
    }

    #[allow(clippy::too_many_lines)]
    fn lower(&mut self, addr: u64, inst: &Inst) -> Result<(), TranslateError> {
        match inst {
            Inst::Nop => {}
            Inst::MovRRm { w, dst, src } => {
                let v = self.read_rm(src, *w);
                self.write_gpr(*dst, *w, v);
                self.track_al(*dst, *w, None);
            }
            Inst::MovRmR { w, dst, src } => {
                let v = self.read_gpr(*src, *w);
                self.write_rm(dst, *w, v);
            }
            Inst::MovRmI { w, dst, imm } => {
                self.write_rm(dst, *w, cint(*w, i64::from(*imm)));
                if let Rm::Reg(r) = dst {
                    self.track_al(*r, *w, Some(*imm));
                }
            }
            Inst::MovAbs { dst, imm } => {
                // An absolute 64-bit immediate may be a code or data address.
                let v = if self.env.funcs.contains_key(imm) || self.env.global_at(*imm).is_some() {
                    self.symbol_value(*imm)
                } else {
                    Operand::i64(*imm as i64)
                };
                self.write_gpr(*dst, Width::W64, v);
            }
            Inst::MovZx { dw, sw, dst, src } => {
                let v = self.read_rm(src, *sw);
                let z = self.emit(
                    width_ty(*dw),
                    InstKind::Cast {
                        op: CastOp::ZExt,
                        val: v,
                    },
                );
                self.write_gpr(*dst, *dw, z);
            }
            Inst::MovSx { dw, sw, dst, src } => {
                let v = self.read_rm(src, *sw);
                let z = self.emit(
                    width_ty(*dw),
                    InstKind::Cast {
                        op: CastOp::SExt,
                        val: v,
                    },
                );
                self.write_gpr(*dst, *dw, z);
            }
            Inst::Lea { w, dst, addr: m } => {
                let a = self.addr_value(m);
                let v = if *w == Width::W64 {
                    a
                } else {
                    self.emit(
                        width_ty(*w),
                        InstKind::Cast {
                            op: CastOp::Trunc,
                            val: a,
                        },
                    )
                };
                self.write_gpr(*dst, *w, v);
            }
            Inst::AluRRm { op, w, dst, src } => {
                let a = self.read_gpr(*dst, *w);
                let b = self.read_rm(src, *w);
                let res = self.alu(*op, *w, a, b);
                if op.writes_dst() {
                    self.write_gpr(*dst, *w, res);
                }
            }
            Inst::AluRmR { op, w, dst, src } => {
                let a = self.read_rm(dst, *w);
                let b = self.read_gpr(*src, *w);
                let res = self.alu(*op, *w, a, b);
                if op.writes_dst() {
                    self.write_rm(dst, *w, res);
                }
            }
            Inst::AluRmI { op, w, dst, imm } => {
                let a = self.read_rm(dst, *w);
                let b = cint(*w, i64::from(*imm));
                let res = self.alu(*op, *w, a, b);
                if op.writes_dst() {
                    self.write_rm(dst, *w, res);
                }
            }
            Inst::Test { w, a, b } => {
                let x = self.read_rm(a, *w);
                let y = self.read_gpr(*b, *w);
                let r = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::And,
                        lhs: x,
                        rhs: y,
                    },
                );
                self.set_flags_logic(r, *w);
            }
            Inst::TestI { w, a, imm } => {
                let x = self.read_rm(a, *w);
                let r = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::And,
                        lhs: x,
                        rhs: cint(*w, i64::from(*imm)),
                    },
                );
                self.set_flags_logic(r, *w);
            }
            Inst::ShiftI { op, w, dst, imm } => {
                let a = self.read_rm(dst, *w);
                let res = self.shift(*op, *w, a, cint(*w, i64::from(*imm)));
                self.write_rm(dst, *w, res);
            }
            Inst::ShiftCl { op, w, dst } => {
                let a = self.read_rm(dst, *w);
                let cl = self.read_gpr(Gpr::Rcx, Width::W8);
                let amt = if *w == Width::W8 {
                    cl
                } else {
                    self.emit(
                        width_ty(*w),
                        InstKind::Cast {
                            op: CastOp::ZExt,
                            val: cl,
                        },
                    )
                };
                let res = self.shift(*op, *w, a, amt);
                self.write_rm(dst, *w, res);
            }
            Inst::IMul2 { w, dst, src } => {
                let a = self.read_gpr(*dst, *w);
                let b = self.read_rm(src, *w);
                let res = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::Mul,
                        lhs: a,
                        rhs: b,
                    },
                );
                // CF/OF approximated as cleared; imul sets them only on overflow.
                self.write_flag_const(Fl::Cf, false);
                self.write_flag_const(Fl::Of, false);
                self.write_gpr(*dst, *w, res);
            }
            Inst::IMul3 { w, dst, src, imm } => {
                let b = self.read_rm(src, *w);
                let res = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::Mul,
                        lhs: b,
                        rhs: cint(*w, i64::from(*imm)),
                    },
                );
                self.write_flag_const(Fl::Cf, false);
                self.write_flag_const(Fl::Of, false);
                self.write_gpr(*dst, *w, res);
            }
            Inst::MulDiv { op, w, src } => self.mul_div(*op, *w, src),
            Inst::Cqo { w } => {
                let a = self.read_gpr(Gpr::Rax, *w);
                let sh = cint(*w, i64::from(w.bits()) - 1);
                let sign = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::AShr,
                        lhs: a,
                        rhs: sh,
                    },
                );
                self.write_gpr(Gpr::Rdx, *w, sign);
            }
            Inst::Neg { w, dst } => {
                let a = self.read_rm(dst, *w);
                let res = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::Sub,
                        lhs: cint(*w, 0),
                        rhs: a,
                    },
                );
                self.set_flags_sub(cint(*w, 0), a, res, *w);
                self.write_rm(dst, *w, res);
            }
            Inst::Not { w, dst } => {
                let a = self.read_rm(dst, *w);
                let res = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::Xor,
                        lhs: a,
                        rhs: cint(*w, -1),
                    },
                );
                self.write_rm(dst, *w, res);
            }
            Inst::Push { src } => {
                let sp = self.read_gpr64(Gpr::Rsp);
                let nsp = self.emit(
                    Ty::I64,
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: sp,
                        rhs: Operand::i64(-8),
                    },
                );
                self.write_gpr(Gpr::Rsp, Width::W64, nsp);
                let v = self.read_gpr64(*src);
                let p = self.emit(
                    Ty::Ptr(Pointee::I64),
                    InstKind::Cast {
                        op: CastOp::IntToPtr,
                        val: nsp,
                    },
                );
                self.emit_void(InstKind::Store {
                    ptr: p,
                    val: v,
                    order: Ordering::NotAtomic,
                });
            }
            Inst::Pop { dst } => {
                let sp = self.read_gpr64(Gpr::Rsp);
                let p = self.emit(
                    Ty::Ptr(Pointee::I64),
                    InstKind::Cast {
                        op: CastOp::IntToPtr,
                        val: sp,
                    },
                );
                let v = self.emit(
                    Ty::I64,
                    InstKind::Load {
                        ptr: p,
                        order: Ordering::NotAtomic,
                    },
                );
                self.write_gpr(*dst, Width::W64, v);
                let sp2 = self.read_gpr64(Gpr::Rsp);
                let nsp = self.emit(
                    Ty::I64,
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: sp2,
                        rhs: Operand::i64(8),
                    },
                );
                self.write_gpr(Gpr::Rsp, Width::W64, nsp);
            }
            Inst::Call { target } => self.lower_call(addr, target)?,
            Inst::Setcc { cc, dst } => {
                let c = self.cond_value(*cc);
                let v = self.emit(
                    Ty::I8,
                    InstKind::Cast {
                        op: CastOp::ZExt,
                        val: c,
                    },
                );
                self.write_rm(dst, Width::W8, v);
            }
            Inst::Cmovcc { cc, w, dst, src } => {
                let c = self.cond_value(*cc);
                let a = self.read_rm(src, *w);
                let b = self.read_gpr(*dst, *w);
                let v = self.emit(
                    width_ty(*w),
                    InstKind::Select {
                        cond: c,
                        if_true: a,
                        if_false: b,
                    },
                );
                self.write_gpr(*dst, *w, v);
            }
            Inst::MovssLoad { prec, dst, src } => {
                let v = self.read_xmmrm_scalar(src, *prec);
                self.write_xmm_scalar(*dst, *prec, v);
                if matches!(src, XmmRm::Mem(_)) {
                    // Load from memory zeroes the rest of the register.
                    self.zero_xmm_upper(*dst, prec.bytes());
                }
            }
            Inst::MovssStore { prec, dst, src } => {
                let v = self.read_xmm_scalar(*src, *prec);
                let (pe, _) = scalar_pt(*prec);
                let p = self.mem_ptr(dst, pe);
                self.emit_void(InstKind::Store {
                    ptr: p,
                    val: v,
                    order: Ordering::NotAtomic,
                });
            }
            Inst::MovapsLoad { dst, src, .. } => {
                let v = self.read_xmmrm_vec(src);
                self.write_xmm_vec(*dst, v);
            }
            Inst::MovapsStore { dst, src, .. } => {
                let v = self.read_xmm_vec(*src);
                let p = self.mem_ptr(dst, Pointee::V128);
                self.emit_void(InstKind::Store {
                    ptr: p,
                    val: v,
                    order: Ordering::NotAtomic,
                });
            }
            Inst::MovXmmToGpr { w, dst, src } => match w {
                Width::W64 => {
                    let v = self.read_xmm_scalar(*src, FpPrec::Double);
                    let b = self.emit(
                        Ty::I64,
                        InstKind::Cast {
                            op: CastOp::BitCast,
                            val: v,
                        },
                    );
                    self.write_gpr(*dst, Width::W64, b);
                }
                _ => {
                    let v = self.read_xmm_scalar(*src, FpPrec::Single);
                    let b = self.emit(
                        Ty::I32,
                        InstKind::Cast {
                            op: CastOp::BitCast,
                            val: v,
                        },
                    );
                    self.write_gpr(*dst, Width::W32, b);
                }
            },
            Inst::MovGprToXmm { w, dst, src } => match w {
                Width::W64 => {
                    let v = self.read_gpr64(*src);
                    let b = self.emit(
                        Ty::F64,
                        InstKind::Cast {
                            op: CastOp::BitCast,
                            val: v,
                        },
                    );
                    self.write_xmm_scalar(*dst, FpPrec::Double, b);
                    self.zero_xmm_upper(*dst, 8);
                }
                _ => {
                    let v = self.read_gpr(*src, Width::W32);
                    let b = self.emit(
                        Ty::F32,
                        InstKind::Cast {
                            op: CastOp::BitCast,
                            val: v,
                        },
                    );
                    self.write_xmm_scalar(*dst, FpPrec::Single, b);
                    self.zero_xmm_upper(*dst, 4);
                }
            },
            Inst::SseScalar {
                op: SseOp::Sqrt,
                prec,
                dst,
                src,
            } => {
                let v = self.read_xmmrm_scalar(src, *prec);
                let arg = if *prec == FpPrec::Single {
                    self.emit(
                        Ty::F64,
                        InstKind::Cast {
                            op: CastOp::FpExt,
                            val: v,
                        },
                    )
                } else {
                    v
                };
                let r = self.emit(
                    Ty::F64,
                    InstKind::Call {
                        callee: Callee::Extern(self.sqrt_extern()),
                        args: vec![arg],
                    },
                );
                let out = if *prec == FpPrec::Single {
                    self.emit(
                        Ty::F32,
                        InstKind::Cast {
                            op: CastOp::FpTrunc,
                            val: r,
                        },
                    )
                } else {
                    r
                };
                self.write_xmm_scalar(*dst, *prec, out);
            }
            Inst::SseScalar { op, prec, dst, src } => {
                let a = self.read_xmm_scalar(*dst, *prec);
                let b = self.read_xmmrm_scalar(src, *prec);
                let (_, ty) = scalar_pt(*prec);
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: sse_binop(*op),
                        lhs: a,
                        rhs: b,
                    },
                );
                self.write_xmm_scalar(*dst, *prec, r);
            }
            Inst::SsePacked { op, dst, src, .. } => {
                if *op == SseOp::Sqrt {
                    return Err(TranslateError::Unsupported("packed sqrt".to_string()));
                }
                let a = self.read_xmm_vec(*dst);
                let b = self.read_xmmrm_vec(src);
                let r = self.emit(
                    Ty::V2F64,
                    InstKind::Bin {
                        op: sse_binop(*op),
                        lhs: a,
                        rhs: b,
                    },
                );
                self.write_xmm_vec(*dst, r);
            }
            Inst::Xorps { dst, src } => {
                if *src == XmmRm::Reg(*dst) {
                    // Zeroing idiom.
                    let p0 = self.xmm_ptr(*dst, Pointee::I64, 0);
                    self.emit_void(InstKind::Store {
                        ptr: p0,
                        val: Operand::i64(0),
                        order: Ordering::NotAtomic,
                    });
                    let p1 = self.xmm_ptr(*dst, Pointee::I64, 8);
                    self.emit_void(InstKind::Store {
                        ptr: p1,
                        val: Operand::i64(0),
                        order: Ordering::NotAtomic,
                    });
                } else {
                    let a = self.read_xmm_vec(*dst);
                    let b = self.read_xmmrm_vec(src);
                    let r = self.emit(
                        Ty::V2F64,
                        InstKind::Bin {
                            op: BinOp::Xor,
                            lhs: a,
                            rhs: b,
                        },
                    );
                    self.write_xmm_vec(*dst, r);
                }
            }
            Inst::Ucomis { prec, a, b } => {
                let x = self.read_xmm_scalar(*a, *prec);
                let y = self.read_xmmrm_scalar(b, *prec);
                let unord = self.emit(
                    Ty::I1,
                    InstKind::FCmp {
                        pred: FPred::Uno,
                        lhs: x,
                        rhs: y,
                    },
                );
                let oeq = self.emit(
                    Ty::I1,
                    InstKind::FCmp {
                        pred: FPred::Oeq,
                        lhs: x,
                        rhs: y,
                    },
                );
                let olt = self.emit(
                    Ty::I1,
                    InstKind::FCmp {
                        pred: FPred::Olt,
                        lhs: x,
                        rhs: y,
                    },
                );
                let zf = self.emit(
                    Ty::I1,
                    InstKind::Bin {
                        op: BinOp::Or,
                        lhs: oeq,
                        rhs: unord,
                    },
                );
                let cf = self.emit(
                    Ty::I1,
                    InstKind::Bin {
                        op: BinOp::Or,
                        lhs: olt,
                        rhs: unord,
                    },
                );
                self.write_flag(Fl::Zf, zf);
                self.write_flag(Fl::Cf, cf);
                self.write_flag(Fl::Pf, unord);
                self.write_flag_const(Fl::Of, false);
                self.write_flag_const(Fl::Sf, false);
            }
            Inst::CvtSi2F { prec, iw, dst, src } => {
                let v = self.read_rm(src, *iw);
                let (_, ty) = scalar_pt(*prec);
                let r = self.emit(
                    ty,
                    InstKind::Cast {
                        op: CastOp::SiToFp,
                        val: v,
                    },
                );
                self.write_xmm_scalar(*dst, *prec, r);
            }
            Inst::CvtF2Si { prec, iw, dst, src } => {
                let v = self.read_xmmrm_scalar(src, *prec);
                let r = self.emit(
                    width_ty(*iw),
                    InstKind::Cast {
                        op: CastOp::FpToSi,
                        val: v,
                    },
                );
                self.write_gpr(*dst, *iw, r);
            }
            Inst::CvtF2F { to, dst, src } => {
                let (from, op) = match to {
                    FpPrec::Double => (FpPrec::Single, CastOp::FpExt),
                    FpPrec::Single => (FpPrec::Double, CastOp::FpTrunc),
                };
                let v = self.read_xmmrm_scalar(src, from);
                let (_, ty) = scalar_pt(*to);
                let r = self.emit(ty, InstKind::Cast { op, val: v });
                self.write_xmm_scalar(*dst, *to, r);
            }
            Inst::Mfence => {
                self.emit_void(InstKind::Fence {
                    kind: FenceKind::Fsc,
                });
            }
            Inst::LockCmpxchg { w, mem, src } => {
                let expected = self.read_gpr(Gpr::Rax, *w);
                let new = self.read_gpr(*src, *w);
                let p = self.mem_ptr(mem, width_pointee(*w));
                let old = self.emit(
                    width_ty(*w),
                    InstKind::CmpXchg {
                        ptr: p,
                        expected,
                        new,
                    },
                );
                let zf = self.emit(
                    Ty::I1,
                    InstKind::ICmp {
                        pred: IPred::Eq,
                        lhs: old,
                        rhs: expected,
                    },
                );
                self.write_flag(Fl::Zf, zf);
                self.write_gpr(Gpr::Rax, *w, old);
            }
            Inst::LockXadd { w, mem, src } => {
                let v = self.read_gpr(*src, *w);
                let p = self.mem_ptr(mem, width_pointee(*w));
                let old = self.emit(
                    width_ty(*w),
                    InstKind::AtomicRmw {
                        op: RmwOp::Add,
                        ptr: p,
                        val: v,
                    },
                );
                let res = self.emit(
                    width_ty(*w),
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: old,
                        rhs: v,
                    },
                );
                self.set_flags_add(old, v, res, *w);
                self.write_gpr(*src, *w, old);
            }
            Inst::LockAddI { w, mem, imm } => {
                let p = self.mem_ptr(mem, width_pointee(*w));
                self.emit(
                    width_ty(*w),
                    InstKind::AtomicRmw {
                        op: RmwOp::Add,
                        ptr: p,
                        val: cint(*w, i64::from(*imm)),
                    },
                );
            }
            Inst::Xchg { w, mem, src } => {
                let v = self.read_gpr(*src, *w);
                let p = self.mem_ptr(mem, width_pointee(*w));
                let old = self.emit(
                    width_ty(*w),
                    InstKind::AtomicRmw {
                        op: RmwOp::Xchg,
                        ptr: p,
                        val: v,
                    },
                );
                self.write_gpr(*src, *w, old);
            }
            Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Ret | Inst::Ud2 => {
                unreachable!("terminators handled by lower_terminator")
            }
        }
        Ok(())
    }

    fn sqrt_extern(&self) -> ExternId {
        self.sqrt_ext
    }

    fn alu(&mut self, op: AluOp, w: Width, a: Operand, b: Operand) -> Operand {
        let ty = width_ty(w);
        match op {
            AluOp::Add => {
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.set_flags_add(a, b, r, w);
                r
            }
            AluOp::Sub | AluOp::Cmp => {
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Sub,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.set_flags_sub(a, b, r, w);
                r
            }
            AluOp::And => {
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::And,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.set_flags_logic(r, w);
                r
            }
            AluOp::Or => {
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Or,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.set_flags_logic(r, w);
                r
            }
            AluOp::Xor => {
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Xor,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.set_flags_logic(r, w);
                r
            }
            AluOp::Adc => {
                let c = self.read_flag(Fl::Cf);
                let cw = self.emit(
                    ty,
                    InstKind::Cast {
                        op: CastOp::ZExt,
                        val: c,
                    },
                );
                let ab = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: a,
                        rhs: b,
                    },
                );
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Add,
                        lhs: ab,
                        rhs: cw,
                    },
                );
                self.set_flags_add(a, b, r, w);
                r
            }
            AluOp::Sbb => {
                let c = self.read_flag(Fl::Cf);
                let cw = self.emit(
                    ty,
                    InstKind::Cast {
                        op: CastOp::ZExt,
                        val: c,
                    },
                );
                let ab = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Sub,
                        lhs: a,
                        rhs: b,
                    },
                );
                let r = self.emit(
                    ty,
                    InstKind::Bin {
                        op: BinOp::Sub,
                        lhs: ab,
                        rhs: cw,
                    },
                );
                self.set_flags_sub(a, b, r, w);
                r
            }
        }
    }

    fn shift(&mut self, op: ShiftOp, w: Width, a: Operand, amt: Operand) -> Operand {
        let ty = width_ty(w);
        let bin = match op {
            ShiftOp::Shl => BinOp::Shl,
            ShiftOp::Shr => BinOp::LShr,
            ShiftOp::Sar => BinOp::AShr,
        };
        let r = self.emit(
            ty,
            InstKind::Bin {
                op: bin,
                lhs: a,
                rhs: amt,
            },
        );
        // CF/OF after shifts are rarely consumed; ZF/SF/PF modelled exactly.
        self.write_flag_const(Fl::Cf, false);
        self.write_flag_const(Fl::Of, false);
        self.set_zsp(r, w);
        r
    }

    fn mul_div(&mut self, op: MulDivOp, w: Width, src: &Rm) {
        let b = self.read_rm(src, w);
        let a = self.read_gpr(Gpr::Rax, w);
        match op {
            MulDivOp::Mul | MulDivOp::IMul => {
                let lo = self.emit(
                    width_ty(w),
                    InstKind::Bin {
                        op: BinOp::Mul,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.write_gpr(Gpr::Rax, w, lo);
                if w == Width::W32 {
                    // Exact high half via 64-bit widening.
                    let (ca, cb) = if op == MulDivOp::IMul {
                        (
                            self.emit(
                                Ty::I64,
                                InstKind::Cast {
                                    op: CastOp::SExt,
                                    val: a,
                                },
                            ),
                            self.emit(
                                Ty::I64,
                                InstKind::Cast {
                                    op: CastOp::SExt,
                                    val: b,
                                },
                            ),
                        )
                    } else {
                        (
                            self.emit(
                                Ty::I64,
                                InstKind::Cast {
                                    op: CastOp::ZExt,
                                    val: a,
                                },
                            ),
                            self.emit(
                                Ty::I64,
                                InstKind::Cast {
                                    op: CastOp::ZExt,
                                    val: b,
                                },
                            ),
                        )
                    };
                    let wide = self.emit(
                        Ty::I64,
                        InstKind::Bin {
                            op: BinOp::Mul,
                            lhs: ca,
                            rhs: cb,
                        },
                    );
                    let hi64 = self.emit(
                        Ty::I64,
                        InstKind::Bin {
                            op: BinOp::LShr,
                            lhs: wide,
                            rhs: Operand::i64(32),
                        },
                    );
                    let hi = self.emit(
                        Ty::I32,
                        InstKind::Cast {
                            op: CastOp::Trunc,
                            val: hi64,
                        },
                    );
                    self.write_gpr(Gpr::Rdx, w, hi);
                } else {
                    // 64-bit high half unavailable without i128; the Phoenix
                    // programs never consume RDX after a 64-bit multiply.
                    self.write_gpr(Gpr::Rdx, w, cint(w, 0));
                }
            }
            MulDivOp::Div => {
                let q = self.emit(
                    width_ty(w),
                    InstKind::Bin {
                        op: BinOp::UDiv,
                        lhs: a,
                        rhs: b,
                    },
                );
                let r = self.emit(
                    width_ty(w),
                    InstKind::Bin {
                        op: BinOp::URem,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.write_gpr(Gpr::Rax, w, q);
                self.write_gpr(Gpr::Rdx, w, r);
            }
            MulDivOp::IDiv => {
                let q = self.emit(
                    width_ty(w),
                    InstKind::Bin {
                        op: BinOp::SDiv,
                        lhs: a,
                        rhs: b,
                    },
                );
                let r = self.emit(
                    width_ty(w),
                    InstKind::Bin {
                        op: BinOp::SRem,
                        lhs: a,
                        rhs: b,
                    },
                );
                self.write_gpr(Gpr::Rax, w, q);
                self.write_gpr(Gpr::Rdx, w, r);
            }
        }
    }

    fn track_al(&mut self, dst: Gpr, w: Width, imm: Option<i32>) {
        if dst == Gpr::Rax && (w == Width::W8 || w == Width::W32) {
            self.al_const = imm.and_then(|v| u8::try_from(v).ok());
        }
    }

    fn lower_call(&mut self, at: u64, target: &Target) -> Result<(), TranslateError> {
        let t = match target {
            Target::Abs(t) => *t,
            Target::Indirect(r) => {
                // Indirect call: all argument registers written so far are
                // passed as i64 (conservative; §4.2.1).
                let fv = self.read_gpr64(*r);
                let fp = self.emit(
                    PTR_I8,
                    InstKind::Cast {
                        op: CastOp::IntToPtr,
                        val: fv,
                    },
                );
                let mut args = Vec::new();
                for reg in Gpr::PARAMS {
                    if self.written_params.contains(&reg) {
                        args.push(self.read_gpr64(reg));
                    } else {
                        break;
                    }
                }
                let r = self.emit(
                    Ty::I64,
                    InstKind::Call {
                        callee: Callee::Indirect(fp),
                        args,
                    },
                );
                self.write_gpr(Gpr::Rax, Width::W64, r);
                return Ok(());
            }
        };
        if let Some((fid, fty)) = self.env.funcs.get(&t).cloned() {
            let args = self.gather_args(&fty, false);
            let call = self.emit_call_result(fty.ret, Callee::Func(fid), args);
            self.store_return(fty.ret, call);
            return Ok(());
        }
        if let Some((eid, fty, variadic)) = self.env.externs.get(&t).cloned() {
            let args = self.gather_args(&fty, variadic);
            let call = self.emit_call_result(fty.ret, Callee::Extern(eid), args);
            self.store_return(fty.ret, call);
            return Ok(());
        }
        Err(TranslateError::UnknownCallTarget { at, target: t })
    }

    fn emit_call_result(&mut self, ret: Ty, callee: Callee, args: Vec<Operand>) -> Option<Operand> {
        if ret == Ty::Void {
            self.emit_void(InstKind::Call { callee, args });
            None
        } else {
            Some(self.emit(ret, InstKind::Call { callee, args }))
        }
    }

    fn store_return(&mut self, ret: Ty, val: Option<Operand>) {
        match (ret, val) {
            (Ty::Void, _) => {}
            (Ty::Ptr(_), Some(v)) => {
                // Returned pointers (e.g. from malloc) live in RAX as raw
                // integers at the machine level.
                let raw = self.emit(
                    Ty::I64,
                    InstKind::Cast {
                        op: CastOp::PtrToInt,
                        val: v,
                    },
                );
                self.write_gpr(Gpr::Rax, Width::W64, raw);
            }
            (Ty::F64, Some(v)) => {
                self.write_xmm_scalar(Xmm(0), FpPrec::Double, v);
                self.zero_xmm_upper(Xmm(0), 8);
            }
            (Ty::F32, Some(v)) => {
                self.write_xmm_scalar(Xmm(0), FpPrec::Single, v);
                self.zero_xmm_upper(Xmm(0), 4);
            }
            (Ty::I32, Some(v)) => self.write_gpr(Gpr::Rax, Width::W32, v),
            (Ty::I16, Some(v)) => self.write_gpr(Gpr::Rax, Width::W16, v),
            (Ty::I8, Some(v)) => self.write_gpr(Gpr::Rax, Width::W8, v),
            (_, Some(v)) => self.write_gpr(Gpr::Rax, Width::W64, v),
            _ => {}
        }
    }

    /// Collects call arguments per the System-V convention and the callee's
    /// signature; for variadic callees extra integer registers written so
    /// far and `AL`-counted SSE registers are appended (§4.2.1).
    fn gather_args(&mut self, fty: &FuncType, variadic: bool) -> Vec<Operand> {
        let mut args = Vec::new();
        let mut int_idx = 0usize;
        let mut sse_idx = 0usize;
        for pty in &fty.params {
            if pty.is_float() || pty.is_vector() {
                let x = Xmm::PARAMS[sse_idx];
                sse_idx += 1;
                let prec = if *pty == Ty::F32 {
                    FpPrec::Single
                } else {
                    FpPrec::Double
                };
                args.push(self.read_xmm_scalar(x, prec));
            } else {
                let r = Gpr::PARAMS[int_idx];
                int_idx += 1;
                args.push(self.read_gpr64(r));
            }
        }
        if variadic {
            for r in Gpr::PARAMS.iter().skip(int_idx) {
                if self.written_params.contains(r) {
                    args.push(self.read_gpr64(*r));
                } else {
                    break;
                }
            }
            let n_sse = usize::from(self.al_const.unwrap_or(0));
            for x in Xmm::PARAMS.iter().take(n_sse) {
                args.push(self.read_xmm_scalar(*x, FpPrec::Double));
            }
        }
        args
    }
}
