//! Static binary lifter: x86-64 machine code → LIR (paper §4).
//!
//! The pipeline mirrors Figure 4 of the paper: the binary is disassembled
//! (`lasagne-x86`), control-flow graphs are reconstructed per function
//! ([`xcfg`]), function types are discovered from the System-V calling
//! convention via live-register analysis ([`typedisc`]), and instructions
//! are translated to LIR ([`translate`]) with the stack reconstructed as a
//! byte-array `alloca` and every flag effect materialised. Register slots
//! are then promoted to SSA (mirroring mctoll's SSA output).
//!
//! # Example
//!
//! ```
//! use lasagne_lifter::lift_binary;
//! use lasagne_x86::asm::Asm;
//! use lasagne_x86::binary::BinaryBuilder;
//! use lasagne_x86::inst::{AluOp, Inst, Rm};
//! use lasagne_x86::reg::{Gpr, Width};
//!
//! // f(x) = x + 1, as real machine code.
//! let mut b = BinaryBuilder::new();
//! let mut a = Asm::new();
//! a.push(Inst::MovRRm { w: Width::W64, dst: Gpr::Rax, src: Rm::Reg(Gpr::Rdi) });
//! a.push(Inst::AluRmI { op: AluOp::Add, w: Width::W64, dst: Rm::Reg(Gpr::Rax), imm: 1 });
//! a.push(Inst::Ret);
//! let addr = b.next_function_addr();
//! b.add_function("inc", a.finish(addr)?);
//! let module = lift_binary(&b.finish())?;
//! assert!(module.func_by_name("inc").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod liveness;
pub mod translate;
pub mod typedisc;
pub mod xcfg;

use lasagne_lir::func::{ExternDecl, Function, GlobalVar, Module};
use lasagne_lir::types::{Pointee, Ty};
use lasagne_x86::binary::Binary;
use std::collections::BTreeMap;
use translate::SymbolEnv;
use typedisc::{FuncType, SigTable};

pub use translate::TranslateOptions;

/// Machine-code and type-discovery profile of one function, reported by
/// [`LiftPlan::function_profile`] for the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncProfile {
    /// x86 entry address.
    pub addr: u64,
    /// Reconstructed machine basic blocks.
    pub x86_blocks: usize,
    /// x86 instructions across all blocks.
    pub x86_insts: usize,
    /// Parameters discovered by the §4 live-register analysis.
    pub params: usize,
    /// Whether the discovered return type is `void`.
    pub ret_void: bool,
}

/// Errors produced by [`lift_binary`].
#[derive(Debug)]
pub enum LiftError {
    /// CFG reconstruction failed.
    Cfg(xcfg::CfgError),
    /// Instruction translation failed.
    Translate(translate::TranslateError),
    /// The produced module failed verification (a lifter bug).
    Verify(Vec<lasagne_lir::verify::VerifyError>),
}

impl std::fmt::Display for LiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiftError::Cfg(e) => write!(f, "cfg: {e}"),
            LiftError::Translate(e) => write!(f, "translate: {e}"),
            LiftError::Verify(es) => {
                write!(f, "verification failed: {} errors ({})", es.len(), es[0])
            }
        }
    }
}

impl std::error::Error for LiftError {}

/// Signature of a known C-library/pthread extern: `(type, variadic)`.
///
/// Pointer-typed parameters appear as raw `i64` at lift time (the machine
/// has no pointer types); declared return pointers are typed `i8*`.
pub fn extern_signature(name: &str) -> Option<(FuncType, bool)> {
    let t = |params: Vec<Ty>, ret: Ty, v: bool| Some((FuncType { params, ret }, v));
    match name {
        "malloc" | "valloc" => t(vec![Ty::I64], Ty::Ptr(Pointee::I8), false),
        "calloc" => t(vec![Ty::I64, Ty::I64], Ty::Ptr(Pointee::I8), false),
        "free" => t(vec![Ty::I64], Ty::Void, false),
        "memset" | "memcpy" => t(vec![Ty::I64, Ty::I64, Ty::I64], Ty::I64, false),
        "strlen" => t(vec![Ty::I64], Ty::I64, false),
        "printf" => t(vec![Ty::I64], Ty::I32, true),
        "puts" => t(vec![Ty::I64], Ty::I32, false),
        "exit" | "abort" => t(vec![Ty::I64], Ty::Void, false),
        "sqrt" => t(vec![Ty::F64], Ty::F64, false),
        "pthread_create" => t(vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64], Ty::I32, false),
        "pthread_join" => t(vec![Ty::I64, Ty::I64], Ty::I32, false),
        "pthread_exit" => t(vec![Ty::I64], Ty::Void, false),
        "pthread_mutex_init" | "pthread_mutex_destroy" => t(vec![Ty::I64, Ty::I64], Ty::I32, false),
        "pthread_mutex_lock" | "pthread_mutex_unlock" => t(vec![Ty::I64], Ty::I32, false),
        "sysconf" => t(vec![Ty::I64], Ty::I64, false),
        _ => None,
    }
}

/// Lifts a whole binary image to an LIR module.
///
/// # Errors
///
/// Returns a [`LiftError`] if any function cannot be decoded, reconstructed,
/// or translated, or if the produced module fails verification.
pub fn lift_binary(bin: &Binary) -> Result<Module, LiftError> {
    lift_binary_with(bin, TranslateOptions::default())
}

/// [`lift_binary`] with explicit options.
///
/// Equivalent to [`LiftPlan::prepare`] followed by lifting every function
/// in address order and [`LiftPlan::finish`] — the one-shot serial form of
/// the two-phase API.
///
/// # Errors
///
/// See [`lift_binary`].
pub fn lift_binary_with(bin: &Binary, opts: TranslateOptions) -> Result<Module, LiftError> {
    let plan = LiftPlan::prepare(bin, opts)?;
    let bodies = (0..plan.num_functions())
        .map(|i| plan.lift_function(i))
        .collect::<Result<Vec<_>, _>>()?;
    plan.finish(bodies)
}

/// The serial front half of lifting, split off so the per-function body
/// translations can run on worker threads.
///
/// [`LiftPlan::prepare`] performs every whole-binary step — global and
/// extern registration, CFG reconstruction, bottom-up function-type
/// discovery, and function-shell creation (so [`lasagne_lir::FuncId`]s
/// exist before any body is translated). After that,
/// [`LiftPlan::lift_function`] is a *pure* function of the plan: it reads
/// only immutable shared state, so any subset of functions may be lifted
/// concurrently, in any order, with byte-identical results.
/// [`LiftPlan::finish`] installs the bodies and verifies the module.
pub struct LiftPlan {
    /// Module with globals, externs, and empty function shells installed.
    module: Module,
    /// Symbol environment shared (read-only) by every body translation.
    env: SymbolEnv,
    /// Per-function work items in address order: `(addr, name, cfg)`.
    /// Index `i` corresponds to `module.funcs[i]`.
    work: Vec<(u64, String, xcfg::XCfg)>,
    /// Discovered signature per work item.
    tys: Vec<FuncType>,
    /// Extern id of `sqrt` (needed by `sqrtsd` translation).
    sqrt_id: lasagne_lir::inst::ExternId,
    opts: TranslateOptions,
}

impl LiftPlan {
    /// Runs the whole-binary analysis phase.
    ///
    /// # Errors
    ///
    /// Returns [`LiftError::Cfg`] if any function's control flow cannot be
    /// reconstructed.
    pub fn prepare(bin: &Binary, opts: TranslateOptions) -> Result<LiftPlan, LiftError> {
        let mut module = Module::new();

        // Globals.
        let mut global_ranges = Vec::new();
        for g in &bin.globals {
            let id = module.add_global(GlobalVar {
                name: g.name.clone(),
                size: g.size,
                init: g.init.clone(),
                addr: g.addr,
            });
            global_ranges.push((g.addr, g.size, id));
        }

        // Externs: declared stubs plus `sqrt`, which the translator needs
        // for `sqrtsd` even when the binary does not import it.
        let mut sigs = SigTable::new();
        let mut extern_map = BTreeMap::new();
        for e in &bin.externs {
            let (fty, variadic) = extern_signature(&e.name).unwrap_or((
                FuncType {
                    params: vec![],
                    ret: Ty::I64,
                },
                true,
            ));
            let id = module.declare_extern(ExternDecl {
                name: e.name.clone(),
                params: fty.params.clone(),
                ret: fty.ret,
                variadic,
            });
            sigs.insert(e.addr, fty.clone());
            extern_map.insert(e.addr, (id, fty, variadic));
        }
        let (sqrt_ty, _) = extern_signature("sqrt").unwrap();
        let sqrt_id = module.declare_extern(ExternDecl {
            name: "sqrt".into(),
            params: sqrt_ty.params.clone(),
            ret: sqrt_ty.ret,
            variadic: false,
        });

        // Build machine CFGs for every function; `jmp` to another function
        // or extern stub is a tail call.
        let call_targets: std::collections::BTreeSet<u64> = bin
            .functions
            .iter()
            .map(|f| f.addr)
            .chain(bin.externs.iter().map(|e| e.addr))
            .collect();
        let mut cfgs: BTreeMap<u64, (String, xcfg::XCfg)> = BTreeMap::new();
        for f in &bin.functions {
            let cfg = xcfg::build_xcfg_with(bin.code_of(f), f.addr, |t| {
                t != f.addr && call_targets.contains(&t)
            })
            .map_err(LiftError::Cfg)?;
            cfgs.insert(f.addr, (f.name.clone(), cfg));
        }

        // Function type discovery, bottom-up over the call graph: iterate
        // until every function whose callees are all known has been
        // discovered, then force the rest (recursion / cycles) with what is
        // known.
        let mut discovered: BTreeMap<u64, FuncType> = BTreeMap::new();
        loop {
            let mut progressed = false;
            for (addr, (_, cfg)) in &cfgs {
                if discovered.contains_key(addr) {
                    continue;
                }
                let callees_known =
                    cfg.blocks
                        .iter()
                        .flat_map(|b| &b.insts)
                        .all(|d| match d.inst {
                            lasagne_x86::Inst::Call {
                                target: lasagne_x86::inst::Target::Abs(t),
                            } => sigs.get(t).is_some() || t == *addr,
                            // Tail calls: a jmp out of the function.
                            lasagne_x86::Inst::Jmp {
                                target: lasagne_x86::inst::Target::Abs(t),
                            } if cfg.block_index(t).is_none() => {
                                sigs.get(t).is_some() || t == *addr
                            }
                            _ => true,
                        });
                if callees_known {
                    let fty = typedisc::discover(cfg, &sigs);
                    sigs.insert(*addr, fty.clone());
                    discovered.insert(*addr, fty);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for (addr, (_, cfg)) in &cfgs {
            discovered.entry(*addr).or_insert_with(|| {
                let fty = typedisc::discover(cfg, &sigs);
                sigs.insert(*addr, fty.clone());
                fty
            });
        }

        // Create function shells so ids exist before bodies are translated.
        let mut env = SymbolEnv {
            funcs: BTreeMap::new(),
            externs: extern_map,
            globals: global_ranges,
        };
        for (addr, (name, _)) in &cfgs {
            let fty = &discovered[addr];
            let id = module.add_func(Function::new(name, fty.params.clone(), fty.ret));
            env.funcs.insert(*addr, (id, fty.clone()));
        }

        // Freeze the per-function work list in address order (the same
        // order the shells were added, so work index `i` == `FuncId(i)`).
        let mut work = Vec::with_capacity(cfgs.len());
        let mut tys = Vec::with_capacity(cfgs.len());
        for (addr, (name, cfg)) in cfgs {
            tys.push(discovered[&addr].clone());
            work.push((addr, name, cfg));
        }

        Ok(LiftPlan {
            module,
            env,
            work,
            tys,
            sqrt_id,
            opts,
        })
    }

    /// Number of functions awaiting body translation.
    pub fn num_functions(&self) -> usize {
        self.work.len()
    }

    /// Name of work item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn function_name(&self, i: usize) -> &str {
        &self.work[i].1
    }

    /// x86 entry address of work item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn function_addr(&self, i: usize) -> u64 {
        self.work[i].0
    }

    /// The module as every per-function pass will see it: globals and
    /// externs with an **empty** function table.
    ///
    /// [`LiftPlan::finish`] only installs function bodies, so this is
    /// byte-identical to the post-`finish` module with `funcs` taken out
    /// — the exact read-only shell the pipeline's per-function driver
    /// hands to passes. A fused schedule can therefore run shell-only
    /// passes (e.g. refinement round 0) *before* the finish join without
    /// changing what any pass observes.
    pub fn shell_module(&self) -> Module {
        let mut shell = self.module.clone();
        shell.funcs = Vec::new();
        shell
    }

    /// Pre-lift profile of work item `i`: machine-code shape plus the
    /// discovered signature, for observability (the lifter's per-function
    /// instruction/type-discovery counts).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn function_profile(&self, i: usize) -> FuncProfile {
        let (addr, _, cfg) = &self.work[i];
        FuncProfile {
            addr: *addr,
            x86_blocks: cfg.blocks.len(),
            x86_insts: cfg.blocks.iter().map(|b| b.insts.len()).sum(),
            params: self.tys[i].params.len(),
            ret_void: self.tys[i].ret == Ty::Void,
        }
    }

    /// [`LiftPlan::lift_function`] recording the function's profile into
    /// `ctx`: `lift.*` counters, a size histogram, and (when tracing is
    /// enabled) a `lift-function` instant event. Produces the exact same
    /// body as [`lift_function`](LiftPlan::lift_function).
    ///
    /// # Errors
    ///
    /// See [`lift_function`](LiftPlan::lift_function).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lift_function_traced(
        &self,
        i: usize,
        ctx: &lasagne_trace::TraceCtx,
    ) -> Result<Function, LiftError> {
        let body = self.lift_function(i)?;
        let p = self.function_profile(i);
        let lir_insts = body.iter_insts().count();
        ctx.add("lift.funcs", 1);
        ctx.add("lift.x86_insts", p.x86_insts as u64);
        ctx.add("lift.lir_insts", lir_insts as u64);
        ctx.add("lift.params_discovered", p.params as u64);
        ctx.observe(
            "lift.func_x86_insts",
            &[8, 32, 128, 512],
            p.x86_insts as u64,
        );
        if ctx.is_enabled() {
            ctx.instant(
                "lift",
                "lift-function",
                vec![
                    ("func", lasagne_trace::ArgVal::from(self.function_name(i))),
                    ("addr", lasagne_trace::ArgVal::from(p.addr)),
                    ("x86_insts", lasagne_trace::ArgVal::from(p.x86_insts)),
                    ("lir_insts", lasagne_trace::ArgVal::from(lir_insts)),
                    ("params", lasagne_trace::ArgVal::from(p.params)),
                ],
            );
        }
        Ok(body)
    }

    /// Translates the body of work item `i`.
    ///
    /// This reads only immutable plan state, so distinct work items may be
    /// lifted concurrently and the result for a given item is independent
    /// of the order (or thread) in which the others run.
    ///
    /// # Errors
    ///
    /// Returns [`LiftError::Translate`] for unsupported instruction shapes
    /// or calls to unknown targets.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lift_function(&self, i: usize) -> Result<Function, LiftError> {
        let (_, name, cfg) = &self.work[i];
        let mut tr = translate::translate_function(
            name,
            cfg,
            &self.tys[i],
            &self.env,
            self.sqrt_id,
            self.opts,
        )
        .map_err(LiftError::Translate)?;
        translate::promote_registers(&mut tr);
        tr.func.compact();
        Ok(tr.func)
    }

    /// Installs the translated bodies (one per work item, in work-item
    /// order) and verifies the completed module.
    ///
    /// # Errors
    ///
    /// Returns [`LiftError::Verify`] if the assembled module fails
    /// verification (a lifter bug).
    ///
    /// # Panics
    ///
    /// Panics if `bodies.len() != self.num_functions()`.
    pub fn finish(mut self, bodies: Vec<Function>) -> Result<Module, LiftError> {
        assert_eq!(bodies.len(), self.work.len(), "one body per work item");
        for (i, body) in bodies.into_iter().enumerate() {
            let (fid, _) = self.env.funcs[&self.work[i].0];
            *self.module.func_mut(fid) = body;
        }
        lasagne_lir::verify::verify_module(&self.module).map_err(LiftError::Verify)?;
        Ok(self.module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::interp::{Machine, Val};
    use lasagne_x86::asm::Asm;
    use lasagne_x86::binary::BinaryBuilder;
    use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, Rm, SseOp, Target, XmmRm};
    use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};

    fn lift_one(name: &str, mut build: impl FnMut(&mut Asm)) -> (Module, lasagne_lir::FuncId) {
        let mut b = BinaryBuilder::new();
        let mut a = Asm::new();
        build(&mut a);
        let addr = b.next_function_addr();
        b.add_function(name, a.finish(addr).unwrap());
        let m = lift_binary(&b.finish()).unwrap();
        let id = m.func_by_name(name).unwrap();
        (m, id)
    }

    fn run(m: &Module, id: lasagne_lir::FuncId, args: &[Val]) -> Val {
        let mut machine = Machine::new(m);
        machine.run(id, args).unwrap().ret.expect("return value")
    }

    #[test]
    fn lift_add_function() {
        let (m, id) = lift_one("add", |a| {
            a.push(Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rdi),
            });
            a.push(Inst::AluRRm {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rsi),
            });
            a.push(Inst::Ret);
        });
        assert_eq!(m.func(id).params, vec![Ty::I64, Ty::I64]);
        assert_eq!(run(&m, id, &[Val::B64(40), Val::B64(2)]), Val::B64(42));
    }

    #[test]
    fn lift_branching_max() {
        // max(rdi, rsi)
        let (m, id) = lift_one("max", |a| {
            let ret_a = a.label();
            a.push(Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rdi),
            });
            a.push(Inst::AluRRm {
                op: AluOp::Cmp,
                w: Width::W64,
                dst: Gpr::Rdi,
                src: Rm::Reg(Gpr::Rsi),
            });
            a.jcc(Cond::Ge, ret_a);
            a.push(Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rsi),
            });
            a.bind(ret_a);
            a.push(Inst::Ret);
        });
        assert_eq!(run(&m, id, &[Val::B64(7), Val::B64(3)]), Val::B64(7));
        assert_eq!(run(&m, id, &[Val::B64(3), Val::B64(7)]), Val::B64(7));
        // Signed comparison: -1 < 3.
        assert_eq!(
            run(&m, id, &[Val::B64(-1i64 as u64), Val::B64(3)]),
            Val::B64(3)
        );
    }

    #[test]
    fn lift_loop_sum() {
        // sum = 0; for (i = 0; i != n; i++) sum += i
        let (m, id) = lift_one("sum", |a| {
            let top = a.label();
            let done = a.label();
            a.push(Inst::MovRmI {
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rax),
                imm: 0,
            });
            a.push(Inst::MovRmI {
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rcx),
                imm: 0,
            });
            a.bind(top);
            a.push(Inst::AluRRm {
                op: AluOp::Cmp,
                w: Width::W64,
                dst: Gpr::Rcx,
                src: Rm::Reg(Gpr::Rdi),
            });
            a.jcc(Cond::E, done);
            a.push(Inst::AluRRm {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rcx),
            });
            a.push(Inst::AluRmI {
                op: AluOp::Add,
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rcx),
                imm: 1,
            });
            a.jmp(top);
            a.bind(done);
            a.push(Inst::Ret);
        });
        assert_eq!(run(&m, id, &[Val::B64(10)]), Val::B64(45));
    }

    #[test]
    fn lift_stack_spill_reload() {
        // Push/pop and [rsp] traffic must hit the reconstructed stack array.
        let (m, id) = lift_one("spill", |a| {
            a.push(Inst::Push { src: Gpr::Rbp });
            a.push(Inst::MovRmR {
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rbp),
                src: Gpr::Rsp,
            });
            a.push(Inst::AluRmI {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rsp),
                imm: 16,
            });
            // [rbp-8] = rdi; rax = [rbp-8] * 2
            a.push(Inst::MovRmR {
                w: Width::W64,
                dst: Rm::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
                src: Gpr::Rdi,
            });
            a.push(Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
            });
            a.push(Inst::AluRRm {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rax),
            });
            a.push(Inst::AluRmI {
                op: AluOp::Add,
                w: Width::W64,
                dst: Rm::Reg(Gpr::Rsp),
                imm: 16,
            });
            a.push(Inst::Pop { dst: Gpr::Rbp });
            a.push(Inst::Ret);
        });
        assert_eq!(run(&m, id, &[Val::B64(21)]), Val::B64(42));
    }

    #[test]
    fn lift_float_add() {
        let (m, id) = lift_one("fadd", |a| {
            a.push(Inst::SseScalar {
                op: SseOp::Add,
                prec: FpPrec::Double,
                dst: Xmm(0),
                src: XmmRm::Reg(Xmm(1)),
            });
            a.push(Inst::Ret);
        });
        assert_eq!(m.func(id).params, vec![Ty::F64, Ty::F64]);
        assert_eq!(m.func(id).ret, Ty::F64);
        let r = run(
            &m,
            id,
            &[Val::B64(1.5f64.to_bits()), Val::B64(2.25f64.to_bits())],
        );
        assert_eq!(r.f64(), 3.75);
    }

    #[test]
    fn lift_global_access() {
        // counter global: rax = [counter]; [counter] = rax + 1
        let mut b = BinaryBuilder::new();
        let g = b.add_global("counter", 8, 7u64.to_le_bytes().to_vec());
        let mut a = Asm::new();
        a.push(Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::rip(g)),
        });
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.push(Inst::MovRmR {
            w: Width::W64,
            dst: Rm::Mem(MemRef::rip(g)),
            src: Gpr::Rax,
        });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("bump", a.finish(addr).unwrap());
        let m = lift_binary(&b.finish()).unwrap();
        let id = m.func_by_name("bump").unwrap();
        let mut machine = Machine::new(&m);
        let r = machine.run(id, &[]).unwrap();
        assert_eq!(r.ret, Some(Val::B64(8)));
        // And the global was updated in memory.
        assert_eq!(machine.mem.read_u64(0x60_0000), 8);
    }

    #[test]
    fn lift_call_between_functions() {
        // callee(rdi) = rdi * 3; caller(rdi) = callee(rdi) + 1
        let mut b = BinaryBuilder::new();
        let mut a = Asm::new();
        a.push(Inst::IMul3 {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Reg(Gpr::Rdi),
            imm: 3,
        });
        a.push(Inst::Ret);
        let callee_addr = b.next_function_addr();
        b.add_function("triple", a.finish(callee_addr).unwrap());

        let mut a = Asm::new();
        let caller_addr = b.next_function_addr();
        a.push(Inst::Call {
            target: Target::Abs(callee_addr),
        });
        a.push(Inst::AluRmI {
            op: AluOp::Add,
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rax),
            imm: 1,
        });
        a.push(Inst::Ret);
        b.add_function("caller", a.finish(caller_addr).unwrap());

        let m = lift_binary(&b.finish()).unwrap();
        let id = m.func_by_name("caller").unwrap();
        assert_eq!(m.func(id).params, vec![Ty::I64]);
        assert_eq!(run(&m, id, &[Val::B64(5)]), Val::B64(16));
    }

    #[test]
    fn lift_extern_call_malloc() {
        // p = malloc(8); [p] = 42; return [p]
        let mut b = BinaryBuilder::new();
        let malloc = b.declare_extern("malloc");
        let mut a = Asm::new();
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(Gpr::Rdi),
            imm: 8,
        });
        a.push(Inst::Call {
            target: Target::Abs(malloc),
        });
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Mem(MemRef::base(Gpr::Rax)),
            imm: 42,
        });
        a.push(Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::base(Gpr::Rax)),
        });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("alloc42", a.finish(addr).unwrap());
        let m = lift_binary(&b.finish()).unwrap();
        let id = m.func_by_name("alloc42").unwrap();
        assert_eq!(run(&m, id, &[]), Val::B64(42));
    }

    #[test]
    fn lift_atomic_rmw() {
        // lock xadd [rdi], rsi; return old value
        let (m, id) = lift_one("fetch_add", |a| {
            a.push(Inst::LockXadd {
                w: Width::W64,
                mem: MemRef::base(Gpr::Rdi),
                src: Gpr::Rsi,
            });
            a.push(Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rsi),
            });
            a.push(Inst::Ret);
        });
        let mut machine = Machine::new(&m);
        machine.mem.write_u64(lasagne_lir::interp::HEAP_BASE, 100);
        let r = machine
            .run(id, &[Val::B64(lasagne_lir::interp::HEAP_BASE), Val::B64(5)])
            .unwrap();
        assert_eq!(r.ret, Some(Val::B64(100)));
        assert_eq!(machine.mem.read_u64(lasagne_lir::interp::HEAP_BASE), 105);
        assert_eq!(r.stats.rmws, 1);
    }

    #[test]
    fn lift_mfence_becomes_fsc() {
        let (m, id) = lift_one("fenced", |a| {
            a.push(Inst::MovRmI {
                w: Width::W64,
                dst: Rm::Mem(MemRef::base(Gpr::Rdi)),
                imm: 1,
            });
            a.push(Inst::Mfence);
            a.push(Inst::MovRRm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Mem(MemRef::base(Gpr::Rsi)),
            });
            a.push(Inst::Ret);
        });
        let fsc = m.count_insts(|i| {
            matches!(
                i.kind,
                lasagne_lir::InstKind::Fence {
                    kind: lasagne_lir::inst::FenceKind::Fsc
                }
            )
        });
        assert_eq!(fsc, 1);
        let _ = id;
    }

    #[test]
    fn lift_32bit_zero_extension() {
        // mov eax, edi must clear the upper half.
        let (m, id) = lift_one("low32", |a| {
            a.push(Inst::MovRRm {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rdi),
            });
            a.push(Inst::Ret);
        });
        let r = run(&m, id, &[Val::B64(0xFFFF_FFFF_0000_0001)]);
        assert_eq!(r, Val::B64(1));
    }

    #[test]
    fn lift_cvt_roundtrip() {
        // double(rdi) doubled, truncated back to int
        let (m, id) = lift_one("cvt", |a| {
            a.push(Inst::CvtSi2F {
                prec: FpPrec::Double,
                iw: Width::W64,
                dst: Xmm(0),
                src: Rm::Reg(Gpr::Rdi),
            });
            a.push(Inst::SseScalar {
                op: SseOp::Add,
                prec: FpPrec::Double,
                dst: Xmm(0),
                src: XmmRm::Reg(Xmm(0)),
            });
            a.push(Inst::CvtF2Si {
                prec: FpPrec::Double,
                iw: Width::W64,
                dst: Gpr::Rax,
                src: XmmRm::Reg(Xmm(0)),
            });
            a.push(Inst::Ret);
        });
        assert_eq!(run(&m, id, &[Val::B64(21)]), Val::B64(42));
    }

    #[test]
    fn unknown_call_target_is_error() {
        let mut b = BinaryBuilder::new();
        let mut a = Asm::new();
        a.push(Inst::Call {
            target: Target::Abs(0x40_F000),
        });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("bad", a.finish(addr).unwrap());
        let err = lift_binary(&b.finish()).unwrap_err();
        assert!(matches!(
            err,
            LiftError::Translate(translate::TranslateError::UnknownCallTarget { .. })
        ));
    }

    #[test]
    fn lifted_code_contains_inttoptr_bloat() {
        // The naive lifting must leave integer/pointer casts behind — the
        // raw material of §5 refinement (Figure 13).
        let (m, _) = lift_one("store_param", |a| {
            a.push(Inst::MovRmR {
                w: Width::W64,
                dst: Rm::Mem(MemRef::base(Gpr::Rdi)),
                src: Gpr::Rsi,
            });
            a.push(Inst::Ret);
        });
        let casts = m.count_insts(|i| i.kind.is_int_ptr_cast());
        assert!(
            casts >= 1,
            "expected inttoptr in lifted store, found {casts}"
        );
    }
}
