//! Lifter integration tests for the trickier §4.2 paths: variadic calls
//! with the AL-register SSE count, global variables through RIP-relative
//! addressing, nested calls, and sub-width memory traffic.

use lasagne_lir::interp::{Machine, Val};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::BinaryBuilder;
use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, Rm, SseOp, Target, XmmRm};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};

/// printf("%d %d\n", a, b) with an integer-only variadic call: the extra
/// integer registers written before the call must be passed (§4.2.1).
#[test]
fn variadic_printf_integers() {
    let mut b = BinaryBuilder::new();
    let fmt = b.add_global("fmt", 16, b"%d %d\n\0".to_vec());
    let printf = b.declare_extern("printf");
    let mut a = Asm::new();
    // rdi = fmt; rsi = 7; rdx = 9; al = 0 (no SSE args); call printf
    a.push(Inst::Lea {
        w: Width::W64,
        dst: Gpr::Rdi,
        addr: MemRef::rip(fmt),
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rsi),
        imm: 7,
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rdx),
        imm: 9,
    });
    a.push(Inst::MovRmI {
        w: Width::W8,
        dst: Rm::Reg(Gpr::Rax),
        imm: 0,
    });
    a.push(Inst::Call {
        target: Target::Abs(printf),
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 0,
    });
    a.push(Inst::Ret);
    let addr = b.next_function_addr();
    b.add_function("main", a.finish(addr).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("main").unwrap();
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[]).unwrap();
    assert_eq!(r.output, "7 9\n");
}

/// printf("%f\n", x) — the AL register carries the SSE argument count, and
/// the lifter must forward XMM0 (§4.2.1 "Call to Variadic Functions").
#[test]
fn variadic_printf_float_via_al() {
    let mut b = BinaryBuilder::new();
    let fmt = b.add_global("fmt", 8, b"%f\n\0".to_vec());
    let printf = b.declare_extern("printf");
    let mut a = Asm::new();
    a.push(Inst::Lea {
        w: Width::W64,
        dst: Gpr::Rdi,
        addr: MemRef::rip(fmt),
    });
    // xmm0 = 2.5 (bit pattern through rcx)
    a.push(Inst::MovAbs {
        dst: Gpr::Rcx,
        imm: 2.5f64.to_bits(),
    });
    a.push(Inst::MovGprToXmm {
        w: Width::W64,
        dst: Xmm(0),
        src: Gpr::Rcx,
    });
    // al = 1 → one SSE vararg
    a.push(Inst::MovRmI {
        w: Width::W8,
        dst: Rm::Reg(Gpr::Rax),
        imm: 1,
    });
    a.push(Inst::Call {
        target: Target::Abs(printf),
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 0,
    });
    a.push(Inst::Ret);
    let addr = b.next_function_addr();
    b.add_function("main", a.finish(addr).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("main").unwrap();
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[]).unwrap();
    assert_eq!(r.output, "2.500000\n");
}

/// A chain of three calls (grandcaller → caller → leaf) with arguments
/// threaded through — exercises bottom-up type discovery across depth.
#[test]
fn nested_call_chain() {
    let mut b = BinaryBuilder::new();

    // leaf(x) = x * x
    let mut a = Asm::new();
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::IMul2 {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::Ret);
    let leaf = b.next_function_addr();
    b.add_function("leaf", a.finish(leaf).unwrap());

    // mid(x) = leaf(x) + 1
    let mut a = Asm::new();
    let mid = b.next_function_addr();
    a.push(Inst::Call {
        target: Target::Abs(leaf),
    });
    a.push(Inst::AluRmI {
        op: AluOp::Add,
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 1,
    });
    a.push(Inst::Ret);
    b.add_function("mid", a.finish(mid).unwrap());

    // top(x) = mid(x) * 2
    let mut a = Asm::new();
    let top = b.next_function_addr();
    a.push(Inst::Call {
        target: Target::Abs(mid),
    });
    a.push(Inst::AluRRm {
        op: AluOp::Add,
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rax),
    });
    a.push(Inst::Ret);
    b.add_function("top", a.finish(top).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("top").unwrap();
    assert_eq!(m.func(id).params, vec![lasagne_lir::Ty::I64]);
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[Val::B64(6)]).unwrap();
    assert_eq!(r.ret, Some(Val::B64((6 * 6 + 1) * 2)));
}

/// Byte and word stores must not clobber neighbouring bytes.
#[test]
fn sub_width_memory_traffic() {
    let mut b = BinaryBuilder::new();
    let mut a = Asm::new();
    // [rdi] = 0x1122334455667788 (qword), then overwrite byte 2 with 0xAB
    // and word 2 (bytes 4..6) with 0xCDEF; return the resulting qword.
    a.push(Inst::MovAbs {
        dst: Gpr::Rax,
        imm: 0x1122_3344_5566_7788,
    });
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base(Gpr::Rdi)),
        src: Gpr::Rax,
    });
    a.push(Inst::MovRmI {
        w: Width::W8,
        dst: Rm::Mem(MemRef::base_disp(Gpr::Rdi, 2)),
        imm: 0xAB_u8 as i8 as i32,
    });
    a.push(Inst::MovRmI {
        w: Width::W16,
        dst: Rm::Mem(MemRef::base_disp(Gpr::Rdi, 4)),
        imm: 0xCDEF_u16 as i16 as i32,
    });
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Mem(MemRef::base(Gpr::Rdi)),
    });
    a.push(Inst::Ret);
    let addr = b.next_function_addr();
    b.add_function("f", a.finish(addr).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("f").unwrap();
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[Val::B64(0x4000_0000)]).unwrap();
    assert_eq!(r.ret, Some(Val::B64(0x1122_CDEF_55AB_7788)));
}

/// Scalar single-precision path: float parameters, arithmetic, and the
/// float↔double conversions.
#[test]
fn single_precision_pipeline() {
    let mut b = BinaryBuilder::new();
    let mut a = Asm::new();
    // f(x: f32) = (float)((double)x * 2.0) + x
    a.push(Inst::CvtF2F {
        to: FpPrec::Double,
        dst: Xmm(1),
        src: XmmRm::Reg(Xmm(0)),
    });
    a.push(Inst::SseScalar {
        op: SseOp::Add,
        prec: FpPrec::Double,
        dst: Xmm(1),
        src: XmmRm::Reg(Xmm(1)),
    });
    a.push(Inst::CvtF2F {
        to: FpPrec::Single,
        dst: Xmm(1),
        src: XmmRm::Reg(Xmm(1)),
    });
    a.push(Inst::SseScalar {
        op: SseOp::Add,
        prec: FpPrec::Single,
        dst: Xmm(0),
        src: XmmRm::Reg(Xmm(1)),
    });
    a.push(Inst::Ret);
    let addr = b.next_function_addr();
    b.add_function("f", a.finish(addr).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("f").unwrap();
    assert_eq!(m.func(id).params, vec![lasagne_lir::Ty::F32]);
    assert_eq!(m.func(id).ret, lasagne_lir::Ty::F32);
    let mut machine = Machine::new(&m);
    let r = machine
        .run(id, &[Val::B64(u64::from(1.5f32.to_bits()))])
        .unwrap();
    assert_eq!(f32::from_bits(r.ret.unwrap().bits() as u32), 4.5);
}

/// ucomisd + ja: unsigned-style FP comparisons through the parity/carry
/// flags (the §4 flag modelling the paper calls out).
#[test]
fn fp_compare_branches() {
    let mut b = BinaryBuilder::new();
    let mut a = Asm::new();
    let ret_one = a.label();
    // f(x, y) = (x > y) ? 1 : 0  via ucomisd + ja
    a.push(Inst::Ucomis {
        prec: FpPrec::Double,
        a: Xmm(0),
        b: XmmRm::Reg(Xmm(1)),
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 1,
    });
    a.jcc(Cond::A, ret_one);
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 0,
    });
    a.bind(ret_one);
    a.push(Inst::Ret);
    let addr = b.next_function_addr();
    b.add_function("gt", a.finish(addr).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("gt").unwrap();
    let run = |x: f64, y: f64| {
        let mut machine = Machine::new(&m);
        machine
            .run(id, &[Val::B64(x.to_bits()), Val::B64(y.to_bits())])
            .unwrap()
            .ret
            .unwrap()
            .bits()
    };
    assert_eq!(run(3.0, 2.0), 1);
    assert_eq!(run(2.0, 3.0), 0);
    assert_eq!(run(2.0, 2.0), 0);
    // NaN: ucomisd sets CF, so `ja` (CF=0 ∧ ZF=0) must not be taken.
    assert_eq!(run(f64::NAN, 2.0), 0);
}

/// Tail calls (`jmp` to another function, one of the paper's §4 mctoll
/// contributions): `double_it` tail-calls `add_self`.
#[test]
fn tail_call_lifts_as_call_plus_return() {
    let mut b = BinaryBuilder::new();

    // add_self(x) = x + x
    let mut a = Asm::new();
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::AluRRm {
        op: AluOp::Add,
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::Ret);
    let callee = b.next_function_addr();
    b.add_function("add_self", a.finish(callee).unwrap());

    // bump_then_double(x): rdi += 1; jmp add_self   (tail call)
    let mut a = Asm::new();
    let caller = b.next_function_addr();
    a.push(Inst::AluRmI {
        op: AluOp::Add,
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rdi),
        imm: 1,
    });
    a.push(Inst::Jmp {
        target: Target::Abs(callee),
    });
    b.add_function("bump_then_double", a.finish(caller).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("bump_then_double").unwrap();
    assert_eq!(m.func(id).params, vec![lasagne_lir::Ty::I64]);
    assert_eq!(
        m.func(id).ret,
        lasagne_lir::Ty::I64,
        "tail callee's return propagates"
    );
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[Val::B64(20)]).unwrap();
    assert_eq!(r.ret, Some(Val::B64(42)));
}

/// A conditional tail call: one path returns locally, the other tail-calls.
#[test]
fn conditional_tail_call() {
    let mut b = BinaryBuilder::new();

    let mut a = Asm::new();
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::IMul2 {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::Ret);
    let square = b.next_function_addr();
    b.add_function("square", a.finish(square).unwrap());

    // f(x): if (x < 10) return x; else tail-call square(x)
    let mut a = Asm::new();
    let caller = b.next_function_addr();
    let small = a.label();
    a.push(Inst::AluRmI {
        op: AluOp::Cmp,
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rdi),
        imm: 10,
    });
    a.jcc(Cond::L, small);
    a.push(Inst::Jmp {
        target: Target::Abs(square),
    });
    a.bind(small);
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rdi),
    });
    a.push(Inst::Ret);
    b.add_function("f", a.finish(caller).unwrap());

    let m = lasagne_lifter::lift_binary(&b.finish()).unwrap();
    let id = m.func_by_name("f").unwrap();
    let run = |x: u64| {
        let mut machine = Machine::new(&m);
        machine.run(id, &[Val::B64(x)]).unwrap().ret.unwrap().bits()
    };
    assert_eq!(run(5), 5);
    assert_eq!(run(12), 144);
}

/// Error paths surface as typed errors, not panics.
#[test]
fn error_paths_are_typed() {
    use lasagne_lifter::LiftError;

    // Truncated machine code → CFG/decode error.
    let mut b = BinaryBuilder::new();
    b.add_function("bad", vec![0x48]); // lone REX prefix
    let err = lasagne_lifter::lift_binary(&b.finish()).unwrap_err();
    assert!(matches!(err, LiftError::Cfg(_)), "{err}");

    // Indirect jump (jump table) → unsupported translate error.
    let mut b = BinaryBuilder::new();
    let mut a = Asm::new();
    a.push(Inst::Jmp {
        target: Target::Indirect(Gpr::Rax),
    });
    let addr = b.next_function_addr();
    b.add_function("jt", a.finish(addr).unwrap());
    let err = lasagne_lifter::lift_binary(&b.finish()).unwrap_err();
    assert!(matches!(err, LiftError::Translate(_)), "{err}");
}
