//! Interpreter edge cases: vectors, sub-width integers, memory helpers,
//! call frames, and printing.

use lasagne_lir::func::{ExternDecl, Function, Module};
use lasagne_lir::inst::{
    BinOp, Callee, CastOp, FenceKind, IPred, InstKind, Operand, Ordering, Terminator,
};
use lasagne_lir::interp::{Machine, Memory, Val};
use lasagne_lir::types::{Pointee, Ty};

#[test]
fn memory_cross_page_access() {
    let mut mem = Memory::new();
    // Write across a 4 KiB page boundary.
    let addr = 0x1000 - 3;
    mem.write(addr, &0xAABB_CCDD_EEFF_1122u64.to_le_bytes());
    assert_eq!(mem.read_u64(addr), 0xAABB_CCDD_EEFF_1122);
    // C-string helper.
    mem.write(0x2000, b"hello\0world");
    assert_eq!(mem.read_cstr(0x2000), "hello");
}

#[test]
fn vector_insert_extract_roundtrip() {
    let mut m = Module::new();
    let mut f = Function::new("v", vec![Ty::I64, Ty::I64], Ty::I64);
    let e = f.entry();
    let v0 = f.push(
        e,
        Ty::V2I64,
        InstKind::InsertElement {
            vec: Operand::Undef(Ty::V2I64),
            elt: Operand::Param(0),
            idx: 0,
        },
    );
    let v1 = f.push(
        e,
        Ty::V2I64,
        InstKind::InsertElement {
            vec: Operand::Inst(v0),
            elt: Operand::Param(1),
            idx: 1,
        },
    );
    let a = f.push(
        e,
        Ty::I64,
        InstKind::ExtractElement {
            vec: Operand::Inst(v1),
            idx: 0,
        },
    );
    let b = f.push(
        e,
        Ty::I64,
        InstKind::ExtractElement {
            vec: Operand::Inst(v1),
            idx: 1,
        },
    );
    let s = f.push(
        e,
        Ty::I64,
        InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::Inst(a),
            rhs: Operand::Inst(b),
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(s)),
        },
    );
    let id = m.add_func(f);
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[Val::B64(30), Val::B64(12)]).unwrap();
    assert_eq!(r.ret, Some(Val::B64(42)));
}

#[test]
fn vector_fadd_lanes() {
    let mut m = Module::new();
    let mut f = Function::new("v", vec![Ty::Ptr(Pointee::V128)], Ty::F64);
    let e = f.entry();
    let v = f.push(
        e,
        Ty::V2F64,
        InstKind::Load {
            ptr: Operand::Param(0),
            order: Ordering::NotAtomic,
        },
    );
    let s = f.push(
        e,
        Ty::V2F64,
        InstKind::Bin {
            op: BinOp::FAdd,
            lhs: Operand::Inst(v),
            rhs: Operand::Inst(v),
        },
    );
    let lo = f.push(
        e,
        Ty::F64,
        InstKind::ExtractElement {
            vec: Operand::Inst(s),
            idx: 0,
        },
    );
    let hi = f.push(
        e,
        Ty::F64,
        InstKind::ExtractElement {
            vec: Operand::Inst(s),
            idx: 1,
        },
    );
    // Reinterpret lanes as doubles and add.
    let total = f.push(
        e,
        Ty::F64,
        InstKind::Bin {
            op: BinOp::FAdd,
            lhs: Operand::Inst(lo),
            rhs: Operand::Inst(hi),
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(total)),
        },
    );
    let id = m.add_func(f);
    let mut machine = Machine::new(&m);
    machine
        .mem
        .write(0x4000_0000, &1.5f64.to_bits().to_le_bytes());
    machine
        .mem
        .write(0x4000_0008, &2.25f64.to_bits().to_le_bytes());
    let r = machine.run(id, &[Val::B64(0x4000_0000)]).unwrap();
    // (1.5+1.5) + (2.25+2.25) = 7.5  — wait: lanes doubled then summed.
    assert_eq!(r.ret.unwrap().f64(), 7.5);
}

#[test]
fn sub_width_arithmetic_masks() {
    // i8 arithmetic wraps at 8 bits.
    let mut m = Module::new();
    let mut f = Function::new("w", vec![Ty::I64], Ty::I64);
    let e = f.entry();
    let t = f.push(
        e,
        Ty::I8,
        InstKind::Cast {
            op: CastOp::Trunc,
            val: Operand::Param(0),
        },
    );
    let a = f.push(
        e,
        Ty::I8,
        InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::Inst(t),
            rhs: Operand::ConstInt {
                ty: Ty::I8,
                val: 200,
            },
        },
    );
    let z = f.push(
        e,
        Ty::I64,
        InstKind::Cast {
            op: CastOp::ZExt,
            val: Operand::Inst(a),
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(z)),
        },
    );
    let id = m.add_func(f);
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[Val::B64(100)]).unwrap();
    assert_eq!(r.ret, Some(Val::B64((100u64 + 200) & 0xFF)));
}

#[test]
fn signed_comparisons_at_narrow_width() {
    // i8: 0x80 (-128) slt 1 must hold; ult must not.
    let mut m = Module::new();
    for (pred, expect) in [(IPred::Slt, 1u64), (IPred::Ult, 0u64)] {
        let mut f = Function::new("c", vec![], Ty::I1);
        let e = f.entry();
        let c = f.push(
            e,
            Ty::I1,
            InstKind::ICmp {
                pred,
                lhs: Operand::ConstInt {
                    ty: Ty::I8,
                    val: 0x80,
                },
                rhs: Operand::ConstInt { ty: Ty::I8, val: 1 },
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(c)),
            },
        );
        let id = m.add_func(f);
        let mut machine = Machine::new(&m);
        let r = machine.run(id, &[]).unwrap();
        assert_eq!(r.ret, Some(Val::B64(expect)), "{pred:?}");
    }
}

#[test]
fn recursion_with_own_frames() {
    // fact(n) — recursion through the interpreter call stack, with a stack
    // slot per frame to force per-frame alloca isolation.
    let mut m = Module::new();
    let mut f = Function::new("fact", vec![Ty::I64], Ty::I64);
    let e = f.entry();
    let rec = f.add_block();
    let base = f.add_block();
    let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
    f.push(
        e,
        Ty::Void,
        InstKind::Store {
            ptr: Operand::Inst(slot),
            val: Operand::Param(0),
            order: Ordering::NotAtomic,
        },
    );
    let z = f.push(
        e,
        Ty::I1,
        InstKind::ICmp {
            pred: IPred::Eq,
            lhs: Operand::Param(0),
            rhs: Operand::i64(0),
        },
    );
    f.set_term(
        e,
        Terminator::CondBr {
            cond: Operand::Inst(z),
            if_true: base,
            if_false: rec,
        },
    );
    let nm1 = f.push(
        rec,
        Ty::I64,
        InstKind::Bin {
            op: BinOp::Sub,
            lhs: Operand::Param(0),
            rhs: Operand::i64(1),
        },
    );
    let sub = f.push(
        rec,
        Ty::I64,
        InstKind::Call {
            callee: Callee::Func(lasagne_lir::FuncId(0)),
            args: vec![Operand::Inst(nm1)],
        },
    );
    let saved = f.push(
        rec,
        Ty::I64,
        InstKind::Load {
            ptr: Operand::Inst(slot),
            order: Ordering::NotAtomic,
        },
    );
    let prod = f.push(
        rec,
        Ty::I64,
        InstKind::Bin {
            op: BinOp::Mul,
            lhs: Operand::Inst(sub),
            rhs: Operand::Inst(saved),
        },
    );
    f.set_term(
        rec,
        Terminator::Ret {
            val: Some(Operand::Inst(prod)),
        },
    );
    f.set_term(
        base,
        Terminator::Ret {
            val: Some(Operand::i64(1)),
        },
    );
    let id = m.add_func(f);
    let mut machine = Machine::new(&m);
    let r = machine.run(id, &[Val::B64(10)]).unwrap();
    assert_eq!(r.ret, Some(Val::B64(3628800)));
}

#[test]
fn extern_arity_trap_is_graceful() {
    // Calling a function with too few args traps instead of panicking.
    let mut m = Module::new();
    let mut f = Function::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
    let e = f.entry();
    let s = f.push(
        e,
        Ty::I64,
        InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::Param(0),
            rhs: Operand::Param(1),
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(s)),
        },
    );
    let id = m.add_func(f);
    let mut machine = Machine::new(&m);
    let err = machine.run(id, &[Val::B64(1)]).unwrap_err();
    assert!(matches!(err, lasagne_lir::interp::ExecError::Trap(_)));
}

#[test]
fn fences_do_not_change_results() {
    let mut m = Module::new();
    let pf = m.declare_extern(ExternDecl {
        name: "sqrt".into(),
        params: vec![Ty::F64],
        ret: Ty::F64,
        variadic: false,
    });
    let mut f = Function::new("f", vec![Ty::Ptr(Pointee::F64)], Ty::F64);
    let e = f.entry();
    f.push(
        e,
        Ty::Void,
        InstKind::Fence {
            kind: FenceKind::Frm,
        },
    );
    let v = f.push(
        e,
        Ty::F64,
        InstKind::Load {
            ptr: Operand::Param(0),
            order: Ordering::NotAtomic,
        },
    );
    f.push(
        e,
        Ty::Void,
        InstKind::Fence {
            kind: FenceKind::Fsc,
        },
    );
    let r = f.push(
        e,
        Ty::F64,
        InstKind::Call {
            callee: Callee::Extern(pf),
            args: vec![Operand::Inst(v)],
        },
    );
    f.push(
        e,
        Ty::Void,
        InstKind::Fence {
            kind: FenceKind::Fww,
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(r)),
        },
    );
    let id = m.add_func(f);
    let mut machine = Machine::new(&m);
    machine
        .mem
        .write(0x4000_0000, &16.0f64.to_bits().to_le_bytes());
    let res = machine.run(id, &[Val::B64(0x4000_0000)]).unwrap();
    assert_eq!(res.ret.unwrap().f64(), 4.0);
    assert_eq!(res.stats.fences, (1, 1, 1));
}

#[test]
fn printer_covers_all_kinds() {
    let mut m = Module::new();
    let g = m.add_global(lasagne_lir::func::GlobalVar {
        name: "tab".into(),
        size: 16,
        init: vec![],
        addr: 0x60_0000,
    });
    let ext = m.declare_extern(ExternDecl {
        name: "printf".into(),
        params: vec![Ty::I64],
        ret: Ty::I32,
        variadic: true,
    });
    let mut f = Function::new("all", vec![Ty::I64, Ty::I1], Ty::Void);
    let e = f.entry();
    let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
    let p = f.push(
        e,
        Ty::Ptr(Pointee::I8),
        InstKind::Cast {
            op: CastOp::BitCast,
            val: Operand::Inst(slot),
        },
    );
    let gp = f.push(
        e,
        Ty::Ptr(Pointee::I8),
        InstKind::Gep {
            base: Operand::Inst(p),
            offset: Operand::i64(4),
            elem_size: 1,
        },
    );
    let sel = f.push(
        e,
        Ty::I64,
        InstKind::Select {
            cond: Operand::Param(1),
            if_true: Operand::Param(0),
            if_false: Operand::i64(0),
        },
    );
    f.push(
        e,
        Ty::Void,
        InstKind::Store {
            ptr: Operand::Inst(slot),
            val: Operand::Inst(sel),
            order: Ordering::SeqCst,
        },
    );
    let old = f.push(
        e,
        Ty::I64,
        InstKind::AtomicRmw {
            op: lasagne_lir::inst::RmwOp::Add,
            ptr: Operand::Inst(slot),
            val: Operand::i64(1),
        },
    );
    let _cx = f.push(
        e,
        Ty::I64,
        InstKind::CmpXchg {
            ptr: Operand::Inst(slot),
            expected: Operand::Inst(old),
            new: Operand::i64(5),
        },
    );
    f.push(
        e,
        Ty::I32,
        InstKind::Call {
            callee: Callee::Extern(ext),
            args: vec![Operand::Global(g)],
        },
    );
    let _ = gp;
    f.set_term(e, Terminator::Ret { val: None });
    m.add_func(f);
    let text = lasagne_lir::print::print_module(&m);
    for needle in [
        "declare i32 @printf(i64, ...)",
        "@tab = global [16 x i8]",
        "alloca [8 x i8]",
        "bitcast",
        "getelementptr(x1)",
        "select i1 %arg1",
        "store atomic seq_cst",
        "atomicrmw add",
        "cmpxchg",
        "call @printf",
        "ret void",
    ] {
        assert!(
            text.contains(needle),
            "printer output missing `{needle}`:\n{text}"
        );
    }
}
